//! Facade crate for the SPLENDID (ASPLOS'23) reproduction.
//!
//! Re-exports every workspace crate under a short alias so examples and
//! integration tests can depend on a single crate:
//!
//! ```
//! use splendid::ir::Module;
//! let m = Module::new("demo");
//! assert_eq!(m.functions.len(), 0);
//! ```

pub use splendid_analysis as analysis;
pub use splendid_baselines as baselines;
pub use splendid_cfront as cfront;
pub use splendid_core as core;
pub use splendid_difftest as difftest;
pub use splendid_interp as interp;
pub use splendid_ir as ir;
pub use splendid_metrics as metrics;
pub use splendid_parallel as parallel;
pub use splendid_polybench as polybench;
pub use splendid_serve as serve;
pub use splendid_transforms as transforms;
