//! `splendid` — the decompilation-service CLI.
//!
//! ```text
//! splendid decompile <file.{ir,c}> [--variant v1|portable|full] [--stats]
//! splendid batch <dir> [--jobs N] [--rounds K] [--variant V] [--stats]
//! splendid bench-serve [--jobs N] [--rounds R] [--json]
//! splendid daemon [--addr A] [--unix PATH] [--jobs N] [--max-connections N]
//!                 [--idle-timeout SECS] [--deadline SECS] [--peer-timeout-ms MS]
//!                 [--max-pending N] [--degrade-pending N] [--quota-burst N] [--quota-rps N]
//! splendid connect [--addr A] [--unix PATH] [file.{ir,c}] [--variant V]
//!                  [--stats] [--malformed <dir>]
//! splendid bench-daemon [--connections N] [--rounds M] [--functions F]
//!                       [--addr A] [--json] [--min-speedup X] [--max-update-p50-ms MS]
//! splendid bench-overload [--jobs N] [--rounds R] [--functions F]
//!                         [--addr A] [--json]
//! splendid difftest [--seed S] [--cases N] [--case I] [--shrink] [--corpus <dir>]
//!                   [--validate] [--stats]
//! splendid difftest --faults N [--fault-cases M] [--seed S]
//! splendid validate <file.{ir,c}> [--variant V] [--stats] [--addr A] [--unix PATH]
//! splendid bench-validate [--jobs N] [--rounds R] [--json] [--min-verified X]
//! splendid dump-polybench <dir>
//! ```
//!
//! `.ir` inputs are parsed as textual SPLENDID IR; `.c` inputs run the
//! full substrate (cfront → -O2 → Polly-sim) first, so the service sees
//! the same parallel IR the paper's pipeline produces. `daemon` keeps a
//! decompiler resident for interactive sessions (see `splendid-daemon`);
//! `connect` and `bench-daemon` talk to one.

use splendid_cachestore::{CacheStore, StoreConfig};
use splendid_cfront::{lower_program, parse_program, LowerOptions};
use splendid_core::{SplendidOptions, Variant};
use splendid_daemon::{percentiles, BenchConfig, Daemon, DaemonClient, DaemonConfig, PeerTier};
use splendid_ir::{printer::module_str, Module};
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_polybench::Harness;
use splendid_serve::{
    BlobTiers, CacheTier, DiskTier, JobInput, JobRequest, Scheduler, ServeConfig,
};
use splendid_transforms::{optimize_module, O2Options};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         splendid decompile <file.{{ir,c}}> [--variant v1|portable|full] [--quick] [--stats]\n  \
         splendid batch <dir> [--jobs N] [--rounds K] [--variant V] [--stats]\n  \
         splendid bench-serve [--jobs N] [--rounds R] [--json]\n  \
         splendid daemon [--addr A] [--unix PATH] [--jobs N] [--max-connections N] [--idle-timeout SECS] [--deadline SECS] [--cache-dir DIR] [--cache-budget-mb N] [--peer ADDR] [--peer-timeout-ms MS] [--max-pending N] [--degrade-pending N] [--quota-burst N] [--quota-rps N]\n  \
         splendid connect [--addr A] [--unix PATH] [file.{{ir,c}}] [--variant V] [--stats] [--malformed <dir>]\n  \
         splendid bench-daemon [--connections N] [--rounds M] [--functions F] [--addr A] [--json] [--min-speedup X] [--max-update-p50-ms MS]\n  \
         splendid bench-overload [--jobs N] [--rounds R] [--functions F] [--addr A] [--json]\n  \
         splendid difftest [--seed S] [--cases N] [--case I] [--shrink] [--corpus <dir>] [--validate] [--vectorize] [--stats]\n  \
         splendid difftest --faults N [--fault-cases M] [--seed S]\n  \
         splendid validate <file.{{ir,c}}> [--variant V] [--stats] [--addr A] [--unix PATH]\n  \
         splendid bench-validate [--jobs N] [--rounds R] [--json] [--min-verified X]\n  \
         splendid cache <stat|verify|compact> --cache-dir DIR [--cache-budget-mb N]\n  \
         splendid bench-cache [--jobs N] [--rounds R] [--json] [--min-speedup X]\n  \
         splendid dump-polybench <dir>"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("splendid: {msg}");
    std::process::exit(1);
}

/// Minimal flag parser: positionals plus `--flag [value]`.
struct Args {
    positional: Vec<String>,
    jobs: usize,
    rounds: usize,
    variant: Variant,
    stats: bool,
    json: bool,
    seed: String,
    cases: u64,
    only_case: Option<u64>,
    shrink: bool,
    corpus: Option<String>,
    faults: u64,
    fault_cases: u64,
    addr: Option<String>,
    unix: Option<String>,
    max_connections: usize,
    idle_timeout: u64,
    deadline: u64,
    connections: usize,
    functions: usize,
    malformed: Option<String>,
    min_speedup: f64,
    cache_dir: Option<String>,
    cache_budget_mb: u64,
    peer: Option<String>,
    validate: bool,
    vectorize: bool,
    min_verified: f64,
    quick: bool,
    max_update_p50_ms: f64,
    peer_timeout_ms: u64,
    max_pending: usize,
    degrade_pending: usize,
    quota_burst: u32,
    quota_rps: u32,
}

fn parse_args(args: &[String]) -> Args {
    let mut out = Args {
        positional: Vec::new(),
        jobs: 0,
        // 0 = unset; each command applies its own default (batch and
        // bench-serve run 1 round, bench-daemon runs 8).
        rounds: 0,
        variant: Variant::Full,
        stats: false,
        json: false,
        seed: "0xSPLENDID".into(),
        cases: 100,
        only_case: None,
        shrink: false,
        corpus: None,
        faults: 0,
        fault_cases: 8,
        addr: None,
        unix: None,
        max_connections: 32,
        idle_timeout: 300,
        deadline: 30,
        connections: 4,
        functions: 16,
        malformed: None,
        min_speedup: 0.0,
        cache_dir: None,
        cache_budget_mb: 0,
        peer: None,
        validate: false,
        vectorize: false,
        min_verified: 0.9,
        quick: false,
        max_update_p50_ms: 0.0,
        // 0 = keep the peer tier's built-in default (2 s).
        peer_timeout_ms: 0,
        max_pending: 0,
        degrade_pending: 0,
        quota_burst: 0,
        quota_rps: 0,
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--jobs" | "-j" => {
                out.jobs = value("--jobs")
                    .parse()
                    .unwrap_or_else(|_| fail("--jobs: not a number"))
            }
            "--rounds" => {
                out.rounds = value("--rounds")
                    .parse()
                    .unwrap_or_else(|_| fail("--rounds: not a number"))
            }
            "--variant" => {
                out.variant = match value("--variant").as_str() {
                    "v1" => Variant::V1,
                    "portable" => Variant::Portable,
                    "full" => Variant::Full,
                    v => fail(&format!("unknown variant {v:?} (v1|portable|full)")),
                }
            }
            "--stats" => out.stats = true,
            "--json" => out.json = true,
            "--seed" => out.seed = value("--seed"),
            "--cases" => {
                out.cases = value("--cases")
                    .parse()
                    .unwrap_or_else(|_| fail("--cases: not a number"))
            }
            "--case" => {
                out.only_case = Some(
                    value("--case")
                        .parse()
                        .unwrap_or_else(|_| fail("--case: not a number")),
                )
            }
            "--shrink" => out.shrink = true,
            "--corpus" => out.corpus = Some(value("--corpus")),
            "--faults" => {
                out.faults = value("--faults")
                    .parse()
                    .unwrap_or_else(|_| fail("--faults: not a number"))
            }
            "--fault-cases" => {
                out.fault_cases = value("--fault-cases")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-cases: not a number"))
            }
            "--addr" => out.addr = Some(value("--addr")),
            "--unix" => out.unix = Some(value("--unix")),
            "--max-connections" => {
                out.max_connections = value("--max-connections")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-connections: not a number"))
            }
            "--idle-timeout" => {
                out.idle_timeout = value("--idle-timeout")
                    .parse()
                    .unwrap_or_else(|_| fail("--idle-timeout: not a number (seconds, 0 = never)"))
            }
            "--deadline" => {
                out.deadline = value("--deadline")
                    .parse()
                    .unwrap_or_else(|_| fail("--deadline: not a number (seconds, 0 = none)"))
            }
            "--connections" => {
                out.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|_| fail("--connections: not a number"))
            }
            "--functions" => {
                out.functions = value("--functions")
                    .parse()
                    .unwrap_or_else(|_| fail("--functions: not a number"))
            }
            "--malformed" => out.malformed = Some(value("--malformed")),
            "--cache-dir" => out.cache_dir = Some(value("--cache-dir")),
            "--cache-budget-mb" => {
                out.cache_budget_mb = value("--cache-budget-mb")
                    .parse()
                    .unwrap_or_else(|_| fail("--cache-budget-mb: not a number"))
            }
            "--peer" => out.peer = Some(value("--peer")),
            "--min-speedup" => {
                out.min_speedup = value("--min-speedup")
                    .parse()
                    .unwrap_or_else(|_| fail("--min-speedup: not a number"))
            }
            "--validate" => out.validate = true,
            "--vectorize" => out.vectorize = true,
            "--quick" => out.quick = true,
            "--max-update-p50-ms" => {
                out.max_update_p50_ms = value("--max-update-p50-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-update-p50-ms: not a number"))
            }
            "--min-verified" => {
                out.min_verified = value("--min-verified")
                    .parse()
                    .unwrap_or_else(|_| fail("--min-verified: not a number in [0, 1]"))
            }
            "--peer-timeout-ms" => {
                out.peer_timeout_ms = value("--peer-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--peer-timeout-ms: not a number (0 = default 2000)"))
            }
            "--max-pending" => {
                out.max_pending = value("--max-pending")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-pending: not a number (0 = unbounded)"))
            }
            "--degrade-pending" => {
                out.degrade_pending = value("--degrade-pending")
                    .parse()
                    .unwrap_or_else(|_| fail("--degrade-pending: not a number (0 = off)"))
            }
            "--quota-burst" => {
                out.quota_burst = value("--quota-burst")
                    .parse()
                    .unwrap_or_else(|_| fail("--quota-burst: not a number (0 = no quotas)"))
            }
            "--quota-rps" => {
                out.quota_rps = value("--quota-rps")
                    .parse()
                    .unwrap_or_else(|_| fail("--quota-rps: not a number (0 = no quotas)"))
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag {flag}")),
            _ => out.positional.push(a.clone()),
        }
    }
    out
}

fn options_for(variant: Variant, quick: bool) -> SplendidOptions {
    SplendidOptions {
        variant,
        start_tier: if quick {
            splendid_core::FidelityTier::Quick
        } else {
            splendid_core::FidelityTier::Natural
        },
        ..SplendidOptions::default()
    }
}

/// Load one input file as a decompilation request.
fn load_request(path: &Path, variant: Variant, quick: bool) -> JobRequest {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    let input = match path.extension().and_then(|e| e.to_str()) {
        Some("c") => JobInput::Module(compile_c(&text, &name)),
        _ => JobInput::Text(text),
    };
    JobRequest {
        name,
        input,
        options: options_for(variant, quick),
    }
}

/// C source → optimized, auto-parallelized IR (the paper's pipeline input).
fn compile_c(src: &str, name: &str) -> Module {
    let prog = parse_program(src).unwrap_or_else(|e| fail(&format!("{name}: C parse error: {e}")));
    let mut m = lower_program(&prog, name, &LowerOptions::default())
        .unwrap_or_else(|e| fail(&format!("{name}: lowering error: {e}")));
    optimize_module(&mut m, &O2Options::default());
    parallelize_module(&mut m, &ParallelizeOptions::default());
    m
}

fn cmd_decompile(args: Args) {
    let [path] = args.positional.as_slice() else {
        usage()
    };
    let request = load_request(Path::new(path), args.variant, args.quick);
    let scheduler = Scheduler::new(ServeConfig {
        workers: args.jobs,
        ..Default::default()
    });
    match scheduler.submit(request).wait() {
        Ok(result) => {
            print!("{}", result.output.source);
            if args.stats {
                eprintln!(
                    "# {} function(s) in {:?}, {} restored vars of {}",
                    result.functions,
                    result.wall,
                    result.output.naming.restored_vars,
                    result.output.naming.total_vars
                );
                eprint!("{}", scheduler.stats());
            }
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// All `.ir` / `.c` files under a directory, sorted for determinism.
fn batch_inputs(dir: &Path) -> Vec<PathBuf> {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| fail(&format!("{}: {e}", dir.display())));
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("ir") | Some("c")
            )
        })
        .collect();
    files.sort();
    files
}

fn cmd_batch(args: Args) {
    let [dir] = args.positional.as_slice() else {
        usage()
    };
    let files = batch_inputs(Path::new(dir));
    if files.is_empty() {
        fail(&format!("no .ir or .c files in {dir}"));
    }
    let requests: Vec<JobRequest> = files
        .iter()
        .map(|p| load_request(p, args.variant, args.quick))
        .collect();
    let scheduler = Scheduler::new(ServeConfig {
        workers: args.jobs,
        ..Default::default()
    });
    let rounds = args.rounds.max(1);
    println!(
        "batch: {} module(s), {} worker(s), {} round(s)",
        requests.len(),
        scheduler.workers(),
        rounds
    );
    for round in 1..=rounds {
        let start = Instant::now();
        let results = scheduler.decompile_batch(requests.clone());
        let wall = start.elapsed();
        let mut ok = 0usize;
        let mut failed = 0usize;
        let mut functions = 0usize;
        let mut cached = 0usize;
        for (path, r) in files.iter().zip(&results) {
            match r {
                Ok(res) => {
                    ok += 1;
                    functions += res.functions;
                    cached += res.cached_functions;
                }
                Err(e) => {
                    failed += 1;
                    eprintln!("  {}: {e}", path.display());
                }
            }
        }
        let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "round {round}: {ok} ok / {failed} failed, {functions} function(s) \
             ({cached} cached) in {wall:.3?} — {throughput:.1} modules/s"
        );
    }
    if args.stats {
        print!("{}", scheduler.stats());
    }
}

fn cmd_dump_polybench(args: Args) {
    let [dir] = args.positional.as_slice() else {
        usage()
    };
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&format!("{}: {e}", dir.display())));
    let suite = Harness::polly_suite().unwrap_or_else(|e| fail(&e.to_string()));
    for (name, module) in &suite {
        let path = dir.join(format!("{name}.ir"));
        std::fs::write(&path, module_str(module))
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    }
    println!("wrote {} modules to {}", suite.len(), dir.display());
}

/// One measured batch pass; returns the pass wall seconds plus every
/// job's submit-to-completion latency (for the percentile report).
fn run_pass(scheduler: &Scheduler, requests: &[JobRequest]) -> (f64, Vec<Duration>) {
    let start = Instant::now();
    let results = scheduler.decompile_batch(requests.to_vec());
    let wall = start.elapsed().as_secs_f64();
    let mut latencies = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(res) => latencies.push(res.wall),
            Err(e) => fail(&format!("bench-serve job failed: {e}")),
        }
    }
    (wall, latencies)
}

fn cmd_bench_serve(args: Args) {
    let parallel_jobs = if args.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        args.jobs
    };
    let rounds = args.rounds.max(1);
    let suite = Harness::polly_suite().unwrap_or_else(|e| fail(&e.to_string()));
    let requests: Vec<JobRequest> = suite
        .into_iter()
        .map(|(name, m)| JobRequest::from_module(name, m))
        .collect();
    let modules = requests.len();

    // Serial baseline: one worker, cold cache each round.
    let mut serial = f64::MAX;
    for _ in 0..rounds {
        let s = Scheduler::new(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        serial = serial.min(run_pass(&s, &requests).0);
    }

    // Parallel: N workers, cold cache each round; keep the last scheduler
    // warm for the cache pass. Per-job latencies across all cold parallel
    // rounds feed the percentile report (mean-only reporting hides tail
    // latency).
    let mut parallel = f64::MAX;
    let mut warm = f64::MAX;
    let mut hit_rate = 0.0;
    let mut job_latencies: Vec<Duration> = Vec::new();
    for _ in 0..rounds {
        let s = Scheduler::new(ServeConfig {
            workers: parallel_jobs,
            ..Default::default()
        });
        let (pass_wall, pass_latencies) = run_pass(&s, &requests);
        parallel = parallel.min(pass_wall);
        job_latencies.extend(pass_latencies);
        let before = s.stats().cache;
        warm = warm.min(run_pass(&s, &requests).0);
        let after = s.stats().cache;
        let lookups = (after.hits - before.hits) + (after.misses - before.misses);
        hit_rate = if lookups == 0 {
            0.0
        } else {
            (after.hits - before.hits) as f64 / lookups as f64
        };
        if !args.json {
            print!("{}", s.stats());
        }
    }

    let speedup = serial / parallel.max(1e-9);
    let warm_speedup = serial / warm.max(1e-9);
    let p = percentiles(&job_latencies);
    if args.json {
        // Hand-rolled JSON: the offline build has no serde.
        println!("{{");
        println!("  \"benchmark\": \"bench-serve\",");
        println!("  \"modules\": {modules},");
        println!("  \"workers\": {parallel_jobs},");
        // A serial run still records honest numbers, but its "parallel
        // speedup" is scheduler overhead, not parallelism — annotate so
        // downstream gates (scripts/bench_serve.sh) skip it explicitly
        // instead of blessing a meaningless ratio.
        let gate = if parallel_jobs <= 1 {
            "skipped: workers=1, parallel speedup is not meaningful on a serial run"
        } else {
            "enforced"
        };
        println!("  \"parallel_gate\": \"{gate}\",");
        println!("  \"rounds\": {rounds},");
        println!("  \"serial_seconds\": {serial:.6},");
        println!("  \"parallel_seconds\": {parallel:.6},");
        println!("  \"warm_cache_seconds\": {warm:.6},");
        println!("  \"job_latency\": {},", p.json());
        println!("  \"parallel_speedup\": {speedup:.3},");
        println!("  \"warm_speedup\": {warm_speedup:.3},");
        println!("  \"warm_cache_hit_rate\": {hit_rate:.4},");
        println!(
            "  \"serial_modules_per_sec\": {:.3},",
            modules as f64 / serial.max(1e-9)
        );
        println!(
            "  \"parallel_modules_per_sec\": {:.3}",
            modules as f64 / parallel.max(1e-9)
        );
        println!("}}");
    } else {
        println!("bench-serve: {modules} polybench modules, best of {rounds} round(s)");
        println!(
            "  serial   (1 worker)   {serial:.3}s  ({:.1} modules/s)",
            modules as f64 / serial
        );
        println!(
            "  parallel ({parallel_jobs} workers)  {parallel:.3}s  ({:.1} modules/s, {speedup:.2}x)",
            modules as f64 / parallel
        );
        println!(
            "  warm cache            {warm:.3}s  ({:.1} modules/s, {warm_speedup:.2}x, {:.1}% hits)",
            modules as f64 / warm,
            100.0 * hit_rate
        );
        println!(
            "  job latency           p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms  ({} samples)",
            p.p50_ms, p.p95_ms, p.p99_ms, p.samples
        );
    }
}

/// Decompilation backend for the differential oracle that routes every
/// request through the service scheduler. The oracle decompiles each
/// module twice (for its stability route), so the second decompilation of
/// every function exercises the function cache's hit path — the campaign
/// differential-tests the cache along with the pipeline.
struct SchedulerDecompiler<'a> {
    scheduler: &'a Scheduler,
}

impl splendid_difftest::Decompiler for SchedulerDecompiler<'_> {
    fn decompile(&self, module: &Module, opts: &SplendidOptions) -> Result<String, String> {
        let request = JobRequest {
            name: "difftest".into(),
            input: JobInput::Module(module.clone()),
            options: opts.clone(),
        };
        self.scheduler
            .submit(request)
            .wait()
            .map(|result| result.output.source)
            .map_err(|e| e.to_string())
    }
}

fn cmd_difftest(args: Args) {
    use splendid_difftest::{
        parse_seed, replay_corpus_source, run_difftest, run_fault_campaign, DifftestConfig,
        FaultCampaignConfig, Oracle,
    };

    // Fault-injection mode: a dedicated seeded campaign proving every
    // injected pipeline fault yields degraded-but-checksum-correct output.
    if args.faults > 0 {
        let cfg = FaultCampaignConfig {
            seed: parse_seed(&args.seed),
            faults: args.faults,
            cases: args.fault_cases,
        };
        let start = Instant::now();
        let report = run_fault_campaign(&cfg);
        print!("{report}");
        if args.stats {
            eprintln!("# wall: {:?}", start.elapsed());
        }
        if !report.all_passed() {
            std::process::exit(1);
        }
        return;
    }

    let scheduler = Scheduler::new(ServeConfig {
        workers: args.jobs,
        ..Default::default()
    });
    let dec = SchedulerDecompiler {
        scheduler: &scheduler,
    };
    let mut oracle = Oracle::new(&dec);
    oracle.vectorize = args.vectorize;

    // Corpus replay first, if requested: every checked-in program must
    // keep agreeing on every route.
    if let Some(dir) = &args.corpus {
        let files = {
            let mut f: Vec<PathBuf> = std::fs::read_dir(dir)
                .unwrap_or_else(|e| fail(&format!("{dir}: {e}")))
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("c"))
                .collect();
            f.sort();
            f
        };
        if files.is_empty() {
            fail(&format!("no .c files in {dir}"));
        }
        for path in &files {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
            if let Err(f) = replay_corpus_source(&oracle, &src) {
                eprintln!("corpus FAIL {}:\n  {f}", path.display());
                std::process::exit(1);
            }
        }
        println!("corpus: {} program(s) ok", files.len());
    }

    let cfg = DifftestConfig {
        seed: parse_seed(&args.seed),
        cases: args.cases,
        shrink: args.shrink,
        only_case: args.only_case,
        min_work: 0,
        validate: args.validate,
    };
    let start = Instant::now();
    let report = run_difftest(&oracle, &cfg);
    // Report to stdout (byte-deterministic); timing and service stats to
    // stderr so two runs' stdout can be diffed.
    print!("{report}");
    if args.stats {
        eprintln!("# wall: {:?}", start.elapsed());
        eprint!("{}", scheduler.stats());
    }
    if !report.validator_sound() {
        eprintln!("difftest: validator certified a decompilation the oracle refuted");
        std::process::exit(1);
    }
    if !report.all_passed() {
        std::process::exit(1);
    }
}

/// `splendid validate` — one validated decompilation, local or against a
/// daemon. Local runs submit through a scheduler with the equivalence
/// checker enabled; remote runs use the stateless VALIDATE frame. Either
/// way the printed source carries the per-function `/* splendid:
/// verified */` / `/* splendid: UNVERIFIED: ... */` annotations.
fn cmd_validate(args: Args) {
    let [path] = args.positional.as_slice() else {
        usage()
    };
    let path = Path::new(path);

    // Remote: hand the module to a daemon over the VALIDATE frame.
    if args.addr.is_some() || args.unix.is_some() {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        let ir_text = match path.extension().and_then(|e| e.to_str()) {
            Some("c") => module_str(&compile_c(&text, &name)),
            _ => text,
        };
        let mut client = connect_client(&args);
        match client.validate(&name, variant_wire_byte(args.variant), &ir_text) {
            Ok(splendid_daemon::Response::Validated {
                functions,
                verified,
                unverified,
                wall_micros,
                source,
            }) => {
                print!("{source}");
                eprintln!(
                    "# validate: {functions} function(s), {verified} verified, \
                     {unverified} unverified, {wall_micros}us server-side"
                );
                if unverified > 0 {
                    std::process::exit(1);
                }
            }
            Ok(_) => fail("validate: unexpected response kind"),
            Err(e) => fail(&format!("validate: {e}")),
        }
        return;
    }

    // Local: scheduler with the checker switched on.
    let mut request = load_request(path, args.variant, args.quick);
    request.options.validate = true;
    let scheduler = Scheduler::new(ServeConfig {
        workers: args.jobs,
        ..Default::default()
    });
    match scheduler.submit(request).wait() {
        Ok(result) => {
            print!("{}", result.output.source);
            eprintln!(
                "# validate: {} function(s), {} verified, {} unverified in {:?}",
                result.functions,
                result.verified_functions,
                result.unverified_functions,
                result.wall
            );
            if args.stats {
                eprint!("{}", scheduler.stats());
            }
            if result.unverified_functions > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// `splendid bench-validate` — the cost and coverage of translation
/// validation over the PolyBench suite: an unvalidated baseline, a cold
/// validated pass (every certificate proven from scratch), and a
/// warm-restart validated pass (a fresh scheduler over the persisted
/// store, so verdicts replay from disk certificates instead of probe
/// runs). Gated on the fraction of functions proven `Verified`.
fn cmd_bench_validate(args: Args) {
    let workers = if args.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        args.jobs
    };
    let rounds = args.rounds.max(1);
    let min_verified = args.min_verified;

    let suite = Harness::polly_suite().unwrap_or_else(|e| fail(&e.to_string()));
    let plain: Vec<JobRequest> = suite
        .iter()
        .map(|(name, m)| JobRequest::from_module(name.clone(), m.clone()))
        .collect();
    let validated: Vec<JobRequest> = suite
        .iter()
        .map(|(name, m)| JobRequest {
            name: name.clone(),
            input: JobInput::Module(m.clone()),
            options: SplendidOptions {
                validate: true,
                ..SplendidOptions::default()
            },
        })
        .collect();
    let modules = plain.len();

    let base = std::env::temp_dir().join(format!("splendid-bench-validate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let store = base.join("store");

    // Unvalidated baseline: same modules, checker off, no persistence.
    let mut baseline = f64::MAX;
    for _ in 0..rounds {
        let s = Scheduler::new(ServeConfig {
            workers,
            ..Default::default()
        });
        baseline = baseline.min(run_pass(&s, &plain).0);
    }

    // Validated cold and warm-restart passes over a persistent store.
    let mut cold = f64::MAX;
    let mut warm = f64::MAX;
    let mut functions = 0u64;
    let mut verified = 0u64;
    let mut unverified = 0u64;
    let mut cold_checks = 0u64;
    let mut warm_certs = 0u64;
    for _ in 0..rounds {
        let _ = std::fs::remove_dir_all(&store);
        let s = tiered_scheduler(&store, workers, None);
        let start = Instant::now();
        let results = s.decompile_batch(validated.clone());
        let pass = start.elapsed().as_secs_f64();
        if pass < cold {
            cold = pass;
            functions = 0;
            verified = 0;
            unverified = 0;
            for r in &results {
                match r {
                    Ok(res) => {
                        functions += res.functions as u64;
                        verified += res.verified_functions as u64;
                        unverified += res.unverified_functions as u64;
                    }
                    Err(e) => fail(&format!("bench-validate job failed: {e}")),
                }
            }
            cold_checks = s.stats().validations_run;
        }
        s.flush_cache();
        drop(s);

        // Warm restart: fresh scheduler, same store — certificates must
        // answer from disk without re-running probes.
        let s = tiered_scheduler(&store, workers, None);
        let pass = run_pass(&s, &validated).0;
        if pass < warm {
            warm = pass;
            warm_certs = s.stats().certs_from_cache;
        }
        drop(s);
    }
    let _ = std::fs::remove_dir_all(&base);

    let verified_fraction = if functions == 0 {
        0.0
    } else {
        verified as f64 / functions as f64
    };
    let overhead = cold / baseline.max(1e-9);
    let warm_speedup = cold / warm.max(1e-9);
    if args.json {
        // Hand-rolled JSON: the offline build has no serde.
        println!("{{");
        println!("  \"benchmark\": \"bench-validate\",");
        println!("  \"modules\": {modules},");
        println!("  \"workers\": {workers},");
        println!("  \"rounds\": {rounds},");
        println!("  \"functions\": {functions},");
        println!("  \"verified\": {verified},");
        println!("  \"unverified\": {unverified},");
        println!("  \"verified_fraction\": {verified_fraction:.4},");
        println!("  \"baseline_seconds\": {baseline:.6},");
        println!("  \"validate_cold_seconds\": {cold:.6},");
        println!("  \"validate_warm_seconds\": {warm:.6},");
        println!("  \"validate_overhead\": {overhead:.3},");
        println!("  \"cold_checks_run\": {cold_checks},");
        println!("  \"warm_certs_from_cache\": {warm_certs},");
        println!("  \"warm_speedup\": {warm_speedup:.3}");
        println!("}}");
    } else {
        println!(
            "bench-validate: {modules} polybench modules, best of {rounds} round(s), {workers} worker(s)"
        );
        println!(
            "  verdicts              {verified} verified / {unverified} unverified of {functions} \
             ({:.1}% verified)",
            100.0 * verified_fraction
        );
        println!("  baseline (no checks)  {baseline:.3}s");
        println!(
            "  validate cold         {cold:.3}s  ({overhead:.2}x baseline, {cold_checks} checks run)"
        );
        println!(
            "  validate warm restart {warm:.3}s  ({warm_speedup:.2}x vs cold, {warm_certs} certs from disk)"
        );
    }

    if verified_fraction < min_verified {
        eprintln!(
            "bench-validate: verified fraction {:.1}% is below the required {:.1}%",
            100.0 * verified_fraction,
            100.0 * min_verified
        );
        std::process::exit(1);
    }
    if warm_certs == 0 {
        eprintln!("bench-validate: warm restart replayed no certificates from disk");
        std::process::exit(1);
    }
}

/// SIGTERM/SIGINT handling for daemon mode, via direct libc FFI (the
/// offline build has no signal crate). The handler only flips an atomic;
/// the daemon main loop notices and drains.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Install the handlers; returns false if the libc call failed.
    pub fn install() {
        // SAFETY: `signal` with an async-signal-safe handler (a single
        // relaxed-to-seqcst atomic store) is the classic minimal setup.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

fn daemon_config_from(args: &Args) -> DaemonConfig {
    DaemonConfig {
        addr: args
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7777".to_string()),
        unix_path: args.unix.clone().map(PathBuf::from),
        max_connections: args.max_connections.max(1),
        idle_timeout: match args.idle_timeout {
            0 => None,
            s => Some(Duration::from_secs(s)),
        },
        drain_timeout: Duration::from_secs(30),
        serve: ServeConfig {
            workers: args.jobs,
            job_timeout: match args.deadline {
                0 => None,
                s => Some(Duration::from_secs(s)),
            },
            max_pending_jobs: args.max_pending,
            degrade_pending_jobs: args.degrade_pending,
            quota_burst: args.quota_burst,
            quota_per_sec: args.quota_rps,
            ..Default::default()
        },
        cache_dir: args.cache_dir.clone().map(PathBuf::from),
        cache_budget_bytes: match args.cache_budget_mb {
            0 => None,
            mb => Some(mb * 1024 * 1024),
        },
        peer: args.peer.clone(),
        peer_timeout: match args.peer_timeout_ms {
            0 => splendid_daemon::DEFAULT_PEER_TIMEOUT,
            ms => Duration::from_millis(ms),
        },
    }
}

fn cmd_daemon(args: Args) {
    let config = daemon_config_from(&args);
    let daemon = Daemon::start(config.clone()).unwrap_or_else(|e| fail(&format!("daemon: {e}")));
    eprintln!(
        "splendid daemon listening on {}{} ({} worker(s), {} connection cap)",
        daemon.local_addr(),
        config
            .unix_path
            .as_ref()
            .map(|p| format!(" and {}", p.display()))
            .unwrap_or_default(),
        if args.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            args.jobs
        },
        config.max_connections
    );
    #[cfg(unix)]
    {
        sig::install();
        while !sig::requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
        eprintln!("splendid daemon: signal received, draining...");
    }
    #[cfg(not(unix))]
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
    #[cfg(unix)]
    {
        let stats = daemon.stats_text();
        let clean = daemon.drain();
        eprint!("{stats}");
        if clean {
            eprintln!("splendid daemon: drained cleanly");
            std::process::exit(0);
        }
        eprintln!("splendid daemon: drain timed out with connections still open");
        std::process::exit(1);
    }
}

fn connect_client(args: &Args) -> DaemonClient {
    #[cfg(unix)]
    if let Some(path) = &args.unix {
        return DaemonClient::connect_unix(path)
            .unwrap_or_else(|e| fail(&format!("connect {path}: {e}")));
    }
    let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:7777".into());
    DaemonClient::connect_tcp(&addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

fn variant_wire_byte(v: Variant) -> u8 {
    match v {
        Variant::V1 => 1,
        Variant::Portable => 2,
        Variant::Full => 3,
    }
}

/// Parse a `.hex` corpus file: whitespace-separated hex bytes, `#`
/// comments. Returns the raw bytes to hurl at the daemon.
fn parse_hex_corpus(text: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            out.push(u8::from_str_radix(tok, 16).map_err(|_| format!("bad hex byte {tok:?}"))?);
        }
    }
    Ok(out)
}

/// Replay a directory of `.hex` malformed-frame files against the
/// daemon: each file gets a fresh connection; after every replay a new
/// connection must still PING — the daemon never dies to bad input.
fn cmd_connect_malformed(args: &Args, dir: &str) {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| fail(&format!("{dir}: {e}")))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("hex"))
        .collect();
    files.sort();
    if files.is_empty() {
        fail(&format!("no .hex files in {dir}"));
    }
    for path in &files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        let bytes =
            parse_hex_corpus(&text).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        let mut client = connect_client(args);
        client
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap_or_else(|e| fail(&e.to_string()));
        client
            .send_raw(&bytes)
            .unwrap_or_else(|e| fail(&format!("{}: send: {e}", path.display())));
        // Drain whatever (typed errors, usually) the daemon says back.
        let mut responses = 0usize;
        while client.read_response().is_ok() {
            responses += 1;
        }
        drop(client);
        // Liveness proof on a fresh connection.
        let mut probe = connect_client(args);
        probe
            .ping()
            .unwrap_or_else(|e| fail(&format!("{}: daemon died: {e}", path.display())));
        println!(
            "malformed {}: {} byte(s), {} response(s), daemon alive",
            path.file_name()
                .map(|f| f.to_string_lossy())
                .unwrap_or_default(),
            bytes.len(),
            responses
        );
    }
    println!("malformed corpus: {} file(s) survived", files.len());
}

fn cmd_connect(args: Args) {
    if let Some(dir) = args.malformed.clone() {
        cmd_connect_malformed(&args, &dir);
        return;
    }
    match args.positional.as_slice() {
        [] => {
            if !args.stats {
                fail("connect: give a file to decompile, --stats, or --malformed <dir>");
            }
            let mut client = connect_client(&args);
            let text = client
                .stats(true)
                .unwrap_or_else(|e| fail(&format!("stats: {e}")));
            print!("{text}");
        }
        [path] => {
            let path = Path::new(path);
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
            let ir_text = match path.extension().and_then(|e| e.to_str()) {
                Some("c") => module_str(&compile_c(&text, &name)),
                _ => text,
            };
            let mut client = connect_client(&args);
            let (session, functions) = client
                .open(&name, variant_wire_byte(args.variant), &ir_text)
                .unwrap_or_else(|e| fail(&format!("open: {e}")));
            match client.decompile() {
                Ok(splendid_daemon::Response::Result {
                    source,
                    cached,
                    wall_micros,
                    ..
                }) => {
                    print!("{source}");
                    if args.stats {
                        eprintln!(
                            "# session {session}: {functions} function(s), {cached} cached, \
                             {wall_micros}us server-side"
                        );
                        let stats = client
                            .stats(false)
                            .unwrap_or_else(|e| fail(&format!("stats: {e}")));
                        eprint!("{stats}");
                    }
                }
                Ok(_) => fail("decompile: unexpected response kind"),
                Err(e) => fail(&format!("decompile: {e}")),
            }
            client
                .close()
                .unwrap_or_else(|e| fail(&format!("close: {e}")));
        }
        _ => usage(),
    }
}

fn cmd_bench_daemon(args: Args) {
    let cfg = BenchConfig {
        connections: args.connections.max(1),
        rounds: if args.rounds == 0 { 8 } else { args.rounds },
        functions: args.functions.max(1),
        addr: args.addr.clone(),
    };
    let report =
        splendid_daemon::run_bench(&cfg).unwrap_or_else(|e| fail(&format!("bench-daemon: {e}")));
    if args.json {
        print!("{}", report.json());
    } else {
        print!("{}", report.text());
    }
    if args.min_speedup > 0.0 && report.incremental_speedup < args.min_speedup {
        eprintln!(
            "bench-daemon: incremental speedup {:.2}x is below the required {:.2}x",
            report.incremental_speedup, args.min_speedup
        );
        std::process::exit(1);
    }
    if args.max_update_p50_ms > 0.0 && report.update.p50_ms > args.max_update_p50_ms {
        eprintln!(
            "bench-daemon: UPDATE p50 {:.3}ms exceeds the allowed {:.3}ms",
            report.update.p50_ms, args.max_update_p50_ms
        );
        std::process::exit(1);
    }
}

/// `splendid bench-overload` — behavior past saturation: dead-peer
/// breaker cost, baseline vs 4×-overloaded goodput, shed rate, and p99
/// under overload. In-process mode (no `--addr`) starts a daemon with a
/// deliberately small admission queue and gates on the report; attach
/// mode drives an external daemon and only gates the breaker phase (the
/// smoke script asserts sheds from the daemon's own STATS text).
fn cmd_bench_overload(args: Args) {
    let cfg = splendid_daemon::OverloadConfig {
        workers: if args.jobs == 0 { 2 } else { args.jobs },
        rounds: if args.rounds == 0 { 8 } else { args.rounds },
        functions: args.functions.clamp(1, 8),
        addr: args.addr.clone(),
        ..Default::default()
    };
    let report = splendid_daemon::run_overload_bench(&cfg)
        .unwrap_or_else(|e| fail(&format!("bench-overload: {e}")));
    if args.json {
        print!("{}", report.json());
    } else {
        print!("{}", report.text());
    }
    if !report.gates.passed() {
        eprintln!("bench-overload: gates failed: {:?}", report.gates);
        std::process::exit(1);
    }
}

/// `splendid cache <stat|verify|compact>` — offline administration of a
/// persistent cache directory. Opening the store already performs crash
/// recovery (rescanning segments and truncating any torn tail), so
/// `verify` on a previously crashed store reports what recovery dropped
/// and then checks the repaired invariants.
fn cmd_cache(args: Args) {
    let [action] = args.positional.as_slice() else {
        usage()
    };
    let dir = args
        .cache_dir
        .clone()
        .unwrap_or_else(|| fail("cache: --cache-dir <dir> is required"));
    let mut config = StoreConfig::default();
    if args.cache_budget_mb > 0 {
        config.budget_bytes = args.cache_budget_mb * 1024 * 1024;
    }
    let mut store = CacheStore::open(Path::new(&dir), config)
        .unwrap_or_else(|e| fail(&format!("cache: open {dir}: {e}")));
    match action.as_str() {
        "stat" => {
            let stat = store
                .stat()
                .unwrap_or_else(|e| fail(&format!("cache stat: {e}")));
            let c = store.counters();
            println!("cache store {dir}");
            println!(
                "  segments   {} file(s), {} bytes on disk (budget {})",
                stat.segments, stat.total_bytes, stat.budget_bytes
            );
            println!(
                "  records    {} live ({} live bytes), {} index slots",
                stat.live_records, stat.live_bytes, stat.index_slots
            );
            println!(
                "  recovery   {} rebuild(s), {} torn byte(s) dropped, {} crc drop(s)",
                c.rebuilds, c.torn_bytes, c.crc_drops
            );
        }
        "verify" => {
            let report = store
                .verify()
                .unwrap_or_else(|e| fail(&format!("cache verify: {e}")));
            let c = store.counters();
            println!("cache verify {dir}");
            println!(
                "  {} segment(s), {} intact record(s) on disk, {} live index entries",
                report.segments, report.disk_records, report.index_entries
            );
            println!(
                "  {} torn byte(s), {} dangling index entr(ies)",
                report.torn_bytes, report.index_dangling
            );
            if c.rebuilds > 0 {
                println!(
                    "  recovery at open: {} rebuild(s), {} torn byte(s) dropped",
                    c.rebuilds, c.torn_bytes
                );
            }
            if report.ok() {
                println!("  ok");
            } else {
                fail("cache verify: store is inconsistent");
            }
        }
        "compact" => {
            let stats = store
                .compact()
                .unwrap_or_else(|e| fail(&format!("cache compact: {e}")));
            println!("cache compact {dir}");
            println!(
                "  kept {} record(s), dropped {} superseded/dead",
                stats.kept_records, stats.dropped_records
            );
            println!(
                "  {} bytes -> {} bytes",
                stats.bytes_before, stats.bytes_after
            );
        }
        other => fail(&format!(
            "cache: unknown action {other:?} (stat|verify|compact)"
        )),
    }
}

/// Scheduler with a disk tier (and optionally a peer tier behind it).
fn tiered_scheduler(dir: &Path, workers: usize, peer: Option<&str>) -> Scheduler {
    let disk = DiskTier::open(dir, StoreConfig::default())
        .unwrap_or_else(|e| fail(&format!("bench-cache: open {}: {e}", dir.display())));
    let mut tiers: Vec<Arc<dyn CacheTier>> = vec![Arc::new(disk)];
    if let Some(addr) = peer {
        tiers.push(Arc::new(PeerTier::new(addr)));
    }
    Scheduler::new_with_tiers(
        ServeConfig {
            workers,
            ..Default::default()
        },
        BlobTiers::new(tiers),
    )
}

/// `splendid bench-cache` — cold vs warm-restart vs peer-fed over the
/// PolyBench suite, gated: a warm restart must be at least `--min-speedup`
/// (default 5) times faster than cold, the warm disk hit rate must
/// exceed 90%, and a peer-fed fresh store must beat cold.
fn cmd_bench_cache(args: Args) {
    let workers = if args.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        args.jobs
    };
    let rounds = args.rounds.max(1);
    let min_speedup = if args.min_speedup > 0.0 {
        args.min_speedup
    } else {
        5.0
    };

    // Text inputs: the persistent tier answers whole modules by content
    // key before parse, which is exactly the warm-restart path a daemon
    // reopening its store takes.
    let suite = Harness::polly_suite().unwrap_or_else(|e| fail(&e.to_string()));
    let requests: Vec<JobRequest> = suite
        .into_iter()
        .map(|(name, m)| JobRequest {
            name,
            input: JobInput::Text(module_str(&m)),
            options: SplendidOptions::default(),
        })
        .collect();
    let modules = requests.len();

    let base = std::env::temp_dir().join(format!("splendid-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let store_a = base.join("store-a");

    let mut cold = f64::MAX;
    let mut warm = f64::MAX;
    let mut hit_rate = 0.0f64;
    for _ in 0..rounds {
        // Cold: empty store, everything decompiles for real.
        let _ = std::fs::remove_dir_all(&store_a);
        let s = tiered_scheduler(&store_a, workers, None);
        cold = cold.min(run_pass(&s, &requests).0);
        s.flush_cache();
        drop(s);

        // Warm restart: new process image (fresh scheduler, empty LRU)
        // over the persisted store.
        let s = tiered_scheduler(&store_a, workers, None);
        warm = warm.min(run_pass(&s, &requests).0);
        if let Some(disk) = s.stats().tiers.iter().find(|t| t.name == "disk") {
            let lookups = disk.hits + disk.misses;
            if lookups > 0 {
                hit_rate = hit_rate.max(disk.hits as f64 / lookups as f64);
            }
        }
        s.flush_cache();
        drop(s);
    }

    // Peer-fed: a daemon serves the warm store over CACHE_GET; a fresh
    // empty store fills from it instead of decompiling.
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(store_a.clone()),
        ..Default::default()
    })
    .unwrap_or_else(|e| fail(&format!("bench-cache: peer daemon: {e}")));
    let peer_addr = daemon.local_addr().to_string();
    let mut peer_fed = f64::MAX;
    for round in 0..rounds {
        let store_b = base.join(format!("store-b-{round}"));
        let s = tiered_scheduler(&store_b, workers, Some(&peer_addr));
        peer_fed = peer_fed.min(run_pass(&s, &requests).0);
        drop(s);
    }
    daemon.drain();
    let _ = std::fs::remove_dir_all(&base);

    let warm_speedup = cold / warm.max(1e-9);
    let peer_speedup = cold / peer_fed.max(1e-9);
    if args.json {
        // Hand-rolled JSON: the offline build has no serde.
        println!("{{");
        println!("  \"benchmark\": \"bench-cache\",");
        println!("  \"modules\": {modules},");
        println!("  \"workers\": {workers},");
        println!("  \"rounds\": {rounds},");
        println!("  \"cold_seconds\": {cold:.6},");
        println!("  \"warm_restart_seconds\": {warm:.6},");
        println!("  \"peer_fed_seconds\": {peer_fed:.6},");
        println!("  \"warm_speedup\": {warm_speedup:.3},");
        println!("  \"peer_speedup\": {peer_speedup:.3},");
        println!("  \"warm_disk_hit_rate\": {hit_rate:.4}");
        println!("}}");
    } else {
        println!("bench-cache: {modules} polybench modules, best of {rounds} round(s), {workers} worker(s)");
        println!(
            "  cold (empty store)    {cold:.3}s  ({:.1} modules/s)",
            modules as f64 / cold
        );
        println!(
            "  warm restart          {warm:.3}s  ({:.1} modules/s, {warm_speedup:.2}x, {:.1}% disk hits)",
            modules as f64 / warm,
            100.0 * hit_rate
        );
        println!(
            "  peer-fed fresh store  {peer_fed:.3}s  ({:.1} modules/s, {peer_speedup:.2}x)",
            modules as f64 / peer_fed
        );
    }

    if warm_speedup < min_speedup {
        eprintln!(
            "bench-cache: warm restart speedup {warm_speedup:.2}x is below the required {min_speedup:.2}x"
        );
        std::process::exit(1);
    }
    if hit_rate <= 0.9 {
        eprintln!(
            "bench-cache: warm disk hit rate {:.1}% is not above 90%",
            100.0 * hit_rate
        );
        std::process::exit(1);
    }
    if peer_fed >= cold {
        eprintln!("bench-cache: peer-fed run ({peer_fed:.3}s) did not beat cold ({cold:.3}s)");
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    let args = parse_args(rest);
    match cmd.as_str() {
        "decompile" => cmd_decompile(args),
        "batch" => cmd_batch(args),
        "bench-serve" => cmd_bench_serve(args),
        "daemon" => cmd_daemon(args),
        "connect" => cmd_connect(args),
        "bench-daemon" => cmd_bench_daemon(args),
        "bench-overload" => cmd_bench_overload(args),
        "difftest" => cmd_difftest(args),
        "validate" => cmd_validate(args),
        "bench-validate" => cmd_bench_validate(args),
        "cache" => cmd_cache(args),
        "bench-cache" => cmd_bench_cache(args),
        "dump-polybench" => cmd_dump_polybench(args),
        _ => usage(),
    }
}
