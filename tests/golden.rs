//! Golden snapshot tests: the decompiled C for every polybench kernel is
//! pinned under `tests/golden/`. Any change to the decompiler's output —
//! structure recovery, naming, pragma placement, formatting — shows up as
//! a reviewable diff instead of a silent drift.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use splendid::core::{decompile, SplendidOptions};
use splendid::polybench::Harness;
use std::fmt::Write as _;
use std::path::Path;

#[test]
fn polybench_decompilation_matches_golden_snapshots() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let suite = Harness::polly_suite().expect("polly suite builds");
    assert!(
        suite.len() >= 16,
        "expected the full polybench suite, got {} kernels",
        suite.len()
    );

    let mut report = String::new();
    for (name, module) in &suite {
        let out = decompile(module, &SplendidOptions::default())
            .unwrap_or_else(|e| panic!("{name}: decompilation failed: {e}"));
        let path = dir.join(format!("{name}.c"));
        if update {
            std::fs::write(&path, &out.source)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == out.source => {}
            Ok(want) => {
                let first_diff = want
                    .lines()
                    .zip(out.source.lines())
                    .position(|(a, b)| a != b)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| want.lines().count().min(out.source.lines().count()) + 1);
                let _ = writeln!(
                    report,
                    "  {name}: output differs from {} (first difference at line {first_diff})",
                    path.display()
                );
            }
            Err(e) => {
                let _ = writeln!(report, "  {name}: cannot read {}: {e}", path.display());
            }
        }
    }
    assert!(
        report.is_empty(),
        "golden snapshots out of date:\n{report}\
         regenerate with: UPDATE_GOLDEN=1 cargo test --test golden"
    );
}
