//! SIMD golden snapshots: the decompiled C for *vectorized* builds of
//! four PolyBench-style kernels is pinned under `tests/golden/simd/`.
//! Each kernel is compiled to `-O2` IR, widened by the deterministic
//! vectorizer, and decompiled — the devectorizer recovers the loops as
//! `#pragma omp simd` (with `reduction` clauses where the vectorizer
//! converted an accumulator), so these snapshots pin the whole
//! vector-IR-in / pragma-out path.
//!
//! Besides the textual snapshot, every kernel is checked semantically:
//! the vectorized IR executed by the interpreter, the scalar IR, and the
//! recompiled devectorized C must all produce bitwise-identical
//! checksums.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_simd
//! ```

use splendid::cfront::OmpRuntime;
use splendid::core::{decompile, SplendidOptions};
use splendid::interp::{CompilerProfile, MachineConfig};
use splendid::polybench::{kernels::benchmark, Harness};
use splendid::transforms::vectorize::{vectorize_module, VectorizeOptions};
use std::fmt::Write as _;
use std::path::Path;

/// A dot-product kernel: PolyBench has no reduction-only kernel this
/// small, and the SIMD scenario needs one whose accumulator becomes a
/// `reduction(+:...)` clause.
const DOT: &str = r#"
#define N 120
double A[120];
double B[120];
double S[1];

void init() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = 0.5 + i * 0.125;
    B[i] = 2.0 - i * 0.0625;
  }
}

void kernel() {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < N; i++) {
    s = s + A[i] * B[i];
  }
  S[0] = s;
}
"#;

struct SimdCase {
    /// Snapshot file stem under `tests/golden/simd/`.
    name: &'static str,
    /// Sequential C source fed to the `-O2` pipeline.
    source: &'static str,
    /// Globals checksummed after init+kernel.
    check_globals: &'static [&'static str],
    /// Loops the vectorizer must widen. gemm is legitimately 0: its
    /// inner loops reduce through memory and read `B[k][j]` at stride N,
    /// both outside the stride-1 lane model — the snapshot pins the
    /// honest scalar fallback.
    want_loops: usize,
    /// Accumulators converted to ordered `reduce` form.
    want_reductions: usize,
}

fn cases() -> Vec<SimdCase> {
    let suite = |name: &'static str, want_loops: usize| {
        let b = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        SimdCase {
            name,
            source: b.sequential,
            check_globals: b.check_globals,
            want_loops,
            want_reductions: 0,
        }
    };
    vec![
        suite("gemm", 0),
        // jacobi-1d: the stencil loop (iv±1 neighbor loads) and the
        // copy-back loop.
        suite("jacobi-1d-imper", 2),
        // atax: the y-update loop; the tmp loop reduces through memory.
        suite("atax", 1),
        SimdCase {
            name: "dot",
            source: DOT,
            check_globals: &["A", "B", "S"],
            want_loops: 2,
            want_reductions: 1,
        },
    ]
}

#[test]
fn vectorized_builds_match_golden_snapshots() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/simd");
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden/simd");
    }

    let mut report = String::new();
    for case in cases() {
        let name = case.name;
        let mut m = Harness::compile(case.source, OmpRuntime::LibOmp)
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let scalar = Harness::run(&m, MachineConfig::default(), case.check_globals)
            .unwrap_or_else(|e| panic!("{name}: scalar run: {e}"));

        let stats = vectorize_module(&mut m, &VectorizeOptions::default());
        assert_eq!(
            stats.vectorized_loops, case.want_loops,
            "{name}: vectorized loop count"
        );
        assert_eq!(
            stats.reductions, case.want_reductions,
            "{name}: reduction count"
        );

        // The vector IR itself computes the same bits as the scalar IR.
        let wide = Harness::run(&m, MachineConfig::default(), case.check_globals)
            .unwrap_or_else(|e| panic!("{name}: vectorized run: {e}"));
        assert_eq!(
            scalar.0.to_bits(),
            wide.0.to_bits(),
            "{name}: vectorized IR checksum diverged"
        );

        // Decompile (the pipeline devectorizes) and pin the output.
        let out = decompile(&m, &SplendidOptions::default())
            .unwrap_or_else(|e| panic!("{name}: decompilation failed: {e}"));
        let pragmas = out.source.matches("#pragma omp simd").count();
        assert_eq!(
            pragmas, case.want_loops,
            "{name}: every vectorized loop must come back as a simd pragma:\n{}",
            out.source
        );
        if case.want_reductions > 0 {
            assert!(
                out.source.contains("#pragma omp simd reduction(+:"),
                "{name}: reduction clause missing:\n{}",
                out.source
            );
        }

        // The devectorized C recompiles to the same bits.
        let re = Harness::recompile_and_run(
            &out.source,
            OmpRuntime::LibOmp,
            CompilerProfile::gcc(),
            case.check_globals,
        )
        .unwrap_or_else(|e| panic!("{name}: recompile: {e}\n{}", out.source));
        assert_eq!(
            scalar.0.to_bits(),
            re.0.to_bits(),
            "{name}: devectorized C checksum diverged"
        );

        let path = dir.join(format!("{name}.c"));
        if update {
            std::fs::write(&path, &out.source)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == out.source => {}
            Ok(want) => {
                let first_diff = want
                    .lines()
                    .zip(out.source.lines())
                    .position(|(a, b)| a != b)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| want.lines().count().min(out.source.lines().count()) + 1);
                let _ = writeln!(
                    report,
                    "  {name}: output differs from {} (first difference at line {first_diff})",
                    path.display()
                );
            }
            Err(e) => {
                let _ = writeln!(report, "  {name}: cannot read {}: {e}", path.display());
            }
        }
    }
    assert!(
        report.is_empty(),
        "SIMD golden snapshots out of date:\n{report}\
         regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_simd"
    );
}
