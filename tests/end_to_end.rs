//! Cross-crate integration tests: the whole reproduction pipeline.

use splendid::baselines::{decompile_ghidra_like, decompile_rellic_like};
use splendid::cfront::OmpRuntime;
use splendid::core::{decompile, SplendidOptions, Variant};
use splendid::interp::{CompilerProfile, MachineConfig};
use splendid::metrics::{bleu4, loc};
use splendid::polybench::{benchmarks, Harness};

/// Every benchmark round-trips: sequential semantics == parallel semantics
/// == decompiled-and-recompiled semantics, under both runtimes.
#[test]
fn full_roundtrip_all_benchmarks_both_runtimes() {
    for b in benchmarks() {
        let art = Harness::pipeline(&b).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let seq = Harness::run_source(
            b.sequential,
            OmpRuntime::LibOmp,
            CompilerProfile::clang(),
            b.check_globals,
        )
        .unwrap();
        assert!(seq.0.is_finite(), "{}: non-finite checksum", b.name);
        let par = Harness::run(
            &art.parallel_module,
            MachineConfig::default(),
            b.check_globals,
        )
        .unwrap();
        assert_eq!(seq.0, par.0, "{}: parallelization changed results", b.name);
        for rt in [OmpRuntime::LibOmp, OmpRuntime::LibGomp] {
            let re = Harness::recompile_and_run(
                &art.splendid.source,
                rt,
                CompilerProfile::gcc(),
                b.check_globals,
            )
            .unwrap_or_else(|e| panic!("{} under {rt:?}: {e}\n{}", b.name, art.splendid.source));
            assert_eq!(seq.0, re.0, "{}: decompiled semantics under {rt:?}", b.name);
        }
    }
}

/// SPLENDID output is runtime-free and fully structured on every benchmark.
#[test]
fn splendid_output_is_portable_and_structured() {
    for b in benchmarks() {
        let art = Harness::pipeline(&b).unwrap();
        let s = &art.splendid.source;
        assert!(
            !s.contains("__kmpc"),
            "{}: runtime call leaked:\n{s}",
            b.name
        );
        assert!(
            !s.contains("GOMP_"),
            "{}: runtime call leaked:\n{s}",
            b.name
        );
        assert!(!s.contains("goto"), "{}: unstructured output:\n{s}", b.name);
        assert!(
            !s.contains("do {"),
            "{}: rotated loop not de-rotated:\n{s}",
            b.name
        );
        if art.report.parallelized_count() > 0 {
            assert!(s.contains("#pragma omp parallel"), "{}:\n{s}", b.name);
            assert!(s.contains("schedule(static)"), "{}:\n{s}", b.name);
        }
    }
}

/// Naturalness ordering holds on every benchmark: full SPLENDID beats the
/// portable variant, which beats v1 and both baselines (BLEU-4 against the
/// reference).
#[test]
fn bleu_ordering_matches_paper() {
    for b in benchmarks() {
        let art = Harness::pipeline(&b).unwrap();
        let v1 = decompile(
            &art.parallel_module,
            &SplendidOptions {
                variant: Variant::V1,
                ..Default::default()
            },
        )
        .unwrap();
        let portable = decompile(
            &art.parallel_module,
            &SplendidOptions {
                variant: Variant::Portable,
                ..Default::default()
            },
        )
        .unwrap();
        let s_full = bleu4(&art.splendid.source, b.reference);
        let s_port = bleu4(&portable.source, b.reference);
        let s_v1 = bleu4(&v1.source, b.reference);
        let s_rellic = bleu4(&art.rellic.source, b.reference);
        assert!(
            s_full >= s_port && s_port >= s_v1 && s_v1 > s_rellic,
            "{}: ordering violated: full={s_full:.3} portable={s_port:.3} v1={s_v1:.3} rellic={s_rellic:.3}",
            b.name
        );
    }
}

/// LoC: SPLENDID is close to the reference; baselines are substantially
/// longer (Table 4's shape).
#[test]
fn loc_shape_matches_table4() {
    let mut total_splendid = 0usize;
    let mut total_ref = 0usize;
    let mut total_rellic = 0usize;
    for b in benchmarks() {
        let art = Harness::pipeline(&b).unwrap();
        total_splendid += loc(&art.splendid.source);
        total_ref += loc(b.reference);
        total_rellic += loc(&art.rellic.source);
    }
    let splendid_ratio = total_splendid as f64 / total_ref as f64;
    let rellic_ratio = total_rellic as f64 / total_ref as f64;
    assert!(
        (0.8..=1.3).contains(&splendid_ratio),
        "SPLENDID LoC ratio {splendid_ratio:.2} out of range"
    );
    assert!(
        rellic_ratio > 2.0,
        "Rellic-like ratio {rellic_ratio:.2} too small"
    );
}

/// Decompilation is a fixpoint: recompiling SPLENDID output and
/// re-parallelizing + re-decompiling yields semantically identical code.
#[test]
fn decompilation_roundtrip_is_stable() {
    let b = benchmarks().into_iter().find(|b| b.name == "gemm").unwrap();
    let art = Harness::pipeline(&b).unwrap();
    // Recompile the decompiled source, re-parallelize, re-decompile.
    let (m2, _) = Harness::polly(&art.splendid.source).unwrap();
    let out2 = decompile(&m2, &SplendidOptions::default()).unwrap();
    // The second-generation output still runs and matches.
    let seq = Harness::run_source(
        b.sequential,
        OmpRuntime::LibOmp,
        CompilerProfile::clang(),
        b.check_globals,
    )
    .unwrap();
    let re2 = Harness::recompile_and_run(
        &out2.source,
        OmpRuntime::LibGomp,
        CompilerProfile::gcc(),
        b.check_globals,
    )
    .unwrap();
    assert_eq!(seq.0, re2.0);
    assert!(out2.source.contains("#pragma omp parallel"));
}

/// The baselines exhibit the paper's three §2 roadblocks on a stencil.
#[test]
fn baselines_show_the_three_roadblocks() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "jacobi-1d-imper")
        .unwrap();
    let (m, _) = Harness::polly(b.sequential).unwrap();
    let rellic = decompile_rellic_like(&m);
    assert!(rellic.source.contains("__kmpc_fork_call"));
    assert!(rellic.source.contains("do {"));
    assert!(rellic.source.contains("val0"));
    let ghidra = decompile_ghidra_like(&m);
    assert!(ghidra.source.contains("for ("));
    assert!(ghidra.source.contains("uVar") || ghidra.source.contains("dVar"));
}

/// Speedup shape of Figure 6 on a compute-heavy benchmark: Polly and the
/// recompiled SPLENDID output achieve the same large speedup.
#[test]
fn fig6_shape_on_gemm() {
    let b = benchmarks().into_iter().find(|b| b.name == "gemm").unwrap();
    let art = Harness::pipeline(&b).unwrap();
    let seq = Harness::run_source(
        b.sequential,
        OmpRuntime::LibOmp,
        CompilerProfile::clang(),
        b.check_globals,
    )
    .unwrap();
    let polly = Harness::run(
        &art.parallel_module,
        MachineConfig::xeon_28core(CompilerProfile::clang()),
        b.check_globals,
    )
    .unwrap();
    let re = Harness::recompile_and_run(
        &art.splendid.source,
        OmpRuntime::LibOmp,
        CompilerProfile::clang(),
        b.check_globals,
    )
    .unwrap();
    let polly_speedup = seq.1 as f64 / polly.1 as f64;
    let splendid_speedup = seq.1 as f64 / re.1 as f64;
    assert!(polly_speedup > 10.0, "polly {polly_speedup:.2}");
    // "SPLENDID-generated code produces identical speedup as Polly."
    let rel = (polly_speedup - splendid_speedup).abs() / polly_speedup;
    assert!(
        rel < 0.05,
        "polly {polly_speedup:.2} vs splendid {splendid_speedup:.2}"
    );
}

/// Figure 8 shape: most variables get source names back.
#[test]
fn naming_restoration_rate() {
    let mut total = 0usize;
    let mut restored = 0usize;
    for b in benchmarks() {
        let art = Harness::pipeline(&b).unwrap();
        total += art.splendid.naming.total_vars;
        restored += art.splendid.naming.restored_vars;
    }
    let pct = 100.0 * restored as f64 / total as f64;
    assert!(pct > 60.0, "restoration rate {pct:.1}% too low");
}
