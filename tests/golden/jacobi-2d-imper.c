double A[100][100];
double B[100][100];

void init() {
  for (uint64_t i = 0; i < 100; i = i + 1) {
    long v18 = i + 1;
    for (uint64_t j = 0; j < 100; j = j + 1) {
      A[i][j] = (double)(v18 * (j + 2) % 19 + 1) * 0.125;
      B[i][j] = 0.0;
    }
  }
  return;
}

void kernel() {
  for (uint64_t t = 0; t < 4; t = t + 1) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 98; i = i + 1) {
        long v164 = i + 1;
        long v165 = i - 1;
        for (uint64_t j = 1; j < 99; j = j + 1) {
          B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[v164][j] + A[v165][j]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 98; i = i + 1) {
        for (uint64_t j = 1; j < 99; j = j + 1) {
          A[i][j] = B[i][j];
        }
      }
    }
  }
  return;
}
