double A[120][120];
double u1[120];
double v1[120];
double u2[120];
double v2[120];
double w[120];
double x[120];
double y[120];
double z[120];

void init() {
  for (uint64_t i = 0; i < 120; i = i + 1) {
    u1[i] = (double)(i % 9 + 1) * 0.125;
    v1[i] = (double)((i + 1) % 7 + 1) * 0.0625;
    u2[i] = (double)((i + 2) % 11 + 1) * 0.03125;
    v2[i] = (double)((i + 3) % 5 + 1) * 0.25;
    y[i] = (double)(i % 13 + 1) * 0.015625;
    z[i] = (double)(i % 17 + 1) * 0.0078125;
    x[i] = 0.0;
    w[i] = 0.0;
    long v75 = i * 2;
    for (uint64_t j = 0; j < 120; j = j + 1) {
      A[i][j] = (double)((v75 + j) % 19 + 1) * 0.015625;
    }
  }
  return;
}

void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      double v219 = u1[i];
      double v221 = u2[i];
      for (uint64_t j = 0; j < 120; j = j + 1) {
        A[i][j] = A[i][j] + v219 * v1[j] + v221 * v2[j];
      }
    }
  }
  for (uint64_t i = 0; i < 120; i = i + 1) {
    double v70 = y[i];
    for (uint64_t j = 0; j < 120; j = j + 1) {
      x[j] = x[j] + 1.1 * A[i][j] * v70;
    }
  }
  for (uint64_t i = 0; i < 120; i = i + 1) {
    x[i] = x[i] + z[i];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      for (uint64_t j = 0; j < 120; j = j + 1) {
        w[i] = w[i] + 1.3 * A[i][j] * x[j];
      }
    }
  }
  return;
}
