double A[120][120];
double x1[120];
double x2[120];
double y1[120];
double y2[120];

void init() {
  for (uint64_t i = 0; i < 120; i = i + 1) {
    x1[i] = (double)(i % 9 + 1) * 0.0625;
    x2[i] = (double)((i + 4) % 7 + 1) * 0.03125;
    y1[i] = (double)(i % 11 + 1) * 0.125;
    y2[i] = (double)((i + 2) % 13 + 1) * 0.25;
    long v52 = i * 2;
    for (uint64_t j = 0; j < 120; j = j + 1) {
      A[i][j] = (double)((v52 + j * 3) % 17 + 1) * 0.015625;
    }
  }
  return;
}

void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      for (uint64_t j = 0; j < 120; j = j + 1) {
        x1[i] = x1[i] + A[i][j] * y1[j];
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      for (uint64_t j = 0; j < 120; j = j + 1) {
        x2[i] = x2[i] + A[j][i] * y2[j];
      }
    }
  }
  return;
}
