double X[80][80];
double A[80][80];
double B[80][80];

void init() {
  for (uint64_t i = 0; i < 80; i = i + 1) {
    long v42 = i + 1;
    for (uint64_t j = 0; j < 80; j = j + 1) {
      X[i][j] = (double)(i * (j + 1) % 13 + 1) * 0.25;
      A[i][j] = (double)(i * (j + 2) % 11 + 1) * 0.03125;
      B[i][j] = (double)(v42 * j % 7 + 2) * 1.0;
    }
  }
  return;
}

void kernel() {
  for (uint64_t t = 0; t < 2; t = t + 1) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 0; i <= 79; i = i + 1) {
        for (uint64_t j = 1; j < 80; j = j + 1) {
          X[i][j] = X[i][j] - X[i][j - 1] * A[i][j] / B[i][j - 1];
          B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i][j - 1];
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t j = 0; j <= 79; j = j + 1) {
        for (uint64_t i = 1; i < 80; i = i + 1) {
          X[i][j] = X[i][j] - X[i - 1][j] * A[i][j] / B[i - 1][j];
          B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i - 1][j];
        }
      }
    }
  }
  return;
}
