double path[60][60];

void init() {
  for (uint64_t i = 0; i < 60; i = i + 1) {
    for (uint64_t j = 0; j < 60; j = j + 1) {
      path[i][j] = (double)(i * j % 7 + 1) * 1.0 + (double)((i + j) % 13);
    }
  }
  return;
}

void kernel() {
  for (uint64_t k = 0; k < 60; k = k + 1) {
    for (uint64_t i = 0; i < 60; i = i + 1) {
      for (uint64_t j = 0; j < 60; j = j + 1) {
        if (path[i][k] + path[k][j] < path[i][j]) {
          path[i][j] = path[i][k] + path[k][j];
        }
      }
    }
  }
  return;
}
