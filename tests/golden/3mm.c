double A[40][40];
double B[40][40];
double C[40][40];
double D[40][40];
double E[40][40];
double F[40][40];
double G[40][40];

void init() {
  for (uint64_t i = 0; i < 40; i = i + 1) {
    long v41 = i + 3;
    for (uint64_t j = 0; j < 40; j = j + 1) {
      A[i][j] = (double)(i * j % 9 + 1) * 0.125;
      B[i][j] = (double)(i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = (double)(v41 * j % 11 + 1) * 0.5;
      D[i][j] = (double)(i * (j + 2) % 5 + 1) * 0.0625;
    }
  }
  return;
}

void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 39; i = i + 1) {
      for (uint64_t j = 0; j < 40; j = j + 1) {
        E[i][j] = 0.0;
        for (uint64_t k = 0; k < 40; k = k + 1) {
          E[i][j] = E[i][j] + A[i][k] * B[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 39; i = i + 1) {
      for (uint64_t j = 0; j < 40; j = j + 1) {
        F[i][j] = 0.0;
        for (uint64_t k = 0; k < 40; k = k + 1) {
          F[i][j] = F[i][j] + C[i][k] * D[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 39; i = i + 1) {
      for (uint64_t j = 0; j < 40; j = j + 1) {
        G[i][j] = 0.0;
        for (uint64_t k = 0; k < 40; k = k + 1) {
          G[i][j] = G[i][j] + E[i][k] * F[k][j];
        }
      }
    }
  }
  return;
}
