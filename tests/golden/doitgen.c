double A[24][24][24];
double Anew[24][24][24];
double C4[24][24];

void init() {
  for (uint64_t r = 0; r < 24; r = r + 1) {
    for (uint64_t q = 0; q < 24; q = q + 1) {
      long v27 = r * q;
      for (uint64_t p = 0; p < 24; p = p + 1) {
        A[r][q][p] = (double)((v27 + p) % 9 + 1) * 0.0625;
      }
    }
  }
  for (uint64_t q = 0; q < 24; q = q + 1) {
    for (uint64_t p = 0; p < 24; p = p + 1) {
      C4[q][p] = (double)((q + p * 2) % 7 + 1) * 0.125;
    }
  }
  return;
}

void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t r = 0; r <= 23; r = r + 1) {
      for (uint64_t q = 0; q < 24; q = q + 1) {
        for (uint64_t p = 0; p < 24; p = p + 1) {
          Anew[r][q][p] = 0.0;
          for (uint64_t S = 0; S < 24; S = S + 1) {
            Anew[r][q][p] = Anew[r][q][p] + A[r][q][S] * C4[S][p];
          }
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t r = 0; r <= 23; r = r + 1) {
      for (uint64_t q = 0; q < 24; q = q + 1) {
        for (uint64_t p = 0; p < 24; p = p + 1) {
          A[r][q][p] = Anew[r][q][p];
        }
      }
    }
  }
  return;
}
