double A[120][120];
double s[120];
double q[120];
double p[120];
double r[120];

void init() {
  for (uint64_t i = 0; i < 120; i = i + 1) {
    p[i] = (double)(i % 11 + 1) * 0.0625;
    r[i] = (double)(i % 7 + 1) * 0.125;
    s[i] = 0.0;
    q[i] = 0.0;
    long v40 = i * 3;
    for (uint64_t j = 0; j < 120; j = j + 1) {
      A[i][j] = (double)((v40 + j) % 13 + 1) * 0.03125;
    }
  }
  return;
}

void kernel() {
  for (uint64_t i = 0; i < 120; i = i + 1) {
    q[i] = 0.0;
    double v24 = r[i];
    for (uint64_t j = 0; j < 120; j = j + 1) {
      s[j] = s[j] + v24 * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
  return;
}
