double A[120][120];
double B[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  for (uint64_t i = 0; i < 120; i = i + 1) {
    x[i] = (double)(i % 9 + 1) * 0.0625;
    long v38 = i * 2;
    for (uint64_t j = 0; j < 120; j = j + 1) {
      A[i][j] = (double)((i + j * 2) % 11 + 1) * 0.03125;
      B[i][j] = (double)((v38 + j) % 13 + 1) * 0.015625;
    }
  }
  return;
}

void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      tmp[i] = 0.0;
      y[i] = 0.0;
      for (uint64_t j = 0; j < 120; j = j + 1) {
        tmp[i] = A[i][j] * x[j] + tmp[i];
        y[i] = B[i][j] * x[j] + y[i];
      }
      y[i] = 1.25 * tmp[i] + 1.75 * y[i];
    }
  }
  return;
}
