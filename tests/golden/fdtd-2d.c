double ex[80][80];
double ey[80][80];
double hz[80][80];

void init() {
  for (uint64_t i = 0; i < 80; i = i + 1) {
    long v42 = i + 3;
    for (uint64_t j = 0; j < 80; j = j + 1) {
      ex[i][j] = (double)(i * (j + 1) % 11 + 1) * 0.125;
      ey[i][j] = (double)(i * (j + 2) % 7 + 1) * 0.25;
      hz[i][j] = (double)(v42 * j % 13 + 1) * 0.0625;
    }
  }
  return;
}

void kernel() {
  for (uint64_t t = 0; t < 4; t = t + 1) {
    double v20 = (double)t * 0.1;
    for (uint64_t j = 0; j < 80; j = j + 1) {
      ey[0][j] = v20;
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 79; i = i + 1) {
        long v290 = i - 1;
        for (uint64_t j = 0; j < 80; j = j + 1) {
          ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[v290][j]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 0; i <= 79; i = i + 1) {
        for (uint64_t j = 1; j < 80; j = j + 1) {
          ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 0; i <= 78; i = i + 1) {
        long v225 = i + 1;
        for (uint64_t j = 0; j < 79; j = j + 1) {
          hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[v225][j] - ey[i][j]);
        }
      }
    }
  }
  return;
}
