double A[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  for (uint64_t i = 0; i < 120; i = i + 1) {
    x[i] = 1.0 + (double)i * 0.015625;
    y[i] = 0.0;
    for (uint64_t j = 0; j < 120; j = j + 1) {
      A[i][j] = (double)((i + j) % 17 + 1) * 0.0625;
    }
  }
  return;
}

void kernel() {
  for (uint64_t i = 0; i < 120; i = i + 1) {
    tmp[i] = 0.0;
    for (uint64_t j = 0; j < 120; j = j + 1) {
      tmp[i] = tmp[i] + A[i][j] * x[j];
    }
  }
  for (uint64_t i = 0; i < 120; i = i + 1) {
    double v63 = tmp[i];
    #pragma omp simd
    for (uint64_t j = 0; j < 120; j = j + 1) {
      y[j] = y[j] + A[i][j] * v63;
    }
  }
  return;
}
