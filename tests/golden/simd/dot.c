double A[120];
double B[120];
double S[1];

void init() {
  #pragma omp simd
  for (uint64_t i = 0; i < 120; i = i + 1) {
    A[i] = 0.5 + (double)i * 0.125;
    B[i] = 2.0 - (double)i * 0.0625;
  }
  return;
}

void kernel() {
  double s = 0.0;
  #pragma omp simd reduction(+:s)
  for (uint64_t i = 0; i < 120; i = i + 1) {
    s = s + A[i] * B[i];
  }
  S[0] = s;
  return;
}
