double A[48][48];
double B[48][48];
double C[48][48];

void init() {
  for (uint64_t i = 0; i < 48; i = i + 1) {
    long v41 = i + 3;
    for (uint64_t j = 0; j < 48; j = j + 1) {
      A[i][j] = (double)(i * j % 9 + 1) * 0.125;
      B[i][j] = (double)(i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = (double)(v41 * j % 11 + 1) * 0.5;
    }
  }
  return;
}

void kernel() {
  for (uint64_t i = 0; i < 48; i = i + 1) {
    for (uint64_t j = 0; j < 48; j = j + 1) {
      C[i][j] = C[i][j] * 1.2;
      for (uint64_t k = 0; k < 48; k = k + 1) {
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
  return;
}
