double A[2000];
double B[2000];

void init() {
  for (uint64_t i = 0; i < 2000; i = i + 1) {
    A[i] = (double)(i % 17 + 2) * 0.25;
    B[i] = 0.0;
  }
  return;
}

void kernel() {
  for (uint64_t t = 0; t < 6; t = t + 1) {
    #pragma omp simd
    for (uint64_t i = 1; i < 1999; i = i + 1) {
      B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
    }
    #pragma omp simd
    for (uint64_t i = 1; i < 1999; i = i + 1) {
      A[i] = B[i];
    }
  }
  return;
}
