//! Cross-crate property tests: random programs through the full compiler
//! substrate preserve semantics.
//!
//! Cases come from the in-tree difftest generator (`splendid::difftest`),
//! so the suite is fully deterministic, needs no external crates, and
//! draws from a far richer grammar than the old ad-hoc statement list:
//! nested and downward loops, guarded stores, reductions, helper calls,
//! and 2-D subscripts.

use splendid::cfront::OmpRuntime;
use splendid::difftest::{generate, GenConfig, InProcessDecompiler, Oracle};
use splendid::interp::MachineConfig;
use splendid::polybench::Harness;

const SEED: u64 = 0x5EED_CA5E;

/// -O2 (mem2reg, folding, LICM, rotation, DCE) never changes results on
/// generated programs: the pipeline must not reassociate floats, so the
/// checksums are compared bitwise-exactly.
#[test]
fn o2_preserves_semantics() {
    let cfg = GenConfig::default();
    for case in 0..24 {
        let prog = generate(SEED, case, &cfg);
        let src = prog.render();
        let names: Vec<String> = prog.array_names();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let plain = Harness::compile_o0(&src, OmpRuntime::LibOmp)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        let (c0, _) = Harness::run(&plain, MachineConfig::default(), &refs)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        let optimized = Harness::compile(&src, OmpRuntime::LibOmp)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        let (c2, _) = Harness::run(&optimized, MachineConfig::default(), &refs)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        assert_eq!(c0, c2, "case {case}: O2 changed the checksum\n{src}");
        assert!(c0.is_finite(), "case {case}: non-finite checksum\n{src}");
    }
}

/// Decompiling parallelized IR and recompiling preserves semantics — the
/// full oracle (reference, -O2, parallelizer, decompile→recompile under
/// both OpenMP runtimes, and decompilation stability) must agree.
#[test]
fn decompile_recompile_preserves_semantics() {
    let dec = InProcessDecompiler;
    let oracle = Oracle::new(&dec);
    let cfg = GenConfig::default();
    for case in 0..12 {
        let prog = generate(SEED, case, &cfg);
        let src = prog.render();
        oracle
            .check_source(&src, &prog.array_names())
            .unwrap_or_else(|f| panic!("case {case}: {f}\n{src}"));
    }
}

/// Every generated program is valid input for the C frontend.
#[test]
fn generated_programs_always_parse() {
    let cfg = GenConfig::default();
    for case in 0..100 {
        let src = generate(SEED, case, &cfg).render();
        splendid::cfront::parse_program(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
    }
}
