#![cfg(feature = "proptest")]

//! Cross-crate property tests: random programs through the full compiler
//! substrate preserve semantics.

use proptest::prelude::*;
use splendid::cfront::{lower_program, parse_program, LowerOptions};
use splendid::interp::{MachineConfig, Vm};
use splendid::transforms::{optimize_module, O2Options};

/// A random arithmetic statement writing A[k].
#[derive(Debug, Clone)]
enum Stmt {
    /// `A[dst] = A[a] <op> A[b];`
    Bin { dst: u8, a: u8, b: u8, op: char },
    /// `A[dst] = A[a] * c;`
    Scale { dst: u8, a: u8, c: i8 },
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (
            0u8..16,
            0u8..16,
            0u8..16,
            prop_oneof![Just('+'), Just('-'), Just('*')]
        )
            .prop_map(|(dst, a, b, op)| Stmt::Bin { dst, a, b, op }),
        (0u8..16, 0u8..16, -3i8..4).prop_map(|(dst, a, c)| Stmt::Scale { dst, a, c }),
    ]
}

fn render(stmts: &[Stmt], loop_bound: u8) -> String {
    let mut body = String::new();
    for s in stmts {
        match s {
            Stmt::Bin { dst, a, b, op } => {
                body.push_str(&format!("    A[{dst}] = A[{a}] {op} A[{b}];\n"))
            }
            Stmt::Scale { dst, a, c } => {
                body.push_str(&format!("    A[{dst}] = A[{a}] * {c}.0;\n"))
            }
        }
    }
    format!(
        "double A[16];\n\
         void init() {{\n  int i;\n  for (i = 0; i < 16; i++) {{ A[i] = i * 0.5 + 1.0; }}\n}}\n\
         void kernel() {{\n  int t;\n  for (t = 0; t < {loop_bound}; t++) {{\n{body}  }}\n}}\n"
    )
}

fn run(src: &str, optimize: bool) -> Vec<f64> {
    let prog = parse_program(src).expect("parse");
    let mut m = lower_program(&prog, "prop", &LowerOptions::default()).expect("lower");
    if optimize {
        optimize_module(&mut m, &O2Options::default());
    }
    let mut vm = Vm::new(&m, MachineConfig::default());
    vm.call_by_name("init", &[]).expect("init");
    vm.call_by_name("kernel", &[]).expect("kernel");
    (0..16)
        .map(|i| vm.read_global_f64("A", i).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// -O2 (mem2reg, folding, LICM, rotation, DCE) never changes results
    /// on random loopy straight-line programs.
    #[test]
    fn o2_preserves_semantics(stmts in prop::collection::vec(stmt_strategy(), 1..8),
                              bound in 1u8..5) {
        let src = render(&stmts, bound);
        let plain = run(&src, false);
        let optimized = run(&src, true);
        // Bitwise equality: the pipeline must not reassociate floats.
        prop_assert_eq!(plain, optimized);
    }

    /// Decompiling optimized IR and recompiling preserves semantics on the
    /// same random programs.
    #[test]
    fn decompile_recompile_preserves_semantics(
        stmts in prop::collection::vec(stmt_strategy(), 1..6),
        bound in 1u8..4,
    ) {
        let src = render(&stmts, bound);
        let prog = parse_program(&src).unwrap();
        let mut m = lower_program(&prog, "prop", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        let out = splendid::core::decompile(&m, &splendid::core::SplendidOptions::default())
            .expect("decompile");
        let before = run(&src, true);
        let after = run(&out.source, true);
        prop_assert_eq!(before, after, "source:\n{}\ndecompiled:\n{}", src, out.source);
    }
}
