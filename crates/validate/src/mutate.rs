//! Seeded AST-level mutator for decompiled C.
//!
//! The mutation-kill suite (`tests/mutants.rs`) corrupts decompiled
//! output *before* re-lowering and asserts the validator rejects every
//! corrupted program. Mutating the AST (parse → mutate → print) rather
//! than the byte stream keeps every mutant syntactically valid, so a
//! kill always means "the checker observed wrong behavior", never "the
//! mutant didn't parse by accident".
//!
//! Mutation sites are enumerated deterministically by a fixed preorder
//! walk: [`mutation_sites`] counts them and [`apply_mutation`] fires
//! exactly one by index, so `(program, site)` is a complete, replayable
//! mutant identifier. Four classical mutation operators are implemented:
//!
//! * **operator flip** — `+`↔`-`, `*`→`+`, `/`→`*`, `<`↔`<=`, `>`↔`>=`,
//!   `==`↔`!=`, `&&`↔`||` (also on compound assignments);
//! * **off-by-one** — a comparison loop bound's right-hand side gets
//!   `+ 1`;
//! * **branch swap** — `if`/`else` arms are exchanged;
//! * **statement drop** — an expression statement (assignment or call)
//!   is deleted.

use splendid_cfront::{CBinOp, CExpr, CProgram, CStmt};

/// Number of mutation sites in `prog` under the fixed traversal order.
pub fn mutation_sites(prog: &CProgram) -> usize {
    let mut work = prog.clone();
    let mut m = Mutator::counting();
    m.run(&mut work);
    m.next
}

/// Apply the mutation at `site` (from `0..mutation_sites(prog)`).
/// Returns the mutated program and a human-readable description, or
/// `None` when `site` is out of range.
pub fn apply_mutation(prog: &CProgram, site: usize) -> Option<(CProgram, String)> {
    let mut work = prog.clone();
    let mut m = Mutator::firing(site);
    m.run(&mut work);
    m.applied.map(|desc| (work, desc))
}

struct Mutator {
    /// Next site index to assign.
    next: usize,
    /// The site that fires (usize::MAX in counting mode).
    target: usize,
    /// Description of the applied mutation, once fired.
    applied: Option<String>,
    /// Function currently being walked (for descriptions).
    current_fn: String,
}

impl Mutator {
    fn counting() -> Mutator {
        Mutator {
            next: 0,
            target: usize::MAX,
            applied: None,
            current_fn: String::new(),
        }
    }

    fn firing(target: usize) -> Mutator {
        Mutator {
            next: 0,
            target,
            applied: None,
            current_fn: String::new(),
        }
    }

    /// Assign the next site index; true iff this is the firing site.
    /// (After a site fires, later indices keep incrementing but can
    /// never fire again, so counting and firing runs agree on every
    /// index up to and including the fired one.)
    fn site(&mut self) -> bool {
        let fire = self.next == self.target;
        self.next += 1;
        fire
    }

    fn fired(&mut self, desc: String) {
        self.applied = Some(format!("{} in {}", desc, self.current_fn));
    }

    fn run(&mut self, prog: &mut CProgram) {
        for f in &mut prog.functions {
            self.current_fn = f.name.clone();
            self.visit_stmts(&mut f.body);
        }
    }

    fn visit_stmts(&mut self, stmts: &mut Vec<CStmt>) {
        let mut i = 0;
        while i < stmts.len() {
            if matches!(stmts[i], CStmt::Expr(_)) && self.site() {
                let dropped = match &stmts[i] {
                    CStmt::Expr(e) => e.print(),
                    _ => unreachable!(),
                };
                self.fired(format!("drop statement `{dropped}`"));
                stmts.remove(i);
                continue;
            }
            self.visit_stmt(&mut stmts[i]);
            i += 1;
        }
    }

    fn visit_stmt(&mut self, stmt: &mut CStmt) {
        match stmt {
            CStmt::Decl { init, .. } => {
                if let Some(e) = init {
                    self.visit_expr(e);
                }
            }
            CStmt::Expr(e) => self.visit_expr(e),
            CStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if !else_body.is_empty() && then_body != else_body && self.site() {
                    self.fired(format!("swap branches of `if ({})`", cond.print()));
                    std::mem::swap(then_body, else_body);
                }
                self.visit_expr(cond);
                self.visit_stmts(then_body);
                self.visit_stmts(else_body);
            }
            CStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(CExpr::Binary { op, rhs, .. }) = cond {
                    if matches!(op, CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge)
                        && self.site()
                    {
                        self.fired(format!("off-by-one loop bound `{}`", rhs.print()));
                        let old = std::mem::replace(rhs.as_mut(), CExpr::Int(0));
                        *rhs.as_mut() = CExpr::bin(CBinOp::Add, old, CExpr::Int(1));
                    }
                }
                if let Some(s) = init {
                    self.visit_stmt(s);
                }
                if let Some(c) = cond {
                    self.visit_expr(c);
                }
                if let Some(s) = step {
                    self.visit_expr(s);
                }
                self.visit_stmts(body);
            }
            CStmt::While { cond, body } => {
                self.visit_expr(cond);
                self.visit_stmts(body);
            }
            CStmt::DoWhile { body, cond } => {
                self.visit_stmts(body);
                self.visit_expr(cond);
            }
            CStmt::Return(Some(e)) => self.visit_expr(e),
            CStmt::Block(b) => self.visit_stmts(b),
            CStmt::OmpParallel { body, .. } => self.visit_stmts(body),
            CStmt::OmpFor { loop_stmt, .. }
            | CStmt::OmpParallelFor { loop_stmt, .. }
            | CStmt::OmpSimd { loop_stmt, .. } => self.visit_stmt(loop_stmt),
            CStmt::Return(None)
            | CStmt::OmpBarrier
            | CStmt::Goto(_)
            | CStmt::Label(_)
            | CStmt::Comment(_) => {}
        }
    }

    fn visit_expr(&mut self, expr: &mut CExpr) {
        match expr {
            CExpr::Binary { op, lhs, rhs } => {
                if let Some(flipped) = flip(*op) {
                    if self.site() {
                        self.fired(format!("flip `{}` to `{}`", op.symbol(), flipped.symbol()));
                        *op = flipped;
                    }
                }
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
            CExpr::Unary { expr, .. } | CExpr::Cast { expr, .. } => self.visit_expr(expr),
            CExpr::Index { base, indices } => {
                self.visit_expr(base);
                for i in indices {
                    self.visit_expr(i);
                }
            }
            CExpr::Call { args, .. } => {
                for a in args {
                    self.visit_expr(a);
                }
            }
            CExpr::Assign { lhs, op, rhs } => {
                if let Some(o) = op {
                    if let Some(flipped) = flip(*o) {
                        if self.site() {
                            self.fired(format!(
                                "flip `{}=` to `{}=`",
                                o.symbol(),
                                flipped.symbol()
                            ));
                            *op = Some(flipped);
                        }
                    }
                }
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
            CExpr::Int(_) | CExpr::Float(_) | CExpr::Ident(_) => {}
        }
    }
}

/// The operator-flip table. Only semantically meaningful flips within
/// the same type family; `None` means this operator has no flip site.
fn flip(op: CBinOp) -> Option<CBinOp> {
    match op {
        CBinOp::Add => Some(CBinOp::Sub),
        CBinOp::Sub => Some(CBinOp::Add),
        CBinOp::Mul => Some(CBinOp::Add),
        CBinOp::Div => Some(CBinOp::Mul),
        CBinOp::Lt => Some(CBinOp::Le),
        CBinOp::Le => Some(CBinOp::Lt),
        CBinOp::Gt => Some(CBinOp::Ge),
        CBinOp::Ge => Some(CBinOp::Gt),
        CBinOp::Eq => Some(CBinOp::Ne),
        CBinOp::Ne => Some(CBinOp::Eq),
        CBinOp::LAnd => Some(CBinOp::LOr),
        CBinOp::LOr => Some(CBinOp::LAnd),
        CBinOp::Rem | CBinOp::BAnd | CBinOp::BOr | CBinOp::BXor | CBinOp::Shl | CBinOp::Shr => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_cfront::{parse_program, print_program};

    const SRC: &str = r#"
double A[8];
void kernel(int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (i == 3) {
      A[i] = A[i] * 2.0;
    } else {
      A[i] = A[i] + 1.0;
    }
  }
}
"#;

    #[test]
    fn sites_are_enumerable_and_in_range() {
        let prog = parse_program(SRC).unwrap();
        let n = mutation_sites(&prog);
        // At least: == flip, < flip, off-by-one, branch swap, two drops,
        // a * flip, a + flip.
        assert!(n >= 8, "only {n} sites");
        for site in 0..n {
            let (mutant, desc) = apply_mutation(&prog, site)
                .unwrap_or_else(|| panic!("site {site} of {n} did not fire"));
            assert_ne!(mutant, prog, "site {site} ({desc}) changed nothing");
        }
        assert!(apply_mutation(&prog, n).is_none());
    }

    #[test]
    fn mutants_reprint_and_reparse() {
        let prog = parse_program(SRC).unwrap();
        for site in 0..mutation_sites(&prog) {
            let (mutant, desc) = apply_mutation(&prog, site).unwrap();
            let printed = print_program(&mutant);
            parse_program(&printed)
                .unwrap_or_else(|e| panic!("site {site} ({desc}) printed unparsable C: {e}"));
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let prog = parse_program(SRC).unwrap();
        let n = mutation_sites(&prog);
        assert_eq!(n, mutation_sites(&prog));
        for site in 0..n {
            let a = apply_mutation(&prog, site).unwrap();
            let b = apply_mutation(&prog, site).unwrap();
            assert_eq!(print_program(&a.0), print_program(&b.0));
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn descriptions_name_the_function() {
        let prog = parse_program(SRC).unwrap();
        for site in 0..mutation_sites(&prog) {
            let (_, desc) = apply_mutation(&prog, site).unwrap();
            assert!(desc.contains("in kernel"), "{desc}");
        }
    }
}
