#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! `splendid-validate`: bounded translation validation.
//!
//! Difftest (PR 2) gives *statistical* confidence that decompilation
//! preserves semantics; this crate gives *per-function* evidence at
//! serve time. The checker takes the source IR and the decompiled C,
//! re-lowers the C back to IR through `splendid-cfront` (at O0, so the
//! re-lowering itself stays as simple as possible), and executes both
//! sides in lockstep over a bounded set of probe states:
//!
//! * probe 0 runs each side from its natural initial state (globals as
//!   initialized, zero arguments);
//! * probes 1..N first drive every f64 global of *both* VMs into the
//!   same seeded finite state and seed scalar arguments, so functions
//!   that only read state the module's `init` would have produced are
//!   still exercised on meaningful values.
//!
//! After each probe the return value and every 8-byte word of every
//! source-module global are compared **bitwise**. Any divergence is a
//! [`ReasonKind::Mismatch`] — the only verdict that indicates the
//! decompiled C is actually wrong (the serve layer reacts by falling one
//! rung down the fidelity ladder). Everything else the checker cannot
//! prove is reported as a distinct incompleteness reason (pointer
//! parameters, re-lowering failures, exhausted execution bounds, ...):
//! the function is tagged `UNVERIFIED` but not re-decompiled, because
//! the output is not known to be wrong.
//!
//! `Verified` therefore means: at least one probe ran both sides to
//! completion, and no probe observed any divergence. It is a bounded
//! equivalence check, not a proof — see DESIGN.md, "Translation
//! validation", for the precise claim and its known holes.

pub mod mutate;

use splendid_cfront::{lower_program, parse_program, LowerOptions};
use splendid_interp::{CompilerProfile, MachineConfig, RtVal, Vm};
use splendid_ir::{Function, InstKind, Module, Type};

/// Checker bounds and seeding.
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Probe states per function (probe 0 is the natural initial state;
    /// the rest are seeded). At least 1.
    pub probes: u32,
    /// Seed mixed into every probe's state generator; fixed so verdicts
    /// are deterministic across runs and processes.
    pub seed: u64,
    /// Instruction budget for the *source* side of one probe. The
    /// re-lowered side gets a proportional budget (the O0 re-lowering
    /// executes more instructions for the same work), so a diverging
    /// non-terminating mutant still exhausts it.
    pub fuel: u64,
    /// Cores simulated by both VMs (parallel regions execute with real
    /// fan-out semantics; 2 keeps the fork paths exercised and cheap).
    pub cores: u32,
}

impl Default for ValidateConfig {
    fn default() -> ValidateConfig {
        ValidateConfig {
            probes: 3,
            seed: 0x53_50_4C_44, // "SPLD"
            fuel: 20_000_000,
            cores: 2,
        }
    }
}

impl ValidateConfig {
    fn machine(&self, fuel: u64) -> MachineConfig {
        MachineConfig {
            cores: self.cores,
            fuel,
            ..MachineConfig::xeon_28core(CompilerProfile::clang())
        }
    }
}

/// Why a function could not be verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReasonKind {
    /// The decompiled C failed to parse or lower back to IR.
    Relower,
    /// The function is absent from the re-lowered module.
    MissingFunction,
    /// The signature is outside the checker's input model (pointer
    /// parameters cannot be seeded meaningfully).
    UnsupportedSignature,
    /// A module global is outside the checker's comparison model
    /// (non-8-byte elements).
    UnsupportedGlobal,
    /// The function contains instructions outside the checker's probe
    /// model (vector IR: the lockstep comparison is defined over the
    /// *devectorized* module the serve layer validates, not over raw
    /// vector instructions).
    UnsupportedInstruction,
    /// Every probe ran out of fuel on the source side.
    BoundExhausted,
    /// Every probe was inconclusive (the source itself failed to run).
    Inconclusive,
    /// A probe observed divergent behavior: the decompiled C is wrong.
    Mismatch,
}

impl ReasonKind {
    /// Stable label used in annotations, stats, and reports.
    pub fn label(self) -> &'static str {
        match self {
            ReasonKind::Relower => "relower",
            ReasonKind::MissingFunction => "missing-function",
            ReasonKind::UnsupportedSignature => "unsupported-signature",
            ReasonKind::UnsupportedGlobal => "unsupported-global",
            ReasonKind::UnsupportedInstruction => "unsupported-instruction",
            ReasonKind::BoundExhausted => "bound-exhausted",
            ReasonKind::Inconclusive => "inconclusive",
            ReasonKind::Mismatch => "mismatch",
        }
    }
}

/// A structured `Unverified` reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reason {
    /// Failure class.
    pub kind: ReasonKind,
    /// Human-readable detail (probe index, diverging location, error).
    pub detail: String,
}

impl Reason {
    fn new(kind: ReasonKind, detail: impl Into<String>) -> Reason {
        Reason {
            kind,
            detail: detail.into(),
        }
    }

    /// True iff this reason proves the output wrong (as opposed to
    /// merely unprovable). Only mismatches trigger ladder fallback.
    pub fn is_mismatch(&self) -> bool {
        self.kind == ReasonKind::Mismatch
    }
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.detail.is_empty() {
            f.write_str(self.kind.label())
        } else {
            write!(f, "{}: {}", self.kind.label(), self.detail)
        }
    }
}

/// Per-function certificate payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// At least one conclusive probe, zero divergences.
    Verified,
    /// Not verified; the reason says whether the output is *wrong*
    /// (mismatch) or merely *unprovable* (everything else).
    Unverified(Reason),
}

impl Verdict {
    /// True for [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }
}

/// One function's verdict, for module-level reports.
#[derive(Debug, Clone)]
pub struct FunctionVerdict {
    /// Function name (shared between source IR and decompiled C).
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// Re-lower decompiled C source to IR at O0. No optimization passes run:
/// the simpler the re-lowering, the smaller the trusted base of the
/// check.
pub fn relower(source: &str) -> Result<Module, String> {
    let prog = parse_program(source).map_err(|e| format!("parse: {e}"))?;
    lower_program(&prog, "validate", &LowerOptions::default()).map_err(|e| format!("lower: {e}"))
}

/// Validate every (non-outlined) function of `src` against the
/// decompiled C `source`. Re-lowers once; a re-lowering failure yields
/// an `Unverified(Relower)` verdict for every function.
pub fn check_module(src: &Module, source: &str, cfg: &ValidateConfig) -> Vec<FunctionVerdict> {
    let relowered = relower(source);
    src.functions
        .iter()
        .filter(|f| !f.is_outlined)
        .map(|f| FunctionVerdict {
            name: src.name_of(f.name).to_string(),
            verdict: match &relowered {
                Ok(m) => check_function(src, m, src.name_of(f.name), cfg),
                Err(e) => Verdict::Unverified(Reason::new(ReasonKind::Relower, e.clone())),
            },
        })
        .collect()
}

/// Validate one function of `src` against its namesake in the already
/// re-lowered module.
pub fn check_function(
    src: &Module,
    relowered: &Module,
    name: &str,
    cfg: &ValidateConfig,
) -> Verdict {
    let unv = |kind, detail: String| Verdict::Unverified(Reason::new(kind, detail));

    let Some(sf) = src.functions.iter().find(|f| src.name_of(f.name) == name) else {
        return unv(
            ReasonKind::MissingFunction,
            format!("'{name}' not in source module"),
        );
    };
    let Some(rf) = relowered
        .functions
        .iter()
        .find(|f| relowered.name_of(f.name) == name)
    else {
        return unv(
            ReasonKind::MissingFunction,
            format!("'{name}' not in re-lowered module"),
        );
    };

    // Probe model: scalar (and marker-call) instructions only. Raw
    // vector IR is honestly incomplete: the serve pipeline devectorizes
    // before validating, so a vector instruction reaching the checker
    // means the caller skipped that step — refusing here is cheaper and
    // sounder than pretending the scalar lockstep covers wide lanes.
    if let Some(detail) = find_vector_instruction(src, sf) {
        return unv(ReasonKind::UnsupportedInstruction, detail);
    }

    // Input model: scalar int/float parameters only. Pointers cannot be
    // seeded meaningfully (the checker has no aliasing model), so such
    // functions are honestly incomplete rather than spuriously verified.
    if let Some(p) = sf.params.iter().find(|p| !seedable(p.ty)) {
        return unv(
            ReasonKind::UnsupportedSignature,
            format!(
                "parameter '{}' has unseedable type {}",
                src.name_of(p.name),
                p.ty
            ),
        );
    }
    if sf.params.len() != rf.params.len() {
        return unv(
            ReasonKind::Mismatch,
            format!(
                "parameter count differs: source {} vs re-lowered {}",
                sf.params.len(),
                rf.params.len()
            ),
        );
    }

    // Comparison model: every source global, word by word. Globals with
    // sub-word elements have no byte-accurate reader here; refuse rather
    // than under-compare.
    for g in &src.globals {
        if g.mem.elem().size_bytes() != 8 {
            return unv(
                ReasonKind::UnsupportedGlobal,
                format!("global '{}' has non-word elements", src.name_of(g.name)),
            );
        }
        if !relowered
            .globals
            .iter()
            .any(|r| relowered.name_of(r.name) == src.name_of(g.name))
        {
            return unv(
                ReasonKind::Mismatch,
                format!(
                    "global '{}' missing from re-lowered module",
                    src.name_of(g.name)
                ),
            );
        }
    }

    let mut conclusive = 0u32;
    let mut first_src_failure: Option<Reason> = None;
    for probe in 0..cfg.probes.max(1) {
        match run_probe(src, relowered, sf, rf, probe, cfg) {
            ProbeOutcome::Agree => conclusive += 1,
            ProbeOutcome::Diverge(detail) => {
                return unv(ReasonKind::Mismatch, format!("probe {probe}: {detail}"));
            }
            ProbeOutcome::SourceFailed(reason) => {
                first_src_failure.get_or_insert(reason);
            }
        }
    }
    if conclusive == 0 {
        return Verdict::Unverified(first_src_failure.unwrap_or_else(|| {
            Reason::new(ReasonKind::Inconclusive, "no probe ran to completion")
        }));
    }
    Verdict::Verified
}

fn seedable(ty: Type) -> bool {
    ty.is_int() || ty.is_float()
}

/// First vector instruction of `f`, if any, described for the verdict.
/// Both vector-typed results and the lane/reduce operations (whose
/// results may be scalar) count — either puts the function outside the
/// scalar probe model.
fn find_vector_instruction(src: &Module, f: &Function) -> Option<String> {
    for bb in f.block_ids() {
        for &i in &f.block(bb).insts {
            let inst = f.inst(i);
            let vectorish = matches!(inst.ty, Type::Vec(_))
                || matches!(
                    inst.kind,
                    InstKind::Splat { .. }
                        | InstKind::ExtractLane { .. }
                        | InstKind::InsertLane { .. }
                        | InstKind::Reduce { .. }
                );
            if vectorish {
                return Some(format!(
                    "function '{}' contains vector instruction {} (devectorize before validating)",
                    src.name_of(f.name),
                    inst.ty
                ));
            }
        }
    }
    None
}

enum ProbeOutcome {
    /// Both sides ran to completion and every observation matched.
    Agree,
    /// Observable divergence: return value, a global word, or the
    /// re-lowered side failing/looping where the source did not.
    Diverge(String),
    /// The source side itself could not complete; nothing was proven
    /// (and nothing disproven) by this probe.
    SourceFailed(Reason),
}

fn run_probe(
    src: &Module,
    relowered: &Module,
    sf: &Function,
    rf: &Function,
    probe: u32,
    cfg: &ValidateConfig,
) -> ProbeOutcome {
    let mut vm_src = Vm::new(src, cfg.machine(cfg.fuel));

    // Drive the source side into its seeded state. Only f64 words are
    // seeded (the only element type this pipeline's globals use); values
    // are finite and small so arithmetic stays finite-ish and branches on
    // magnitudes are exercised. The re-lowered side replays the same
    // stream below, once its fuel budget is known.
    let mut rng = ProbeRng::new(cfg.seed, src.name_of(sf.name), probe);
    if probe > 0 {
        if let Err(detail) = seed_globals(&mut vm_src, src, relowered, &mut rng) {
            return ProbeOutcome::SourceFailed(Reason::new(
                ReasonKind::Inconclusive,
                format!("probe {probe}: {detail}"),
            ));
        }
    }
    let args: Vec<RtVal> = sf
        .params
        .iter()
        .map(|p| {
            if p.ty.is_float() {
                RtVal::F64(if probe == 0 { 1.0 } else { rng.next_f64() })
            } else {
                RtVal::Int(if probe == 0 { 0 } else { rng.next_small_int() })
            }
        })
        .collect();

    let src_ret = match vm_src.call_by_name(src.name_of(sf.name), &args) {
        Ok(r) => r,
        Err(e) => {
            let kind = if e.0.contains("fuel exhausted") {
                ReasonKind::BoundExhausted
            } else {
                ReasonKind::Inconclusive
            };
            return ProbeOutcome::SourceFailed(Reason::new(
                kind,
                format!("probe {probe}: source side: {e}"),
            ));
        }
    };

    // Give the re-lowered side a generous multiple of what the source
    // actually executed: a faithful O0 re-lowering is a small constant
    // factor slower, while a mutant that diverges into an endless loop
    // still blows the bound (and that *is* a mismatch).
    let re_fuel = vm_src.insts_executed().saturating_mul(64).max(100_000);
    let re_args: Vec<RtVal> = rf
        .params
        .iter()
        .zip(&args)
        .map(|(p, a)| match (p.ty.is_float(), a) {
            (true, RtVal::Int(v)) => RtVal::F64(*v as f64),
            (false, RtVal::F64(v)) => RtVal::Int(*v as i64),
            _ => *a,
        })
        .collect();
    let mut vm_re = Vm::new(relowered, cfg.machine(re_fuel));
    if probe > 0 {
        // Replay the exact seeding stream the source side consumed (the
        // generator is keyed by (seed, function, probe), so restarting it
        // reproduces the same values in the same order).
        let mut rng = ProbeRng::new(cfg.seed, src.name_of(sf.name), probe);
        if let Err(detail) = seed_globals(&mut vm_re, src, relowered, &mut rng) {
            return ProbeOutcome::Diverge(format!("could not seed re-lowered side: {detail}"));
        }
    }
    let re_ret = match vm_re.call_by_name(relowered.name_of(rf.name), &re_args) {
        Ok(r) => r,
        Err(e) => {
            return ProbeOutcome::Diverge(format!(
                "source completed but re-lowered side failed: {e}"
            ));
        }
    };

    if let Some(detail) = compare_returns(src_ret, re_ret) {
        return ProbeOutcome::Diverge(detail);
    }
    for g in &src.globals {
        let gname = src.name_of(g.name);
        for k in 0..g.mem.num_elems() {
            let s = match vm_src.read_global_f64(gname, k) {
                Ok(v) => v,
                Err(e) => {
                    return ProbeOutcome::SourceFailed(Reason::new(
                        ReasonKind::Inconclusive,
                        format!("probe {probe}: reading source global '{gname}': {e}"),
                    ))
                }
            };
            let r = match vm_re.read_global_f64(gname, k) {
                Ok(v) => v,
                Err(e) => {
                    return ProbeOutcome::Diverge(format!(
                        "re-lowered global '{gname}' unreadable: {e}"
                    ))
                }
            };
            if s.to_bits() != r.to_bits() {
                return ProbeOutcome::Diverge(format!(
                    "global {gname}[{k}]: source {s:?} vs re-lowered {r:?}"
                ));
            }
        }
    }
    ProbeOutcome::Agree
}

/// Write one deterministic value stream into every f64 global that both
/// modules declare. Globals only one side knows about are skipped (their
/// absence is diagnosed elsewhere); the *stream* consumed is identical
/// either way, so source and re-lowered VMs end up bit-identical.
fn seed_globals(
    vm: &mut Vm<'_>,
    src: &Module,
    relowered: &Module,
    rng: &mut ProbeRng,
) -> Result<(), String> {
    for g in &src.globals {
        if g.mem.elem() != Type::F64 {
            continue;
        }
        let gname = src.name_of(g.name);
        let shared = relowered
            .globals
            .iter()
            .any(|r| relowered.name_of(r.name) == gname);
        for k in 0..g.mem.num_elems() {
            let v = rng.next_f64();
            if shared {
                vm.write_global_f64(gname, k, v)
                    .map_err(|e| format!("could not seed global '{gname}': {e}"))?;
            }
        }
    }
    Ok(())
}

/// Bitwise comparison of optional return values. Pointer returns are
/// compared only for *presence* (absolute addresses are an artifact of
/// each VM's layout, not of the program).
fn compare_returns(s: Option<RtVal>, r: Option<RtVal>) -> Option<String> {
    match (s, r) {
        (None, None) => None,
        (Some(RtVal::Int(a)), Some(RtVal::Int(b))) if a == b => None,
        (Some(RtVal::F64(a)), Some(RtVal::F64(b))) if a.to_bits() == b.to_bits() => None,
        // Int/float width drift across the C round trip: compare by value
        // when the integer is exactly representable.
        (Some(RtVal::Int(a)), Some(RtVal::F64(b))) | (Some(RtVal::F64(b)), Some(RtVal::Int(a)))
            if a as f64 == b && b.fract() == 0.0 =>
        {
            None
        }
        (Some(RtVal::Ptr(_)), Some(RtVal::Ptr(_))) => None,
        (s, r) => Some(format!(
            "return value differs: source {s:?} vs re-lowered {r:?}"
        )),
    }
}

/// Deterministic per-(seed, function, probe) value stream: xorshift64*
/// over an FNV-mixed state, mapped into small finite ranges.
struct ProbeRng {
    state: u64,
}

impl ProbeRng {
    fn new(seed: u64, fname: &str, probe: u32) -> ProbeRng {
        let mut h = 0xCBF2_9CE4_8422_2325u64 ^ seed;
        for b in fname.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= (probe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ProbeRng {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Finite f64 in [-2.0, 2.0) with a coarse grid (multiples of
    /// 1/128), so float arithmetic on both sides hits identical bit
    /// patterns without accumulating representation noise.
    fn next_f64(&mut self) -> f64 {
        let raw = (self.next_u64() % 512) as i64 - 256;
        raw as f64 / 128.0
    }

    /// Small signed integer in [-4, 8): plausible loop trip counts and
    /// branch selectors.
    fn next_small_int(&mut self) -> i64 {
        (self.next_u64() % 12) as i64 - 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_core::SplendidOptions;
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_transforms::{optimize_module, O2Options};

    fn polly_pipeline(src: &str) -> Module {
        let prog = parse_program(src).unwrap();
        let mut m = lower_program(&prog, "v", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        parallelize_module(&mut m, &ParallelizeOptions::default());
        m
    }

    const KERNEL: &str = r#"
#define N 64
double A[64];
double B[64];
void init() {
  int i;
  for (i = 0; i < N; i++) { A[i] = i * 0.125; }
}
void kernel() {
  int i;
  for (i = 1; i < N - 1; i++) { B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0; }
}
"#;

    fn decompile_prepared(m: &Module) -> (Module, String) {
        // The serve layer validates the *prepared* module (outlined
        // regions inlined back) against the decompiled source; mirror
        // that here via the one-shot pipeline.
        let mut timings = splendid_core::StageTimings::default();
        let opts = SplendidOptions::default();
        let prepared = splendid_core::prepare_module(m, &opts, &mut timings).unwrap();
        let functions = prepared
            .module
            .func_ids()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|fid| {
                splendid_core::decompile_function(&prepared, fid, &opts, &mut timings).unwrap()
            })
            .collect();
        let out = splendid_core::assemble_output(&prepared, functions, &mut timings);
        (prepared.module, out.source)
    }

    #[test]
    fn faithful_decompilation_verifies() {
        let m = polly_pipeline(KERNEL);
        let (prepared, source) = decompile_prepared(&m);
        let verdicts = check_module(&prepared, &source, &ValidateConfig::default());
        assert!(!verdicts.is_empty());
        for v in &verdicts {
            assert!(v.verdict.is_verified(), "{}: {:?}", v.name, v.verdict);
        }
    }

    #[test]
    fn corrupted_constant_is_a_mismatch() {
        let m = polly_pipeline(KERNEL);
        let (prepared, source) = decompile_prepared(&m);
        // 3.0 -> 4.0 in the kernel divisor: observably wrong output.
        let bad = source.replace("/ 3.0", "/ 4.0");
        assert_ne!(bad, source, "replacement must hit:\n{source}");
        let verdicts = check_module(&prepared, &bad, &ValidateConfig::default());
        let kernel = verdicts.iter().find(|v| v.name == "kernel").unwrap();
        match &kernel.verdict {
            Verdict::Unverified(r) if r.is_mismatch() => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unparsable_c_is_relower_not_mismatch() {
        let m = polly_pipeline(KERNEL);
        let verdicts = check_module(&m, "void kernel() {", &ValidateConfig::default());
        for v in &verdicts {
            match &v.verdict {
                Verdict::Unverified(r) => assert_eq!(r.kind, ReasonKind::Relower),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn missing_function_is_reported_by_name() {
        let m = polly_pipeline(KERNEL);
        let (prepared, source) = decompile_prepared(&m);
        // Keep only init by renaming kernel in the C.
        let bad = source.replace("void kernel()", "void kernel_gone()");
        let verdicts = check_module(&prepared, &bad, &ValidateConfig::default());
        let kernel = verdicts.iter().find(|v| v.name == "kernel").unwrap();
        match &kernel.verdict {
            Verdict::Unverified(r) => assert_eq!(r.kind, ReasonKind::MissingFunction),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pointer_parameters_are_honest_incompleteness() {
        let src = r#"
void scale(double* A) {
  int i;
  for (i = 0; i < 8; i++) { A[i] = A[i] * 2.0; }
}
"#;
        let m = polly_pipeline(src);
        let (prepared, source) = decompile_prepared(&m);
        let verdicts = check_module(&prepared, &source, &ValidateConfig::default());
        let v = verdicts.iter().find(|v| v.name == "scale").unwrap();
        match &v.verdict {
            Verdict::Unverified(r) => {
                assert_eq!(r.kind, ReasonKind::UnsupportedSignature);
                assert!(!r.is_mismatch(), "incompleteness must not claim wrongness");
            }
            other => panic!("{other:?}"),
        }
    }

    const VEC_KERNEL: &str = r#"
double A[64];
double B[64];
double C[64];
void kernel() {
  int i;
  for (i = 0; i < 64; i++) { A[i] = B[i] + C[i]; }
}
"#;

    fn o2_pipeline(src: &str) -> Module {
        let prog = parse_program(src).unwrap();
        let mut m = lower_program(&prog, "v", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        m
    }

    #[test]
    fn raw_vector_ir_is_honest_incompleteness() {
        use splendid_transforms::vectorize::{vectorize_module, VectorizeOptions};
        let m = o2_pipeline(VEC_KERNEL);
        let (_, source) = decompile_prepared(&m);
        let mut wide = m.clone();
        let stats = vectorize_module(&mut wide, &VectorizeOptions::default());
        assert!(stats.vectorized_loops >= 1, "kernel should vectorize");
        // Validating the *vectorized* module (caller skipped
        // devectorize): the checker must refuse, not error or claim
        // the scalar lockstep covered wide lanes.
        let verdicts = check_module(&wide, &source, &ValidateConfig::default());
        let kernel = verdicts.iter().find(|v| v.name == "kernel").unwrap();
        match &kernel.verdict {
            Verdict::Unverified(r) => {
                assert_eq!(r.kind, ReasonKind::UnsupportedInstruction);
                assert!(!r.is_mismatch(), "incompleteness must not claim wrongness");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lane_index_flip_in_devectorized_output_is_refuted() {
        use splendid_transforms::vectorize::{vectorize_module, VectorizeOptions};
        let mut m = o2_pipeline(VEC_KERNEL);
        let stats = vectorize_module(&mut m, &VectorizeOptions::default());
        assert!(stats.vectorized_loops >= 1, "kernel should vectorize");
        let (prepared, source) = decompile_prepared(&m);
        assert!(source.contains("#pragma omp simd"), "{source}");
        // The faithful devectorization verifies...
        let ok = check_module(&prepared, &source, &ValidateConfig::default());
        let kv = ok.iter().find(|v| v.name == "kernel").unwrap();
        assert!(kv.verdict.is_verified(), "{:?}\n{source}", kv.verdict);
        // ...and a lane-index flip (a devectorizer bug shifting which
        // lane an iteration reads) is refuted, not silently verified.
        let bad = source.replace("B[i]", "B[i + 1]");
        assert_ne!(bad, source, "replacement must hit:\n{source}");
        let verdicts = check_module(&prepared, &bad, &ValidateConfig::default());
        let kernel = verdicts.iter().find(|v| v.name == "kernel").unwrap();
        match &kernel.verdict {
            Verdict::Unverified(r) if r.is_mismatch() => {}
            other => panic!("expected mismatch, got {other:?}\n{bad}"),
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let m = polly_pipeline(KERNEL);
        let (prepared, source) = decompile_prepared(&m);
        let cfg = ValidateConfig::default();
        let a = check_module(&prepared, &source, &cfg);
        let b = check_module(&prepared, &source, &cfg);
        let fmt = |vs: &[FunctionVerdict]| {
            vs.iter()
                .map(|v| format!("{}={:?}", v.name, v.verdict))
                .collect::<Vec<_>>()
                .join(";")
        };
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn polybench_suite_mostly_verifies() {
        // The serve-layer bench gates >= 90%; keep a fast in-crate
        // smoke over a few kernels so regressions fail close to home.
        let suite = splendid_polybench::Harness::polly_suite().unwrap();
        let mut verified = 0usize;
        let mut total = 0usize;
        for (name, module) in suite.iter().take(4) {
            let (prepared, source) = decompile_prepared(module);
            for v in check_module(&prepared, &source, &ValidateConfig::default()) {
                total += 1;
                if v.verdict.is_verified() {
                    verified += 1;
                } else {
                    eprintln!("{name}/{}: {:?}", v.name, v.verdict);
                }
            }
        }
        assert!(total > 0);
        assert!(
            verified * 10 >= total * 9,
            "{verified}/{total} verified (need >= 90%)"
        );
    }
}
