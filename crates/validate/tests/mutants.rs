//! Mutation-kill suite: the validator must reject every detectable
//! corruption of decompiled output.
//!
//! For each mutation site the suite corrupts the decompiled C *before*
//! re-lowering (operator flips, dropped statements, off-by-one loop
//! bounds, swapped branch arms) and asserts the validator does not
//! report `Verified` for the mutant.
//!
//! Equivalent mutants — mutations no bounded probe can distinguish from
//! the original (e.g. flipping an operator in dead code, or `<` → `<=`
//! on a bound the trip count never reaches) — are filtered out first by
//! probing the *original* C against the *mutant* C with the same
//! harness. This is the standard mutation-testing practice; it is not
//! circular, because the kill check compares the mutant against the
//! **source IR**, not against the original C.
//!
//! A surviving mutant panics with a replayable one-liner:
//! `SEED=0x... MUTANT=N`. Replay a single mutant with
//! `MUTANT=N cargo test -p splendid-validate --test mutants`.

use splendid_cfront::{parse_program, print_program};
use splendid_core::{
    assemble_output, decompile_function, prepare_module, SplendidOptions, StageTimings,
};
use splendid_ir::Module;
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_transforms::{optimize_module, O2Options};
use splendid_validate::mutate::{apply_mutation, mutation_sites};
use splendid_validate::{check_function, check_module, relower, ValidateConfig};

/// Fixed campaign seed; override per-mutant replay via `MUTANT=N`.
const SEED: u64 = 0x5350_4C44_4D55_5400; // "SPLDMUT\0"

const KERNEL: &str = r#"
#define N 48
double A[48];
double B[48];
double C[48];
void init() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = i * 0.25;
    B[i] = (N - i) * 0.125;
  }
}
void kernel(int steps) {
  int t;
  int i;
  for (t = 0; t < steps; t++) {
    for (i = 1; i < N - 1; i++) {
      C[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
    }
    for (i = 1; i < N - 1; i++) {
      if (C[i] > 2.0) {
        A[i] = C[i] - B[i];
      } else {
        A[i] = C[i] + B[i];
      }
    }
  }
}
"#;

fn polly_pipeline(src: &str) -> Module {
    let prog = parse_program(src).expect("kernel parses");
    let mut m =
        splendid_cfront::lower_program(&prog, "mut", &Default::default()).expect("kernel lowers");
    optimize_module(&mut m, &O2Options::default());
    parallelize_module(&mut m, &ParallelizeOptions::default());
    m
}

/// Decompile via the same prepared-module path the serve layer uses,
/// returning the module the validator checks against plus the source.
fn decompile_prepared(m: &Module) -> (Module, String) {
    let mut timings = StageTimings::default();
    let opts = SplendidOptions::default();
    let prepared = prepare_module(m, &opts, &mut timings).expect("prepare");
    let functions = prepared
        .module
        .func_ids()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|fid| decompile_function(&prepared, fid, &opts, &mut timings).expect("decompile"))
        .collect();
    let out = assemble_output(&prepared, functions, &mut timings);
    (prepared.module, out.source)
}

#[test]
fn validator_kills_every_detectable_mutant() {
    let module = polly_pipeline(KERNEL);
    let (src_module, source) = decompile_prepared(&module);
    let prog = parse_program(&source).expect("decompiled output re-parses");
    let total = mutation_sites(&prog);
    assert!(
        total >= 20,
        "kernel too simple: only {total} mutation sites"
    );

    // `MUTANT=N` replays a single site; otherwise sweep them all.
    let replay: Option<usize> = std::env::var("MUTANT").ok().and_then(|v| v.parse().ok());
    let sites: Vec<usize> = match replay {
        Some(n) => vec![n],
        None => (0..total).collect(),
    };

    let cfg = ValidateConfig {
        seed: SEED,
        ..ValidateConfig::default()
    };
    let original = relower(&source).expect("original decompiled output re-lowers");

    let mut killed = 0usize;
    let mut equivalent = 0usize;
    let mut survivors: Vec<String> = Vec::new();
    for &site in &sites {
        let Some((mutant_prog, desc)) = apply_mutation(&prog, site) else {
            panic!("MUTANT={site} out of range (total {total})");
        };
        let mutant_source = print_program(&mutant_prog);

        // Equivalent-mutant filter: probe original C vs mutant C with
        // the same harness. If no probe distinguishes them, the
        // validator cannot be expected to either.
        if let Ok(mutant_module) = relower(&mutant_source) {
            let distinguishable = original.functions.iter().any(|f| {
                !f.is_outlined
                    && !check_function(&original, &mutant_module, original.name_of(f.name), &cfg)
                        .is_verified()
            });
            if !distinguishable {
                equivalent += 1;
                continue;
            }
        }
        // else: the mutant does not even re-lower — the validator must
        // reject it via its Relower reason, which the kill check covers.

        let verdicts = check_module(&src_module, &mutant_source, &cfg);
        let kill = verdicts.iter().any(|v| !v.verdict.is_verified());
        if kill {
            killed += 1;
        } else {
            survivors.push(format!("SEED={SEED:#x} MUTANT={site}  ({desc})"));
        }
    }

    eprintln!(
        "mutants: {total} sites, {killed} killed, {equivalent} equivalent, {} survived",
        survivors.len()
    );
    if !survivors.is_empty() {
        for s in &survivors {
            eprintln!(
                "SURVIVOR {s}  (replay: MUTANT=<N> cargo test -p splendid-validate --test mutants)"
            );
        }
        panic!("{} mutant(s) survived validation", survivors.len());
    }
    if replay.is_none() {
        assert!(killed > 0, "no mutant was even attempted");
    }
}

#[test]
fn mutant_kill_is_deterministic() {
    // The same mutant must produce the same verdict on every run — the
    // CI job diffs two full runs, this is the single-mutant local check.
    let module = polly_pipeline(KERNEL);
    let (src_module, source) = decompile_prepared(&module);
    let prog = parse_program(&source).expect("reparse");
    let cfg = ValidateConfig {
        seed: SEED,
        ..ValidateConfig::default()
    };
    let (mutant, _) = apply_mutation(&prog, 0).expect("site 0 exists");
    let mutant_source = print_program(&mutant);
    let fmt = |m: &Module, s: &str| {
        check_module(m, s, &cfg)
            .iter()
            .map(|v| format!("{}={:?}", v.name, v.verdict))
            .collect::<Vec<_>>()
            .join(";")
    };
    assert_eq!(
        fmt(&src_module, &mutant_source),
        fmt(&src_module, &mutant_source)
    );
}
