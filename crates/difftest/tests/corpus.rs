//! Replays the checked-in regression corpus through every oracle route.
//!
//! Corpus programs are generator output frozen at the moment they were
//! interesting (construct coverage, past near-misses). They must keep
//! passing every route even as the generator's stream evolves — the
//! corpus pins behavior; the live campaign explores.

use splendid_difftest::{replay_corpus_source, InProcessDecompiler, Oracle};

#[test]
fn corpus_replays_clean_through_every_route() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let dec = InProcessDecompiler;
    let oracle = Oracle::new(&dec);
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("c"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 5,
        "expected at least five corpus programs, found {}",
        entries.len()
    );
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let report = replay_corpus_source(&oracle, &src)
            .unwrap_or_else(|f| panic!("{}: {f}", path.display()));
        assert!(report.checksum.is_finite());
    }
}
