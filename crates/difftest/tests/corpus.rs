//! Replays the checked-in regression corpus through every oracle route.
//!
//! Corpus programs are generator output frozen at the moment they were
//! interesting (construct coverage, past near-misses). They must keep
//! passing every route even as the generator's stream evolves — the
//! corpus pins behavior; the live campaign explores.

use splendid_difftest::{replay_corpus_source, validate_source, InProcessDecompiler, Oracle};

fn corpus_entries() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("c"))
        .collect();
    entries.sort();
    entries
}

#[test]
fn corpus_replays_clean_through_every_route() {
    let dec = InProcessDecompiler;
    let oracle = Oracle::new(&dec);
    let entries = corpus_entries();
    assert!(
        entries.len() >= 5,
        "expected at least five corpus programs, found {}",
        entries.len()
    );
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let report = replay_corpus_source(&oracle, &src)
            .unwrap_or_else(|f| panic!("{}: {f}", path.display()));
        assert!(report.checksum.is_finite());
    }
}

/// Every corpus program also goes through the translation validator.
/// The oracle proves these decompilations correct (the test above), so
/// the validator must never report a *mismatch* here — `Unverified`
/// for reasons of incompleteness is allowed and reported, a refutation
/// of a correct decompilation is a validator soundness bug.
#[test]
fn corpus_cross_checks_clean_through_the_validator() {
    let mut checked = 0usize;
    let mut verified = 0usize;
    let mut unverified = 0usize;
    for path in corpus_entries() {
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let verdicts = validate_source(&src, 0)
            .unwrap_or_else(|| panic!("{}: validation pipeline failed to set up", path.display()));
        checked += 1;
        for fv in &verdicts {
            match &fv.verdict {
                splendid_validate::Verdict::Verified => verified += 1,
                splendid_validate::Verdict::Unverified(reason) => {
                    assert!(
                        !reason.is_mismatch(),
                        "{}: validator refuted oracle-proven function {}: {reason}",
                        path.display(),
                        fv.name
                    );
                    unverified += 1;
                }
            }
        }
    }
    assert!(checked >= 5, "corpus shrank under the validator");
    assert!(
        verified > 0,
        "validator proved nothing across the corpus ({unverified} unverified)"
    );
}
