//! Parse → print round-trips over realistic IR: every PolyBench kernel
//! and every checked-in difftest corpus program, taken through the full
//! cfront → O2 → parallelize pipeline.
//!
//! Two properties per module:
//!
//! * **Fixpoint** — printing the parsed form of printed IR reproduces
//!   the same bytes. (The first print canonicalizes: in-memory modules
//!   may carry dead arena slots the printer never emits, so byte
//!   stability is only claimed from the first printed form onward.)
//! * **Stability** — re-parsing the fixpoint text yields an equal module
//!   (module equality resolves interned symbols by string, so this also
//!   exercises the symbol table across independent parses).

use splendid_ir::{parser::parse_module, printer::module_str, verify::verify_module, Module};
use splendid_polybench::Harness;

fn assert_roundtrips(name: &str, module: &Module) {
    // First print: in-memory modules may carry dead arena slots (sparse
    // SSA numbering) the parser compacts away, so the parse is the check
    // here, not byte identity.
    let text = module_str(module);
    let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{name}: re-parse failed: {e}"));
    verify_module(&parsed).unwrap_or_else(|e| panic!("{name}: parsed module fails verify: {e}"));
    // From the canonical (parsed) form onward the round-trip must be a
    // byte-for-byte fixpoint.
    let canonical = module_str(&parsed);
    let reparsed =
        parse_module(&canonical).unwrap_or_else(|e| panic!("{name}: canonical re-parse: {e}"));
    assert_eq!(
        canonical,
        module_str(&reparsed),
        "{name}: print → parse → print is not a fixpoint"
    );
    assert_eq!(parsed, reparsed, "{name}: independent parses disagree");
}

#[test]
fn polybench_suite_roundtrips() {
    let suite = Harness::polly_suite().expect("polybench suite compiles");
    assert!(
        suite.len() >= 16,
        "expected the full 16-kernel suite, found {}",
        suite.len()
    );
    for (name, module) in &suite {
        assert_roundtrips(name, module);
    }
}

#[test]
fn difftest_corpus_roundtrips() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("c"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus must not be empty");
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("readable corpus program");
        let (module, _) =
            Harness::polly(&src).unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        assert_roundtrips(&name, &module);
    }
}
