//! The differential oracle: one generated program, every pipeline route,
//! one verdict.
//!
//! Routes (all compared against the `o0` reference checksum):
//!
//! | route              | pipeline                                              |
//! |--------------------|-------------------------------------------------------|
//! | `o0`               | cfront → interp (reference)                           |
//! | `o2`               | cfront → `-O2` → interp                               |
//! | `polly`            | cfront → `-O2` → Polly-sim parallelizer → interp      |
//! | `decompile-libomp` | polly IR → SPLENDID decompile → cfront(libomp) → -O2 → interp |
//! | `decompile-libgomp`| same, recompiled against the GOMP-style runtime       |
//! | `decompile-quick`  | polly IR → Quick-tier decompile → cfront(libomp) → -O2 → interp |
//! | `stability`        | decompiling the same IR twice must be byte-identical  |
//!
//! With [`Oracle::vectorize`] set, two more routes run:
//!
//! | route         | pipeline                                                   |
//! |---------------|------------------------------------------------------------|
//! | `vectorize`   | o2 IR → loop vectorizer → interp (vector-lane execution)   |
//! | `devectorize` | vectorized IR → SPLENDID decompile → cfront → -O2 → interp |
//!
//! The `devectorize` route is the SIMD round trip: the decompiler must
//! either recognize the widened loops (emitting `#pragma omp simd`) or
//! fall down the fidelity ladder to lane-explicit literal C — both must
//! reproduce the reference checksum bit-for-bit.
//!
//! The decompilation step goes through a [`Decompiler`] so the CLI can
//! route it through `splendid-serve`'s scheduler + function cache (the
//! second decompilation of each module is then served from cache and the
//! stability route checks the cached result byte-for-byte against the
//! fresh one). The in-process default uses the same reentrant
//! `prepare_module`/`decompile_function` API the service schedules.

use splendid_cfront::OmpRuntime;
use splendid_core::{
    assemble_output, decompile_function, prepare_module, SplendidOptions, StageTimings,
};
use splendid_interp::{CompilerProfile, MachineConfig};
use splendid_ir::Module;
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_polybench::Harness;
use splendid_transforms::vectorize::{vectorize_module, VectorizeOptions};

/// Pluggable decompilation backend.
pub trait Decompiler {
    /// Decompile `module` to C source, or explain why it could not.
    fn decompile(&self, module: &Module, opts: &SplendidOptions) -> Result<String, String>;
}

/// Default backend: the reentrant per-function pipeline API, in process.
pub struct InProcessDecompiler;

impl Decompiler for InProcessDecompiler {
    fn decompile(&self, module: &Module, opts: &SplendidOptions) -> Result<String, String> {
        let mut timings = StageTimings::default();
        let prepared = prepare_module(module, opts, &mut timings)?;
        let functions = prepared
            .module
            .func_ids()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|fid| decompile_function(&prepared, fid, opts, &mut timings))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(assemble_output(&prepared, functions, &mut timings).source)
    }
}

/// How a case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A route errored or panicked instead of producing a checksum.
    PipelineError,
    /// A route produced a different checksum than the reference.
    Mismatch,
    /// The reference itself produced a non-finite checksum (generator
    /// contract violation).
    NonFinite,
    /// Two decompilations of the same IR differed.
    Unstable,
}

impl FailureKind {
    /// Stable label used in reports and shrinker failure matching.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::PipelineError => "pipeline-error",
            FailureKind::Mismatch => "checksum-mismatch",
            FailureKind::NonFinite => "non-finite",
            FailureKind::Unstable => "decompile-unstable",
        }
    }
}

/// A failed case: which route, how, and with what detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFailure {
    /// Route label (see module docs).
    pub route: &'static str,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable detail (checksums, error text).
    pub detail: String,
}

impl CaseFailure {
    /// The shrinker preserves `(route, kind)` while minimizing: a
    /// candidate reproduces the failure iff this key matches.
    pub fn key(&self) -> (&'static str, &'static str) {
        (self.route, self.kind.label())
    }
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.route, self.kind.label(), self.detail)
    }
}

/// What a passing case reports back.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The agreed checksum.
    pub checksum: f64,
    /// Loops the Polly-sim parallelizer outlined in this case.
    pub parallelized_loops: usize,
    /// Loops the vectorizer widened (0 unless the vector routes ran).
    pub vectorized_loops: usize,
    /// Routes executed on this case.
    pub routes: usize,
}

/// The oracle itself.
pub struct Oracle<'d> {
    decompiler: &'d dyn Decompiler,
    /// Profitability floor handed to the parallelizer (0 = parallelize
    /// anything provably safe, maximizing route divergence surface).
    pub min_work: u64,
    /// Also run the `vectorize` / `devectorize` routes (the SIMD round
    /// trip). Off by default: the scalar routes stay byte-compatible
    /// with historical campaign reports.
    pub vectorize: bool,
}

impl<'d> Oracle<'d> {
    /// Oracle over the given decompilation backend.
    pub fn new(decompiler: &'d dyn Decompiler) -> Oracle<'d> {
        Oracle {
            decompiler,
            min_work: 0,
            vectorize: false,
        }
    }

    /// Run every route over `src`, checksumming `arrays`.
    pub fn check_source(&self, src: &str, arrays: &[String]) -> Result<CaseReport, CaseFailure> {
        let names: Vec<&str> = arrays.iter().map(|s| s.as_str()).collect();
        let fail = |route, kind, detail: String| CaseFailure {
            route,
            kind,
            detail,
        };

        // Route o0: the reference semantics.
        let o0 = Harness::compile_o0(src, OmpRuntime::LibOmp)
            .map_err(|e| fail("o0", FailureKind::PipelineError, e.to_string()))?;
        let (reference, _) = Harness::run(&o0, MachineConfig::default(), &names)
            .map_err(|e| fail("o0", FailureKind::PipelineError, e.to_string()))?;
        if !reference.is_finite() {
            return Err(fail(
                "o0",
                FailureKind::NonFinite,
                format!("reference checksum {reference}"),
            ));
        }

        // Route o2.
        let o2 = Harness::compile(src, OmpRuntime::LibOmp)
            .map_err(|e| fail("o2", FailureKind::PipelineError, e.to_string()))?;
        let (c2, _) = Harness::run(&o2, MachineConfig::default(), &names)
            .map_err(|e| fail("o2", FailureKind::PipelineError, e.to_string()))?;
        if c2 != reference {
            return Err(fail(
                "o2",
                FailureKind::Mismatch,
                format!("o2 checksum {c2} != reference {reference}"),
            ));
        }

        // Route polly: -O2 + parallelizer.
        let mut polly = o2.clone();
        let opts = ParallelizeOptions {
            version_aliasing: true,
            min_work: self.min_work,
            only_functions: vec!["kernel".into()],
        };
        let report = parallelize_module(&mut polly, &opts);
        let parallelized_loops = report.parallelized_count();
        let (cp, _) = Harness::run(&polly, MachineConfig::default(), &names)
            .map_err(|e| fail("polly", FailureKind::PipelineError, e.to_string()))?;
        if cp != reference {
            return Err(fail(
                "polly",
                FailureKind::Mismatch,
                format!(
                    "polly checksum {cp} != reference {reference} \
                     ({parallelized_loops} loop(s) parallelized)"
                ),
            ));
        }

        // Decompile the parallel IR — twice, for the stability route (and,
        // with a scheduler-backed Decompiler, for the cache-hit path).
        let sopts = SplendidOptions::default();
        let decompiled = self
            .decompiler
            .decompile(&polly, &sopts)
            .map_err(|e| fail("stability", FailureKind::PipelineError, e))?;
        let again = self
            .decompiler
            .decompile(&polly, &sopts)
            .map_err(|e| fail("stability", FailureKind::PipelineError, e))?;
        if decompiled != again {
            return Err(fail(
                "stability",
                FailureKind::Unstable,
                "two decompilations of identical IR differ".into(),
            ));
        }

        // Routes decompile-libomp / decompile-libgomp: recompile + rerun.
        for (route, rt) in [
            ("decompile-libomp", OmpRuntime::LibOmp),
            ("decompile-libgomp", OmpRuntime::LibGomp),
        ] {
            let (cr, _) =
                Harness::recompile_and_run(&decompiled, rt, CompilerProfile::gcc(), &names)
                    .map_err(|e| {
                        fail(
                            route,
                            FailureKind::PipelineError,
                            format!("{e}\n--- decompiled source ---\n{decompiled}"),
                        )
                    })?;
            if cr != reference {
                return Err(fail(
                    route,
                    FailureKind::Mismatch,
                    format!(
                        "recompiled checksum {cr} != reference {reference}\
                         \n--- decompiled source ---\n{decompiled}"
                    ),
                ));
            }
        }

        // Route decompile-quick: the single-pass Quick tier (no CFG
        // reconstruction) must still recompile and agree on the
        // checksum — lower readability, never lower correctness.
        let qopts = SplendidOptions {
            start_tier: splendid_core::FidelityTier::Quick,
            ..SplendidOptions::default()
        };
        let quick = self
            .decompiler
            .decompile(&polly, &qopts)
            .map_err(|e| fail("decompile-quick", FailureKind::PipelineError, e))?;
        let (cq, _) =
            Harness::recompile_and_run(&quick, OmpRuntime::LibOmp, CompilerProfile::gcc(), &names)
                .map_err(|e| {
                    fail(
                        "decompile-quick",
                        FailureKind::PipelineError,
                        format!("{e}\n--- quick source ---\n{quick}"),
                    )
                })?;
        if cq != reference {
            return Err(fail(
                "decompile-quick",
                FailureKind::Mismatch,
                format!(
                    "quick-tier checksum {cq} != reference {reference}\
                     \n--- quick source ---\n{quick}"
                ),
            ));
        }

        // Routes vectorize / devectorize: widen the scalar -O2 module,
        // run it lane-wise, then round-trip the vector IR through the
        // decompiler and recompile. Both must reproduce the reference.
        let mut vectorized_loops = 0;
        let mut routes = 7;
        if self.vectorize {
            routes += 2;
            let mut wide = o2.clone();
            let vstats = vectorize_module(&mut wide, &VectorizeOptions::default());
            vectorized_loops = vstats.vectorized_loops;
            let (cv, _) = Harness::run(&wide, MachineConfig::default(), &names)
                .map_err(|e| fail("vectorize", FailureKind::PipelineError, e.to_string()))?;
            if cv != reference {
                return Err(fail(
                    "vectorize",
                    FailureKind::Mismatch,
                    format!(
                        "vectorized checksum {cv} != reference {reference} \
                         ({vectorized_loops} loop(s) widened)"
                    ),
                ));
            }

            let devec = self
                .decompiler
                .decompile(&wide, &sopts)
                .map_err(|e| fail("devectorize", FailureKind::PipelineError, e))?;
            let (cd, _) = Harness::recompile_and_run(
                &devec,
                OmpRuntime::LibOmp,
                CompilerProfile::gcc(),
                &names,
            )
            .map_err(|e| {
                fail(
                    "devectorize",
                    FailureKind::PipelineError,
                    format!("{e}\n--- devectorized source ---\n{devec}"),
                )
            })?;
            if cd != reference {
                return Err(fail(
                    "devectorize",
                    FailureKind::Mismatch,
                    format!(
                        "devectorized checksum {cd} != reference {reference}\
                         \n--- devectorized source ---\n{devec}"
                    ),
                ));
            }
        }

        Ok(CaseReport {
            checksum: reference,
            parallelized_loops,
            vectorized_loops,
            routes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "double A[8];\n\
        void init() {\n  int i;\n  for (i = 0; i < 8; i++) { A[i] = i * 0.5; }\n}\n\
        void kernel() {\n  int i;\n  for (i = 0; i < 8; i++) { A[i] = A[i] * 2.0 + 1.0; }\n}\n";

    #[test]
    fn good_program_passes_all_routes() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let report = oracle
            .check_source(GOOD, &["A".into()])
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checksum.is_finite());
        assert_eq!(report.routes, 7);
        assert!(report.parallelized_loops >= 1, "elementwise loop is DOALL");
        assert_eq!(report.vectorized_loops, 0, "SIMD routes are opt-in");
    }

    #[test]
    fn simd_routes_roundtrip_vector_ir() {
        let dec = InProcessDecompiler;
        let mut oracle = Oracle::new(&dec);
        oracle.vectorize = true;
        let report = oracle
            .check_source(GOOD, &["A".into()])
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.routes, 9);
        assert!(
            report.vectorized_loops >= 1,
            "the elementwise kernel is stride-1 and should widen"
        );
    }

    const DOT_STYLE: &str = "double A[64];\ndouble B[64];\ndouble S[1];\n\
        void init() {\n  int i;\n  for (i = 0; i < 64; i++) { A[i] = i * 0.25; B[i] = 8.0 - i; }\n}\n\
        void kernel() {\n  int i;\n  double s = 0.0;\n  \
        for (i = 0; i < 64; i++) { s = s + A[i] * B[i]; }\n  S[0] = s;\n}\n";

    #[test]
    fn simd_routes_handle_reductions() {
        let dec = InProcessDecompiler;
        let mut oracle = Oracle::new(&dec);
        oracle.vectorize = true;
        let report = oracle
            .check_source(DOT_STYLE, &["A".into(), "B".into(), "S".into()])
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checksum.is_finite());
        assert!(
            report.vectorized_loops >= 1,
            "dot-style reduction should widen"
        );
    }

    #[test]
    fn unparsable_program_is_a_pipeline_error_not_a_panic() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let err = oracle.check_source("void kernel() {", &[]).unwrap_err();
        assert_eq!(err.route, "o0");
        assert_eq!(err.kind, FailureKind::PipelineError);
    }

    #[test]
    fn missing_checksum_global_is_reported() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let err = oracle
            .check_source("void kernel() { int i; i = 0; }", &["A".into()])
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::PipelineError);
    }
}
