//! The differential oracle: one generated program, every pipeline route,
//! one verdict.
//!
//! Routes (all compared against the `o0` reference checksum):
//!
//! | route              | pipeline                                              |
//! |--------------------|-------------------------------------------------------|
//! | `o0`               | cfront → interp (reference)                           |
//! | `o2`               | cfront → `-O2` → interp                               |
//! | `polly`            | cfront → `-O2` → Polly-sim parallelizer → interp      |
//! | `decompile-libomp` | polly IR → SPLENDID decompile → cfront(libomp) → -O2 → interp |
//! | `decompile-libgomp`| same, recompiled against the GOMP-style runtime       |
//! | `decompile-quick`  | polly IR → Quick-tier decompile → cfront(libomp) → -O2 → interp |
//! | `stability`        | decompiling the same IR twice must be byte-identical  |
//!
//! The decompilation step goes through a [`Decompiler`] so the CLI can
//! route it through `splendid-serve`'s scheduler + function cache (the
//! second decompilation of each module is then served from cache and the
//! stability route checks the cached result byte-for-byte against the
//! fresh one). The in-process default uses the same reentrant
//! `prepare_module`/`decompile_function` API the service schedules.

use splendid_cfront::OmpRuntime;
use splendid_core::{
    assemble_output, decompile_function, prepare_module, SplendidOptions, StageTimings,
};
use splendid_interp::{CompilerProfile, MachineConfig};
use splendid_ir::Module;
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_polybench::Harness;

/// Pluggable decompilation backend.
pub trait Decompiler {
    /// Decompile `module` to C source, or explain why it could not.
    fn decompile(&self, module: &Module, opts: &SplendidOptions) -> Result<String, String>;
}

/// Default backend: the reentrant per-function pipeline API, in process.
pub struct InProcessDecompiler;

impl Decompiler for InProcessDecompiler {
    fn decompile(&self, module: &Module, opts: &SplendidOptions) -> Result<String, String> {
        let mut timings = StageTimings::default();
        let prepared = prepare_module(module, opts, &mut timings)?;
        let functions = prepared
            .module
            .func_ids()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|fid| decompile_function(&prepared, fid, opts, &mut timings))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(assemble_output(&prepared, functions, &mut timings).source)
    }
}

/// How a case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A route errored or panicked instead of producing a checksum.
    PipelineError,
    /// A route produced a different checksum than the reference.
    Mismatch,
    /// The reference itself produced a non-finite checksum (generator
    /// contract violation).
    NonFinite,
    /// Two decompilations of the same IR differed.
    Unstable,
}

impl FailureKind {
    /// Stable label used in reports and shrinker failure matching.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::PipelineError => "pipeline-error",
            FailureKind::Mismatch => "checksum-mismatch",
            FailureKind::NonFinite => "non-finite",
            FailureKind::Unstable => "decompile-unstable",
        }
    }
}

/// A failed case: which route, how, and with what detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFailure {
    /// Route label (see module docs).
    pub route: &'static str,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable detail (checksums, error text).
    pub detail: String,
}

impl CaseFailure {
    /// The shrinker preserves `(route, kind)` while minimizing: a
    /// candidate reproduces the failure iff this key matches.
    pub fn key(&self) -> (&'static str, &'static str) {
        (self.route, self.kind.label())
    }
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.route, self.kind.label(), self.detail)
    }
}

/// What a passing case reports back.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The agreed checksum.
    pub checksum: f64,
    /// Loops the Polly-sim parallelizer outlined in this case.
    pub parallelized_loops: usize,
    /// Routes executed (constant today, but reported for the record).
    pub routes: usize,
}

/// The oracle itself.
pub struct Oracle<'d> {
    decompiler: &'d dyn Decompiler,
    /// Profitability floor handed to the parallelizer (0 = parallelize
    /// anything provably safe, maximizing route divergence surface).
    pub min_work: u64,
}

impl<'d> Oracle<'d> {
    /// Oracle over the given decompilation backend.
    pub fn new(decompiler: &'d dyn Decompiler) -> Oracle<'d> {
        Oracle {
            decompiler,
            min_work: 0,
        }
    }

    /// Run every route over `src`, checksumming `arrays`.
    pub fn check_source(&self, src: &str, arrays: &[String]) -> Result<CaseReport, CaseFailure> {
        let names: Vec<&str> = arrays.iter().map(|s| s.as_str()).collect();
        let fail = |route, kind, detail: String| CaseFailure {
            route,
            kind,
            detail,
        };

        // Route o0: the reference semantics.
        let o0 = Harness::compile_o0(src, OmpRuntime::LibOmp)
            .map_err(|e| fail("o0", FailureKind::PipelineError, e.to_string()))?;
        let (reference, _) = Harness::run(&o0, MachineConfig::default(), &names)
            .map_err(|e| fail("o0", FailureKind::PipelineError, e.to_string()))?;
        if !reference.is_finite() {
            return Err(fail(
                "o0",
                FailureKind::NonFinite,
                format!("reference checksum {reference}"),
            ));
        }

        // Route o2.
        let o2 = Harness::compile(src, OmpRuntime::LibOmp)
            .map_err(|e| fail("o2", FailureKind::PipelineError, e.to_string()))?;
        let (c2, _) = Harness::run(&o2, MachineConfig::default(), &names)
            .map_err(|e| fail("o2", FailureKind::PipelineError, e.to_string()))?;
        if c2 != reference {
            return Err(fail(
                "o2",
                FailureKind::Mismatch,
                format!("o2 checksum {c2} != reference {reference}"),
            ));
        }

        // Route polly: -O2 + parallelizer.
        let mut polly = o2.clone();
        let opts = ParallelizeOptions {
            version_aliasing: true,
            min_work: self.min_work,
            only_functions: vec!["kernel".into()],
        };
        let report = parallelize_module(&mut polly, &opts);
        let parallelized_loops = report.parallelized_count();
        let (cp, _) = Harness::run(&polly, MachineConfig::default(), &names)
            .map_err(|e| fail("polly", FailureKind::PipelineError, e.to_string()))?;
        if cp != reference {
            return Err(fail(
                "polly",
                FailureKind::Mismatch,
                format!(
                    "polly checksum {cp} != reference {reference} \
                     ({parallelized_loops} loop(s) parallelized)"
                ),
            ));
        }

        // Decompile the parallel IR — twice, for the stability route (and,
        // with a scheduler-backed Decompiler, for the cache-hit path).
        let sopts = SplendidOptions::default();
        let decompiled = self
            .decompiler
            .decompile(&polly, &sopts)
            .map_err(|e| fail("stability", FailureKind::PipelineError, e))?;
        let again = self
            .decompiler
            .decompile(&polly, &sopts)
            .map_err(|e| fail("stability", FailureKind::PipelineError, e))?;
        if decompiled != again {
            return Err(fail(
                "stability",
                FailureKind::Unstable,
                "two decompilations of identical IR differ".into(),
            ));
        }

        // Routes decompile-libomp / decompile-libgomp: recompile + rerun.
        for (route, rt) in [
            ("decompile-libomp", OmpRuntime::LibOmp),
            ("decompile-libgomp", OmpRuntime::LibGomp),
        ] {
            let (cr, _) =
                Harness::recompile_and_run(&decompiled, rt, CompilerProfile::gcc(), &names)
                    .map_err(|e| {
                        fail(
                            route,
                            FailureKind::PipelineError,
                            format!("{e}\n--- decompiled source ---\n{decompiled}"),
                        )
                    })?;
            if cr != reference {
                return Err(fail(
                    route,
                    FailureKind::Mismatch,
                    format!(
                        "recompiled checksum {cr} != reference {reference}\
                         \n--- decompiled source ---\n{decompiled}"
                    ),
                ));
            }
        }

        // Route decompile-quick: the single-pass Quick tier (no CFG
        // reconstruction) must still recompile and agree on the
        // checksum — lower readability, never lower correctness.
        let qopts = SplendidOptions {
            start_tier: splendid_core::FidelityTier::Quick,
            ..SplendidOptions::default()
        };
        let quick = self
            .decompiler
            .decompile(&polly, &qopts)
            .map_err(|e| fail("decompile-quick", FailureKind::PipelineError, e))?;
        let (cq, _) =
            Harness::recompile_and_run(&quick, OmpRuntime::LibOmp, CompilerProfile::gcc(), &names)
                .map_err(|e| {
                    fail(
                        "decompile-quick",
                        FailureKind::PipelineError,
                        format!("{e}\n--- quick source ---\n{quick}"),
                    )
                })?;
        if cq != reference {
            return Err(fail(
                "decompile-quick",
                FailureKind::Mismatch,
                format!(
                    "quick-tier checksum {cq} != reference {reference}\
                     \n--- quick source ---\n{quick}"
                ),
            ));
        }

        Ok(CaseReport {
            checksum: reference,
            parallelized_loops,
            routes: 7,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "double A[8];\n\
        void init() {\n  int i;\n  for (i = 0; i < 8; i++) { A[i] = i * 0.5; }\n}\n\
        void kernel() {\n  int i;\n  for (i = 0; i < 8; i++) { A[i] = A[i] * 2.0 + 1.0; }\n}\n";

    #[test]
    fn good_program_passes_all_routes() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let report = oracle
            .check_source(GOOD, &["A".into()])
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checksum.is_finite());
        assert_eq!(report.routes, 7);
        assert!(report.parallelized_loops >= 1, "elementwise loop is DOALL");
    }

    #[test]
    fn unparsable_program_is_a_pipeline_error_not_a_panic() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let err = oracle.check_source("void kernel() {", &[]).unwrap_err();
        assert_eq!(err.route, "o0");
        assert_eq!(err.kind, FailureKind::PipelineError);
    }

    #[test]
    fn missing_checksum_global_is_reported() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let err = oracle
            .check_source("void kernel() { int i; i = 0; }", &["A".into()])
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::PipelineError);
    }
}
