//! Seeded, dependency-free PRNG for deterministic case generation.
//!
//! xorshift64* (Vigna 2016): tiny state, good equidistribution for the
//! bounded draws the generator needs, and — critically — the same stream
//! on every platform and every run. Nothing here reads clocks or OS
//! entropy; a `(seed, case index)` pair fully determines a test case.

/// xorshift64* generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// SplitMix64 step: used to whiten user-supplied seeds (which are often
/// small integers or hashes with clustered bits) before they feed the
/// xorshift stream.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Generator seeded for one `(run seed, case index)` pair.
    pub fn for_case(seed: u64, case: u64) -> Rng {
        // Mix the two halves so neighbouring cases share no prefix.
        let mut state = splitmix64(seed ^ splitmix64(case));
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15; // xorshift state must be nonzero
        }
        Rng { state }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded draw (Lemire); bias is < 2^-32 for the
        // tiny ranges used here, and determinism is all that matters.
        ((self.next_u64() >> 32).wrapping_mul(n)) >> 32
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Uniform index into a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// FNV-1a over a byte string: lets the CLI accept arbitrary seed spellings
/// (`--seed 0xSPLENDID`) by hashing anything that isn't a number.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Parse a seed argument: `0x`-prefixed hex, then decimal, then — for any
/// other spelling — the FNV-1a hash of the text itself.
pub fn parse_seed(text: &str) -> u64 {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    if let Ok(v) = text.parse::<u64>() {
        return v;
    }
    fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::for_case(42, 7);
        let mut b = Rng::for_case(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn neighbouring_cases_diverge() {
        let mut a = Rng::for_case(42, 7);
        let mut b = Rng::for_case(42, 8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = Rng::for_case(1, 1);
        for _ in 0..1000 {
            let v = r.range_i64(-3, 9);
            assert!((-3..=9).contains(&v));
            assert!(r.below(5) < 5);
        }
    }

    #[test]
    fn seed_parsing_accepts_hex_decimal_and_words() {
        assert_eq!(parse_seed("0x10"), 16);
        assert_eq!(parse_seed("123"), 123);
        // Not valid hex (S, P, L, N, I): falls back to the FNV hash, and
        // does so stably.
        assert_eq!(parse_seed("0xSPLENDID"), parse_seed("0xSPLENDID"));
        assert_ne!(parse_seed("0xSPLENDID"), parse_seed("0xSPLENDIE"));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::for_case(0, 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
