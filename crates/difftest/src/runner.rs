//! Campaign driver: generate N cases, oracle each, shrink failures,
//! and produce a byte-deterministic report.
//!
//! With [`DifftestConfig::validate`] set, every case is additionally
//! pushed through the translation validator and cross-checked against
//! the oracle verdict: the validator must never say `Verified` about a
//! decompilation the six-route oracle proves wrong (soundness), while
//! `Unverified` verdicts on oracle-passing cases are tallied as the
//! checker's incompleteness rate.

use crate::gen::{generate, GenConfig};
use crate::oracle::{CaseFailure, Decompiler, InProcessDecompiler, Oracle};
use crate::rng::fnv1a64;
use crate::shrink::shrink;
use splendid_core::SplendidOptions;
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_polybench::Harness;

/// Campaign configuration (mirrors the `splendid difftest` CLI flags).
#[derive(Debug, Clone)]
pub struct DifftestConfig {
    /// Campaign seed; case `i` is generated from `(seed, i)`.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: u64,
    /// Minimize failing cases before reporting.
    pub shrink: bool,
    /// Replay exactly one case index instead of the whole campaign.
    pub only_case: Option<u64>,
    /// Profitability floor for the parallelizer route.
    pub min_work: u64,
    /// Cross-check every case against the translation validator.
    pub validate: bool,
}

impl Default for DifftestConfig {
    fn default() -> DifftestConfig {
        DifftestConfig {
            seed: 0,
            cases: 100,
            shrink: true,
            only_case: None,
            min_work: 0,
            validate: false,
        }
    }
}

/// One failing case, ready to print.
#[derive(Debug, Clone)]
pub struct FailedCase {
    /// Case index within the campaign.
    pub case: u64,
    /// The (post-shrink, if enabled) failure.
    pub failure: CaseFailure,
    /// Source of the failing program — shrunk when shrinking ran.
    pub source: String,
    /// Line count of the program as generated, before shrinking.
    pub original_lines: usize,
    /// Whether `source` is the shrunk form.
    pub shrunk: bool,
}

/// Campaign result. `Display` is byte-deterministic for a given
/// `(seed, cases, min_work)` — two runs must print identically.
#[derive(Debug, Clone)]
pub struct DifftestReport {
    /// Campaign seed.
    pub seed: u64,
    /// Cases executed.
    pub cases_run: u64,
    /// Cases on which every route agreed.
    pub passed: u64,
    /// Divergent or erroring cases.
    pub failed: Vec<FailedCase>,
    /// Loops the parallelizer route outlined, summed over passing cases.
    pub parallelized_loops: usize,
    /// Loops the vectorizer widened, summed over passing cases. Only
    /// nonzero (and only printed) when the oracle ran the SIMD routes.
    pub vectorized_loops: usize,
    /// Whether the oracle ran the `vectorize`/`devectorize` routes.
    pub simd_routes: bool,
    /// FNV-1a over the passing checksums' bit patterns: a campaign
    /// fingerprint that two identical runs must reproduce exactly.
    pub checksum_digest: u64,
    /// Validator cross-check results; `None` unless
    /// [`DifftestConfig::validate`] was set.
    pub validation: Option<ValidationReport>,
}

/// Validator cross-check tallies for one campaign.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Cases the validator actually checked end to end.
    pub cases_checked: u64,
    /// Functions the validator marked `Verified`, summed over cases.
    pub functions_verified: u64,
    /// Functions the validator marked `Unverified`, summed over cases.
    pub functions_unverified: u64,
    /// Oracle-passing cases where at least one function came back
    /// `Unverified` — the checker's incompleteness, not a bug.
    pub incomplete_cases: u64,
    /// Cases the validator could not set up (compile/decompile error on
    /// the validation pipeline itself) — skipped, not counted either way.
    pub skipped_cases: u64,
    /// Soundness violations: case indices where a decompile-route
    /// oracle failure coexists with an all-`Verified` verdict. Must
    /// stay empty; any entry is a validator bug.
    pub unsound_cases: Vec<u64>,
}

impl ValidationReport {
    /// Fraction of checked oracle-passing work the validator could not
    /// prove, in [0, 1]. Zero when nothing was checked.
    pub fn incompleteness_rate(&self) -> f64 {
        if self.cases_checked == 0 {
            0.0
        } else {
            self.incomplete_cases as f64 / self.cases_checked as f64
        }
    }
}

impl DifftestReport {
    /// True iff no case diverged.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty()
    }

    /// True iff the validator cross-check (if run) found no case where
    /// it claimed `Verified` about a decompilation the oracle refuted.
    pub fn validator_sound(&self) -> bool {
        self.validation
            .as_ref()
            .is_none_or(|v| v.unsound_cases.is_empty())
    }
}

/// The one-liner a failure report leads with, plus the command to rerun it.
pub fn replay_command(seed: u64, case: u64) -> String {
    format!(
        "SEED={seed:#x} CASE={case}  (replay: splendid difftest --seed {seed:#x} --case {case} --shrink)"
    )
}

impl std::fmt::Display for DifftestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "difftest: seed={:#x} cases={} passed={} failed={}",
            self.seed,
            self.cases_run,
            self.passed,
            self.failed.len()
        )?;
        writeln!(
            f,
            "  parallelized loops: {}  checksum digest: {:#018x}",
            self.parallelized_loops, self.checksum_digest
        )?;
        if self.simd_routes {
            writeln!(f, "  vectorized loops: {}", self.vectorized_loops)?;
        }
        if let Some(v) = &self.validation {
            writeln!(
                f,
                "  validate: checked={} verified={} unverified={} incomplete={} skipped={} unsound={}",
                v.cases_checked,
                v.functions_verified,
                v.functions_unverified,
                v.incomplete_cases,
                v.skipped_cases,
                v.unsound_cases.len()
            )?;
            writeln!(
                f,
                "  validate incompleteness rate: {:.1}%",
                v.incompleteness_rate() * 100.0
            )?;
            for case in &v.unsound_cases {
                writeln!(f, "VALIDATE-UNSOUND {}", replay_command(self.seed, *case))?;
            }
        }
        for fc in &self.failed {
            writeln!(f, "FAIL {}", replay_command(self.seed, fc.case))?;
            writeln!(f, "  {}", fc.failure)?;
            let lines = fc.source.lines().count();
            if fc.shrunk {
                writeln!(
                    f,
                    "  shrunk program ({} lines, from {}):",
                    lines, fc.original_lines
                )?;
            } else {
                writeln!(f, "  program ({lines} lines):")?;
            }
            for line in fc.source.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// Run a campaign.
pub fn run_difftest(oracle: &Oracle, cfg: &DifftestConfig) -> DifftestReport {
    let gen_cfg = GenConfig::default();
    let case_indices: Vec<u64> = match cfg.only_case {
        Some(c) => vec![c],
        None => (0..cfg.cases).collect(),
    };

    let mut passed = 0;
    let mut failed = Vec::new();
    let mut parallelized = 0usize;
    let mut vectorized = 0usize;
    let mut digest: u64 = 0xCBF2_9CE4_8422_2325;
    let mut validation = cfg.validate.then(ValidationReport::default);

    for &case in &case_indices {
        let prog = generate(cfg.seed, case, &gen_cfg);
        let arrays = prog.array_names();
        let src = prog.render();
        let oracle_result = oracle.check_source(&src, &arrays);
        if let Some(v) = validation.as_mut() {
            cross_check_case(v, case, &src, cfg.min_work, &oracle_result);
        }
        match oracle_result {
            Ok(report) => {
                passed += 1;
                parallelized += report.parallelized_loops;
                vectorized += report.vectorized_loops;
                digest = fnv1a64_fold(digest, report.checksum.to_bits());
            }
            Err(failure) => {
                let original_lines = src.lines().count();
                let (source, failure, shrunk) = if cfg.shrink {
                    let res = shrink(oracle, &prog, &arrays, &failure);
                    (res.program.render(), res.failure, true)
                } else {
                    (src, failure, false)
                };
                failed.push(FailedCase {
                    case,
                    failure,
                    source,
                    original_lines,
                    shrunk,
                });
            }
        }
    }

    DifftestReport {
        seed: cfg.seed,
        cases_run: case_indices.len() as u64,
        passed,
        failed,
        parallelized_loops: parallelized,
        vectorized_loops: vectorized,
        simd_routes: oracle.vectorize,
        checksum_digest: digest,
        validation,
    }
}

/// Oracle routes whose failure indicts the *decompilation* rather than
/// the generated program itself. Only on these may an all-`Verified`
/// validator verdict be called unsound: an o0/o2/polly failure happens
/// before decompilation and the validator makes no claim about it. The
/// SIMD routes are also excluded — `devectorize` decompiles the
/// *vectorized* module, while the validator's verdicts cover the polly
/// module, so they speak about different inputs.
fn failure_indicts_decompilation(route: &str) -> bool {
    matches!(
        route,
        "stability" | "decompile-libomp" | "decompile-libgomp"
    )
}

/// Run the translation validator over one case and fold the verdicts
/// into the campaign tallies, cross-referencing the oracle's result.
fn cross_check_case(
    tally: &mut ValidationReport,
    case: u64,
    src: &str,
    min_work: u64,
    oracle_result: &Result<crate::oracle::CaseReport, CaseFailure>,
) {
    let Some(verdicts) = validate_source(src, min_work) else {
        tally.skipped_cases += 1;
        return;
    };
    let unverified = verdicts
        .iter()
        .filter(|fv| !fv.verdict.is_verified())
        .count() as u64;
    let verified = verdicts.len() as u64 - unverified;
    tally.cases_checked += 1;
    tally.functions_verified += verified;
    tally.functions_unverified += unverified;
    match oracle_result {
        Ok(_) => {
            if unverified > 0 {
                tally.incomplete_cases += 1;
            }
        }
        Err(failure) => {
            if failure_indicts_decompilation(failure.route) && unverified == 0 && verified > 0 {
                tally.unsound_cases.push(case);
            }
        }
    }
}

/// Build the exact module the oracle's decompile routes consume
/// (O2 compile, then the Polly-sim parallelizer restricted to
/// `kernel`), decompile it with default options, and run the bounded
/// equivalence checker over the pair. `None` when the validation
/// pipeline itself cannot be set up for this program.
pub fn validate_source(
    src: &str,
    min_work: u64,
) -> Option<Vec<splendid_validate::FunctionVerdict>> {
    let mut polly = Harness::compile(src, splendid_cfront::OmpRuntime::LibOmp).ok()?;
    let _ = parallelize_module(
        &mut polly,
        &ParallelizeOptions {
            version_aliasing: true,
            min_work,
            only_functions: vec!["kernel".into()],
        },
    );
    let source = InProcessDecompiler
        .decompile(&polly, &SplendidOptions::default())
        .ok()?;
    Some(splendid_validate::check_module(
        &polly,
        &source,
        &splendid_validate::ValidateConfig::default(),
    ))
}

/// Fold one value into a running FNV-1a digest.
fn fnv1a64_fold(mut h: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Top-level `double` array declarations in a corpus source file, in
/// declaration order — the checksum list for corpus replay. Matches the
/// generator's rendering (`double A[N];` / `double A[N][M];` at column 0).
pub fn arrays_in_source(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in src.lines() {
        if let Some(rest) = line.strip_prefix("double ") {
            if let Some(bracket) = rest.find('[') {
                let name = rest[..bracket].trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Replay one corpus source through every route.
pub fn replay_corpus_source(
    oracle: &Oracle,
    src: &str,
) -> Result<crate::oracle::CaseReport, CaseFailure> {
    oracle.check_source(src, &arrays_in_source(src))
}

/// Digest of a campaign for determinism checks: the report text itself.
pub fn report_fingerprint(report: &DifftestReport) -> u64 {
    fnv1a64(report.to_string().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InProcessDecompiler;

    #[test]
    fn small_campaign_passes_and_is_deterministic() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let cfg = DifftestConfig {
            seed: 0x5EED,
            cases: 12,
            ..DifftestConfig::default()
        };
        let a = run_difftest(&oracle, &cfg);
        let b = run_difftest(&oracle, &cfg);
        assert!(a.all_passed(), "campaign diverged:\n{a}");
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(report_fingerprint(&a), report_fingerprint(&b));
        assert!(
            a.parallelized_loops > 0,
            "expected at least one parallelizable kernel in 12 cases"
        );
    }

    #[test]
    fn validator_cross_check_is_sound_and_deterministic() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let cfg = DifftestConfig {
            seed: 0x5EED,
            cases: 6,
            validate: true,
            ..DifftestConfig::default()
        };
        let a = run_difftest(&oracle, &cfg);
        assert!(a.all_passed(), "campaign diverged:\n{a}");
        let v = a.validation.as_ref().expect("validation was requested");
        assert!(
            a.validator_sound(),
            "validator certified an oracle-refuted case:\n{a}"
        );
        assert!(v.cases_checked > 0, "no case reached the validator:\n{a}");
        assert!(
            v.functions_verified > 0,
            "validator proved nothing on a passing campaign:\n{a}"
        );
        assert!(a.to_string().contains("validate: checked="));
        assert!(a.to_string().contains("incompleteness rate"));
        let b = run_difftest(&oracle, &cfg);
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "validated report must be deterministic"
        );
    }

    #[test]
    fn validation_off_keeps_the_report_free_of_validate_lines() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let cfg = DifftestConfig {
            seed: 0x5EED,
            cases: 2,
            ..DifftestConfig::default()
        };
        let report = run_difftest(&oracle, &cfg);
        assert!(report.validation.is_none());
        assert!(
            report.validator_sound(),
            "no validation means vacuously sound"
        );
        assert!(!report.to_string().contains("validate:"));
    }

    #[test]
    fn decompile_route_failures_are_the_only_unsoundness_witnesses() {
        assert!(failure_indicts_decompilation("stability"));
        assert!(failure_indicts_decompilation("decompile-libomp"));
        assert!(failure_indicts_decompilation("decompile-libgomp"));
        assert!(!failure_indicts_decompilation("o0"));
        assert!(!failure_indicts_decompilation("o2"));
        assert!(!failure_indicts_decompilation("polly"));
        assert!(!failure_indicts_decompilation("vectorize"));
        assert!(!failure_indicts_decompilation("devectorize"));
    }

    #[test]
    fn simd_campaign_passes_and_is_deterministic() {
        let dec = InProcessDecompiler;
        let mut oracle = Oracle::new(&dec);
        oracle.vectorize = true;
        let cfg = DifftestConfig {
            seed: 0x5EED,
            cases: 12,
            ..DifftestConfig::default()
        };
        let a = run_difftest(&oracle, &cfg);
        let b = run_difftest(&oracle, &cfg);
        assert!(a.all_passed(), "SIMD campaign diverged:\n{a}");
        assert_eq!(a.to_string(), b.to_string());
        assert!(
            a.vectorized_loops > 0,
            "expected at least one vectorizable loop in 12 cases:\n{a}"
        );
        assert!(a.to_string().contains("vectorized loops:"));
    }

    #[test]
    fn only_case_runs_exactly_one_case() {
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let cfg = DifftestConfig {
            seed: 7,
            cases: 100,
            only_case: Some(3),
            ..DifftestConfig::default()
        };
        let report = run_difftest(&oracle, &cfg);
        assert_eq!(report.cases_run, 1);
    }

    #[test]
    fn array_scanner_matches_generator_output() {
        let prog = crate::gen::generate(11, 2, &crate::gen::GenConfig::default());
        assert_eq!(arrays_in_source(&prog.render()), prog.array_names());
    }

    #[test]
    fn replay_command_mentions_seed_and_case() {
        let line = replay_command(0x2A, 17);
        assert!(line.contains("SEED=0x2a"));
        assert!(line.contains("CASE=17"));
        assert!(line.contains("--case 17"));
    }
}
