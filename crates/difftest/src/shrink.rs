//! Delta-debugging minimizer for failing cases.
//!
//! Greedy fixpoint loop over four edit families — statement deletion,
//! control-flow flattening (`if` → taken branch), trip-count narrowing,
//! and expression simplification — accepting an edit iff the candidate
//! still fails with the *same* `(route, failure kind)` key. Subscript
//! offsets are never touched, so every candidate inherits the generator's
//! in-bounds guarantee; a candidate that stops compiling simply fails
//! with a different key and is rejected.

use crate::oracle::{CaseFailure, Oracle};
use crate::prog::{Expr, Stmt, TestProgram};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized program (still failing with the original key).
    pub program: TestProgram,
    /// The failure the minimized program produces.
    pub failure: CaseFailure,
    /// Edits accepted.
    pub edits_applied: usize,
    /// Oracle evaluations spent.
    pub oracle_runs: usize,
}

/// Hard cap on oracle evaluations per shrink, so a pathological case
/// cannot stall a CI run.
const MAX_ORACLE_RUNS: usize = 1500;

/// Minimize `prog`, which currently fails with `failure` when checksummed
/// over `arrays`. No edit family adds or removes arrays, so the checksum
/// list stays valid for every candidate.
pub fn shrink(
    oracle: &Oracle,
    prog: &TestProgram,
    arrays: &[String],
    failure: &CaseFailure,
) -> ShrinkResult {
    let key = failure.key();
    let mut best = prog.clone();
    let mut best_failure = failure.clone();
    let mut runs = 0usize;
    let mut edits = 0usize;

    'outer: loop {
        let mut progressed = false;
        for strategy in STRATEGIES {
            // Re-enumerate after every accepted edit: positions shift.
            'pass: loop {
                for cand in strategy(&best) {
                    if runs >= MAX_ORACLE_RUNS {
                        break 'outer;
                    }
                    runs += 1;
                    if let Err(f) = oracle.check_source(&cand.render(), arrays) {
                        if f.key() == key {
                            best = cand;
                            best_failure = f;
                            edits += 1;
                            progressed = true;
                            continue 'pass;
                        }
                    }
                }
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    ShrinkResult {
        program: best,
        failure: best_failure,
        edits_applied: edits,
        oracle_runs: runs,
    }
}

type Strategy = fn(&TestProgram) -> Vec<TestProgram>;

const STRATEGIES: [Strategy; 4] = [
    delete_candidates,
    flatten_candidates,
    narrow_candidates,
    simplify_candidates,
];

// ---- statement traversal ---------------------------------------------

/// Number of statement lists in the program (kernel + nested bodies).
fn body_count(kernel: &[Stmt]) -> usize {
    fn walk(body: &[Stmt], n: &mut usize) {
        *n += 1;
        for s in body {
            match s {
                Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, n),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, n);
                    walk(else_body, n);
                }
                _ => {}
            }
        }
    }
    let mut n = 0;
    walk(kernel, &mut n);
    n
}

/// Apply `f` to the `target`-th statement list, preorder. Returns whether
/// the target was reached.
fn edit_nth_body(
    body: &mut Vec<Stmt>,
    counter: &mut usize,
    target: usize,
    f: &mut dyn FnMut(&mut Vec<Stmt>),
) -> bool {
    if *counter == target {
        *counter += 1;
        f(body);
        return true;
    }
    *counter += 1;
    for s in body.iter_mut() {
        let hit = match s {
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                edit_nth_body(body, counter, target, f)
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                edit_nth_body(then_body, counter, target, f)
                    || edit_nth_body(else_body, counter, target, f)
            }
            _ => false,
        };
        if hit {
            return true;
        }
    }
    false
}

/// Clone `prog` and edit its `target`-th statement list.
fn with_body(prog: &TestProgram, target: usize, mut f: impl FnMut(&mut Vec<Stmt>)) -> TestProgram {
    let mut cand = prog.clone();
    let mut counter = 0;
    edit_nth_body(&mut cand.kernel, &mut counter, target, &mut f);
    cand
}

/// Length of the `target`-th statement list.
fn body_len(prog: &TestProgram, target: usize) -> usize {
    let mut len = 0;
    let _ = with_body(prog, target, |body| len = body.len());
    len
}

// ---- edit families ---------------------------------------------------

/// Every single-statement deletion.
fn delete_candidates(prog: &TestProgram) -> Vec<TestProgram> {
    let mut out = Vec::new();
    for b in 0..body_count(&prog.kernel) {
        for pos in 0..body_len(prog, b) {
            out.push(with_body(prog, b, |body| {
                body.remove(pos);
            }));
        }
    }
    out
}

/// `if` → then-branch, `if` → else-branch.
fn flatten_candidates(prog: &TestProgram) -> Vec<TestProgram> {
    let mut out = Vec::new();
    for b in 0..body_count(&prog.kernel) {
        for pos in 0..body_len(prog, b) {
            for take_else in [false, true] {
                let cand = with_body(prog, b, |body| {
                    if let Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } = &body[pos]
                    {
                        let branch = if take_else { else_body } else { then_body };
                        let replacement = branch.clone();
                        body.splice(pos..=pos, replacement);
                    }
                });
                if cand != *prog {
                    out.push(cand);
                }
            }
        }
    }
    out
}

/// Narrow loop trip counts: single-trip first, then halved.
fn narrow_candidates(prog: &TestProgram) -> Vec<TestProgram> {
    let mut out = Vec::new();
    for b in 0..body_count(&prog.kernel) {
        for pos in 0..body_len(prog, b) {
            for halve in [false, true] {
                let cand = with_body(prog, b, |body| match &mut body[pos] {
                    Stmt::For { lo, hi, .. } if *hi - *lo > 1 => {
                        *hi = if halve {
                            *lo + (*hi - *lo) / 2
                        } else {
                            *lo + 1
                        };
                    }
                    Stmt::While { bound, .. } if *bound > 1 => {
                        *bound = if halve { *bound / 2 } else { 1 };
                    }
                    _ => {}
                });
                if cand != *prog {
                    out.push(cand);
                }
            }
        }
    }
    out
}

// ---- expression traversal --------------------------------------------

/// Apply `f` to every expression node in the program, preorder.
fn visit_exprs(prog: &mut TestProgram, f: &mut dyn FnMut(&mut Expr)) {
    fn walk_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
        f(e);
        match e {
            Expr::Bin { lhs, rhs, .. } => {
                walk_expr(lhs, f);
                walk_expr(rhs, f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    walk_expr(a, f);
                }
            }
            _ => {}
        }
    }
    fn walk_stmt(s: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
        match s {
            Stmt::Store { rhs, .. }
            | Stmt::DeclScalar { init: rhs, .. }
            | Stmt::AssignScalar { rhs, .. } => walk_expr(rhs, f),
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                for s in body {
                    walk_stmt(s, f);
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter_mut().chain(else_body.iter_mut()) {
                    walk_stmt(s, f);
                }
            }
        }
    }
    for h in &mut prog.helpers {
        walk_expr(&mut h.body, f);
    }
    for s in &mut prog.kernel {
        walk_stmt(s, f);
    }
}

/// Number of expression nodes reachable from the program.
fn expr_count(prog: &TestProgram) -> usize {
    let mut n = 0;
    visit_exprs(&mut prog.clone(), &mut |_| n += 1);
    n
}

/// Clone `prog` and rewrite its `target`-th expression with `edit`.
fn with_expr(
    prog: &TestProgram,
    target: usize,
    edit: impl Fn(&Expr) -> Option<Expr>,
) -> TestProgram {
    let mut cand = prog.clone();
    let mut counter = 0usize;
    visit_exprs(&mut cand, &mut |e| {
        if counter == target {
            if let Some(new) = edit(e) {
                *e = new;
            }
        }
        counter += 1;
    });
    cand
}

/// Expression simplifications: drop binary operands, collapse calls and
/// reads, tame constants. Subscripts are left untouched (bounds safety).
fn simplify_candidates(prog: &TestProgram) -> Vec<TestProgram> {
    let mut out = Vec::new();
    for t in 0..expr_count(prog) {
        for choice in 0..3u8 {
            let cand = with_expr(prog, t, |e| match (e, choice) {
                (Expr::Bin { lhs, .. }, 0) => Some((**lhs).clone()),
                (Expr::Bin { rhs, .. }, 1) => Some((**rhs).clone()),
                (Expr::Call { args, .. }, 0) if !args.is_empty() => Some(args[0].clone()),
                (Expr::Call { .. }, 1) => Some(Expr::Const(1.0)),
                (Expr::Read { .. }, 0) => Some(Expr::Const(1.0)),
                (Expr::IntAffine { var, .. }, 0) => Some(Expr::IntVar(var.clone())),
                (Expr::IntVar(_), 0) => Some(Expr::Const(1.0)),
                (Expr::Const(v), 2) if *v != 1.0 => Some(Expr::Const(1.0)),
                _ => None,
            });
            if cand != *prog {
                out.push(cand);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::oracle::InProcessDecompiler;

    #[test]
    fn shrinker_minimizes_while_preserving_failure_key() {
        // Synthesize a reproducible failure by checksumming a global that
        // does not exist: every candidate fails identically, so the
        // shrinker should strip the program close to nothing while the
        // failure key stays fixed.
        let prog = generate(99, 3, &GenConfig::default());
        let dec = InProcessDecompiler;
        let oracle = Oracle::new(&dec);
        let mut names = prog.array_names();
        names.push("GHOST".into());
        let failure = oracle.check_source(&prog.render(), &names).unwrap_err();
        let res = shrink(&oracle, &prog, &names, &failure);
        assert_eq!(res.failure.key(), failure.key());
        assert!(
            res.program.render().len() <= prog.render().len(),
            "shrinking must never grow the program"
        );
        assert!(res.edits_applied > 0, "expected at least one deletion");
    }

    #[test]
    fn candidate_enumeration_is_deterministic() {
        let prog = generate(5, 11, &GenConfig::default());
        let a: Vec<String> = delete_candidates(&prog)
            .iter()
            .map(|p| p.render())
            .collect();
        let b: Vec<String> = delete_candidates(&prog)
            .iter()
            .map(|p| p.render())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn edit_families_only_produce_changed_programs() {
        for case in 0..20 {
            let prog = generate(5, case, &GenConfig::default());
            for cand in narrow_candidates(&prog) {
                assert_ne!(cand, prog);
            }
            for cand in flatten_candidates(&prog) {
                assert_ne!(cand, prog);
            }
        }
    }
}
