//! The generator's structured program representation and its C renderer.
//!
//! Cases are built (and shrunk) over this mini-AST rather than raw text:
//! the shrinker needs to delete statements, narrow loop bounds, and
//! simplify expressions while keeping the program well-typed and every
//! array access provably in bounds. Rendering is the only way a program
//! leaves this module, so a `TestProgram` that was valid stays valid
//! through every mutation the shrinker is allowed to make.

use std::fmt::Write as _;

/// A global array of doubles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Array {
    /// C identifier (`A`, `B`, …).
    pub name: String,
    /// Dimension sizes, innermost last; 1 or 2 dims.
    pub dims: Vec<usize>,
}

/// A pure helper function over doubles: `double f0(double a, double b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Helper {
    /// C identifier.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The single `return` expression.
    pub body: Expr,
}

/// One array subscript, guaranteed in bounds by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Index {
    /// Literal subscript.
    Const(i64),
    /// `var + offset` (offset may be negative or zero).
    Var {
        /// Loop/counter variable.
        var: String,
        /// Constant offset.
        offset: i64,
    },
}

/// Binary operators over doubles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` — the generator only emits this with a nonzero constant rhs.
    Div,
}

impl BinOp {
    fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Expressions evaluating to `double`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating literal.
    Const(f64),
    /// An `int` loop/counter variable used in float arithmetic (the
    /// int-to-double mix the decompiler must reproduce faithfully).
    IntVar(String),
    /// A `double` local (accumulator or helper parameter).
    Var(String),
    /// Array read.
    Read {
        /// Index into [`TestProgram::arrays`].
        array: usize,
        /// One subscript per dimension.
        idx: Vec<Index>,
    },
    /// Integer affine expression `var * scale + bias`, evaluated in `int`
    /// arithmetic before mixing into the surrounding float expression.
    IntAffine {
        /// Loop/counter variable.
        var: String,
        /// Multiplier.
        scale: i64,
        /// Addend.
        bias: i64,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Call of a generated helper.
    Call {
        /// Index into [`TestProgram::helpers`].
        helper: usize,
        /// Arguments, one per parameter.
        args: Vec<Expr>,
    },
}

/// Loop-guard conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// `var % modulus == 0`
    ModEq {
        /// Tested variable.
        var: String,
        /// Modulus (≥ 2).
        modulus: i64,
    },
    /// `var < bound`
    Lt {
        /// Tested variable.
        var: String,
        /// Exclusive bound.
        bound: i64,
    },
}

/// Statements inside `kernel` (and loop bodies).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `ARRAY[idx…] = rhs;` or `ARRAY[idx…] += rhs;`
    Store {
        /// Index into [`TestProgram::arrays`].
        array: usize,
        /// Subscripts.
        idx: Vec<Index>,
        /// Accumulate (`+=`) instead of overwrite.
        accumulate: bool,
        /// Value expression.
        rhs: Expr,
    },
    /// `double name = init;`
    DeclScalar {
        /// Local name.
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// `name = rhs;` or `name += rhs;` on a double local.
    AssignScalar {
        /// Local name.
        name: String,
        /// Accumulate instead of overwrite.
        accumulate: bool,
        /// Value expression.
        rhs: Expr,
    },
    /// Counted `for` loop, upward (`for (v = lo; v < hi; v++)`) or
    /// downward (`for (v = hi - 1; v >= lo; v--)`).
    For {
        /// Induction variable (declared at kernel top).
        var: String,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Iterate downward.
        down: bool,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while (var < bound) { body; var = var + 1; }` over an int counter
    /// declared (and zeroed) at kernel top.
    While {
        /// Counter variable.
        var: String,
        /// Exclusive bound.
        bound: i64,
        /// Body (the increment is rendered implicitly at the end).
        body: Vec<Stmt>,
    },
    /// `if (cond) { then_body } else { else_body }` (else may be empty).
    If {
        /// Guard.
        cond: Cond,
        /// Taken branch.
        then_body: Vec<Stmt>,
        /// Fallthrough branch (may be empty).
        else_body: Vec<Stmt>,
    },
}

/// A complete generated test case.
#[derive(Debug, Clone, PartialEq)]
pub struct TestProgram {
    /// Global arrays (also the oracle's checksum set).
    pub arrays: Vec<Array>,
    /// Helper functions callable from the kernel.
    pub helpers: Vec<Helper>,
    /// `int` variables used as `for` induction variables.
    pub loop_vars: Vec<String>,
    /// `int` counters used by `while` loops (zero-initialized).
    pub while_vars: Vec<String>,
    /// Kernel body.
    pub kernel: Vec<Stmt>,
}

impl TestProgram {
    /// Names of every global array — the checksum set for the oracle.
    pub fn array_names(&self) -> Vec<String> {
        self.arrays.iter().map(|a| a.name.clone()).collect()
    }

    /// Render to C source in the cfront subset.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for a in &self.arrays {
            let dims: String = a.dims.iter().map(|d| format!("[{d}]")).collect();
            let _ = writeln!(out, "double {}{dims};", a.name);
        }
        out.push('\n');
        let used = self.used_helpers();
        for (hi, h) in self.helpers.iter().enumerate() {
            if !used[hi] {
                continue;
            }
            let params: Vec<String> = h.params.iter().map(|p| format!("double {p}")).collect();
            let _ = writeln!(out, "double {}({}) {{", h.name, params.join(", "));
            let _ = writeln!(out, "  return {};", self.expr(&h.body));
            let _ = writeln!(out, "}}\n");
        }
        self.render_init(&mut out);
        out.push('\n');
        let _ = writeln!(out, "void kernel() {{");
        for v in &self.loop_vars {
            let _ = writeln!(out, "  int {v};");
        }
        for v in &self.while_vars {
            let _ = writeln!(out, "  int {v};");
        }
        for v in &self.while_vars {
            let _ = writeln!(out, "  {v} = 0;");
        }
        for s in &self.kernel {
            self.stmt(&mut out, s, 1);
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Which helpers the kernel actually calls (shrinking can orphan
    /// helpers; orphans are not rendered so minimized cases stay small).
    fn used_helpers(&self) -> Vec<bool> {
        let mut used = vec![false; self.helpers.len()];
        fn walk_expr(e: &Expr, used: &mut [bool]) {
            match e {
                Expr::Bin { lhs, rhs, .. } => {
                    walk_expr(lhs, used);
                    walk_expr(rhs, used);
                }
                Expr::Call { helper, args } => {
                    used[*helper] = true;
                    args.iter().for_each(|a| walk_expr(a, used));
                }
                _ => {}
            }
        }
        fn walk_stmt(s: &Stmt, used: &mut [bool]) {
            match s {
                Stmt::Store { rhs, .. }
                | Stmt::DeclScalar { init: rhs, .. }
                | Stmt::AssignScalar { rhs, .. } => walk_expr(rhs, used),
                Stmt::For { body, .. } | Stmt::While { body, .. } => {
                    body.iter().for_each(|s| walk_stmt(s, used))
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    then_body.iter().for_each(|s| walk_stmt(s, used));
                    else_body.iter().for_each(|s| walk_stmt(s, used));
                }
            }
        }
        // Helper bodies may call earlier helpers.
        for s in &self.kernel {
            walk_stmt(s, &mut used);
        }
        for hi in (0..self.helpers.len()).rev() {
            if used[hi] {
                let body = self.helpers[hi].body.clone();
                walk_expr(&body, &mut used);
            }
        }
        used
    }

    /// Deterministic `init()` filling every array with small distinct
    /// values derived from the subscripts.
    fn render_init(&self, out: &mut String) {
        let _ = writeln!(out, "void init() {{");
        let max_rank = self.arrays.iter().map(|a| a.dims.len()).max().unwrap_or(0);
        for d in 0..max_rank {
            let _ = writeln!(out, "  int i{d};");
        }
        for (salt, a) in self.arrays.iter().enumerate() {
            let mut indent = String::from("  ");
            for (d, size) in a.dims.iter().enumerate() {
                let _ = writeln!(out, "{indent}for (i{d} = 0; i{d} < {size}; i{d}++) {{");
                indent.push_str("  ");
            }
            let subs: String = (0..a.dims.len()).map(|d| format!("[i{d}]")).collect();
            let expr = match a.dims.len() {
                1 => format!("(i0 * 7 + {salt}) % 13 * 0.25 + 0.5", salt = salt + 1),
                _ => format!(
                    "(i0 * 5 + i1 * 3 + {salt}) % 11 * 0.25 + 0.5",
                    salt = salt + 1
                ),
            };
            let _ = writeln!(out, "{indent}{}{subs} = {expr};", a.name);
            for d in (0..a.dims.len()).rev() {
                indent.truncate(indent.len() - 2);
                let _ = writeln!(out, "{indent}}}");
                let _ = d;
            }
        }
        let _ = writeln!(out, "}}");
    }

    fn index(&self, ix: &Index) -> String {
        match ix {
            Index::Const(c) => format!("{c}"),
            Index::Var { var, offset } => match offset.cmp(&0) {
                std::cmp::Ordering::Equal => var.clone(),
                std::cmp::Ordering::Greater => format!("{var} + {offset}"),
                std::cmp::Ordering::Less => format!("{var} - {}", -offset),
            },
        }
    }

    fn lvalue(&self, array: usize, idx: &[Index]) -> String {
        let subs: String = idx
            .iter()
            .map(|ix| format!("[{}]", self.index(ix)))
            .collect();
        format!("{}{subs}", self.arrays[array].name)
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Const(v) => format!("{v:?}"),
            Expr::IntVar(v) | Expr::Var(v) => v.clone(),
            Expr::Read { array, idx } => self.lvalue(*array, idx),
            Expr::IntAffine { var, scale, bias } => {
                let core = if *scale == 1 {
                    var.clone()
                } else {
                    format!("{var} * {scale}")
                };
                match bias.cmp(&0) {
                    std::cmp::Ordering::Equal => format!("({core})"),
                    std::cmp::Ordering::Greater => format!("({core} + {bias})"),
                    std::cmp::Ordering::Less => format!("({core} - {})", -bias),
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                format!("({} {} {})", self.expr(lhs), op.symbol(), self.expr(rhs))
            }
            Expr::Call { helper, args } => {
                let rendered: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                format!("{}({})", self.helpers[*helper].name, rendered.join(", "))
            }
        }
    }

    fn cond(&self, c: &Cond) -> String {
        match c {
            Cond::ModEq { var, modulus } => format!("{var} % {modulus} == 0"),
            Cond::Lt { var, bound } => format!("{var} < {bound}"),
        }
    }

    fn stmt(&self, out: &mut String, s: &Stmt, depth: usize) {
        let pad = "  ".repeat(depth);
        match s {
            Stmt::Store {
                array,
                idx,
                accumulate,
                rhs,
            } => {
                let op = if *accumulate { "+=" } else { "=" };
                let _ = writeln!(
                    out,
                    "{pad}{} {op} {};",
                    self.lvalue(*array, idx),
                    self.expr(rhs)
                );
            }
            Stmt::DeclScalar { name, init } => {
                let _ = writeln!(out, "{pad}double {name} = {};", self.expr(init));
            }
            Stmt::AssignScalar {
                name,
                accumulate,
                rhs,
            } => {
                let op = if *accumulate { "+=" } else { "=" };
                let _ = writeln!(out, "{pad}{name} {op} {};", self.expr(rhs));
            }
            Stmt::For {
                var,
                lo,
                hi,
                down,
                body,
            } => {
                if *down {
                    let _ = writeln!(
                        out,
                        "{pad}for ({var} = {}; {var} >= {lo}; {var}--) {{",
                        hi - 1
                    );
                } else {
                    let _ = writeln!(out, "{pad}for ({var} = {lo}; {var} < {hi}; {var}++) {{");
                }
                for b in body {
                    self.stmt(out, b, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::While { var, bound, body } => {
                let _ = writeln!(out, "{pad}while ({var} < {bound}) {{");
                for b in body {
                    self.stmt(out, b, depth + 1);
                }
                let _ = writeln!(out, "{pad}  {var} = {var} + 1;");
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "{pad}if ({}) {{", self.cond(cond));
                for b in then_body {
                    self.stmt(out, b, depth + 1);
                }
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    for b in else_body {
                        self.stmt(out, b, depth + 1);
                    }
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TestProgram {
        TestProgram {
            arrays: vec![Array {
                name: "A".into(),
                dims: vec![8],
            }],
            helpers: vec![Helper {
                name: "f0".into(),
                params: vec!["a".into()],
                body: Expr::Bin {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::Var("a".into())),
                    rhs: Box::new(Expr::Const(1.5)),
                },
            }],
            loop_vars: vec!["i".into()],
            while_vars: vec![],
            kernel: vec![Stmt::For {
                var: "i".into(),
                lo: 0,
                hi: 8,
                down: false,
                body: vec![Stmt::Store {
                    array: 0,
                    idx: vec![Index::Var {
                        var: "i".into(),
                        offset: 0,
                    }],
                    accumulate: false,
                    rhs: Expr::Call {
                        helper: 0,
                        args: vec![Expr::Read {
                            array: 0,
                            idx: vec![Index::Var {
                                var: "i".into(),
                                offset: 0,
                            }],
                        }],
                    },
                }],
            }],
        }
    }

    #[test]
    fn renders_parseable_c() {
        let src = tiny().render();
        assert!(src.contains("double A[8];"), "{src}");
        assert!(src.contains("void init()"), "{src}");
        assert!(src.contains("void kernel()"), "{src}");
        splendid_cfront::parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    }

    #[test]
    fn orphaned_helpers_are_not_rendered() {
        let mut p = tiny();
        p.kernel = vec![Stmt::Store {
            array: 0,
            idx: vec![Index::Const(0)],
            accumulate: false,
            rhs: Expr::Const(2.0),
        }];
        let src = p.render();
        assert!(!src.contains("f0"), "{src}");
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(tiny().render(), tiny().render());
    }
}
