//! Seeded program generator.
//!
//! Emits well-typed programs in the cfront C subset that cover the
//! constructs the decompiler must undo: nested and downward (rotated
//! after `-O2`) counted loops, `while` counters, guarded stores,
//! accumulator reductions (phi-heavy control flow after mem2reg), GEP
//! chains over 2-D arrays, int/float mixed arithmetic, helper-function
//! calls, parallelizable affine kernels, and loops with genuine
//! loop-carried dependences the parallelizer must refuse.
//!
//! Every array access is in bounds *by construction*: loop ranges are
//! drawn inside the smallest array dimension, and subscript offsets are
//! clamped to the slack between the loop range and the dimension being
//! indexed.
//!
//! Values stay finite *by construction* too. Division only ever has a
//! nonzero constant divisor, and every expression carries a coefficient
//! budget: the sum of coefficients over array/scalar reads never exceeds
//! the budget (reads are damped by a small constant when the budget runs
//! low, multiplication always has a constant operand, and accumulating
//! stores get value-free right-hand sides). A store executed T times can
//! therefore grow a value at most linearly in T, never geometrically, so
//! no route can reach Inf — and without Inf there is no NaN, keeping
//! checksums exactly comparable across routes.

use crate::prog::{Array, BinOp, Cond, Expr, Helper, Index, Stmt, TestProgram};
use crate::rng::Rng;

/// Floating constants the generator draws from (all exactly
/// representable; divisors nonzero).
const FLOATS: &[f64] = &[0.25, 0.5, 0.75, 1.5, 2.0, 2.5, 3.0];

/// Damping factors (< 1): used to scale reads down when the coefficient
/// budget is tight, and as safe multipliers for self-referencing values.
const DAMPS: &[f64] = &[0.25, 0.5, 0.75];

/// Generator tuning knobs (fixed defaults keep CI-size cases small).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum loop-nest depth.
    pub max_depth: usize,
    /// Maximum top-level constructs in `kernel`.
    pub max_top_items: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_depth: 3,
            max_top_items: 3,
        }
    }
}

struct Gen<'r> {
    rng: &'r mut Rng,
    cfg: GenConfig,
    arrays: Vec<Array>,
    helpers: Vec<Helper>,
    /// Coefficient gain of each helper: an upper bound on how much a call
    /// can amplify its arguments (used to split the caller's budget).
    helper_gains: Vec<f64>,
    loop_vars: Vec<String>,
    while_vars: Vec<String>,
    next_scalar: usize,
    /// Smallest dimension across all arrays: the loop-bound space.
    min_dim: usize,
}

/// Active loop variables with their (inclusive lo, exclusive hi) ranges.
type Active = Vec<(String, i64, i64)>;

/// Generate the deterministic test program for `(seed, case index)`.
pub fn generate(seed: u64, case: u64, cfg: &GenConfig) -> TestProgram {
    let mut rng = Rng::for_case(seed, case);
    let mut g = Gen::new(&mut rng, cfg.clone());
    g.program()
}

impl<'r> Gen<'r> {
    fn new(rng: &'r mut Rng, cfg: GenConfig) -> Gen<'r> {
        Gen {
            rng,
            cfg,
            arrays: Vec::new(),
            helpers: Vec::new(),
            helper_gains: Vec::new(),
            loop_vars: Vec::new(),
            while_vars: Vec::new(),
            next_scalar: 0,
            min_dim: 0,
        }
    }

    fn program(&mut self) -> TestProgram {
        // Arrays: 1-3, doubles, 1-D or (sometimes) 2-D.
        let count = self.rng.range_i64(1, 3) as usize;
        for n in 0..count {
            let name = ["A", "B", "C"][n].to_string();
            let dims = if self.rng.chance(1, 3) {
                let d0 = self.rng.range_i64(4, 8) as usize;
                let d1 = self.rng.range_i64(4, 8) as usize;
                vec![d0, d1]
            } else {
                vec![self.rng.range_i64(6, 14) as usize]
            };
            self.arrays.push(Array { name, dims });
        }
        self.min_dim = self
            .arrays
            .iter()
            .flat_map(|a| a.dims.iter().copied())
            .min()
            .unwrap_or(4);

        // Helpers: 0-2 pure functions over doubles.
        let helpers = self.rng.range_i64(0, 2) as usize;
        for n in 0..helpers {
            let h = self.helper(n);
            self.helpers.push(h);
        }

        // Kernel: 1..=max_top_items constructs.
        let items = self.rng.range_i64(1, self.cfg.max_top_items as i64) as usize;
        let mut kernel = Vec::new();
        for _ in 0..items {
            let mut active = Active::new();
            kernel.extend(self.top_item(&mut active));
        }
        TestProgram {
            arrays: self.arrays.clone(),
            helpers: self.helpers.clone(),
            loop_vars: self.loop_vars.clone(),
            while_vars: self.while_vars.clone(),
            kernel,
        }
    }

    fn helper(&mut self, n: usize) -> Helper {
        let params: Vec<String> = (0..self.rng.range_i64(1, 2))
            .map(|p| format!("p{p}"))
            .collect();
        // Body: affine mix of the params and a constant; the gain is the
        // sum of the parameter coefficients.
        let scale = *self.rng.pick(FLOATS);
        let mut gain = scale;
        let mut body = Expr::Bin {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Var(params[0].clone())),
            rhs: Box::new(Expr::Const(scale)),
        };
        for p in params.iter().skip(1) {
            gain += 1.0;
            body = Expr::Bin {
                op: *self.rng.pick(&[BinOp::Add, BinOp::Sub]),
                lhs: Box::new(body),
                rhs: Box::new(Expr::Var(p.clone())),
            };
        }
        if self.rng.chance(1, 2) {
            body = Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(body),
                rhs: Box::new(Expr::Const(*self.rng.pick(FLOATS))),
            };
        }
        self.helper_gains.push(gain.max(1.0));
        Helper {
            name: format!("f{n}"),
            params,
            body,
        }
    }

    fn fresh_loop_var(&mut self) -> String {
        let name = ["i", "j", "k", "m", "n2", "q"][self.loop_vars.len() % 6].to_string();
        let name = if self.loop_vars.contains(&name) {
            format!("{name}{}", self.loop_vars.len())
        } else {
            name
        };
        self.loop_vars.push(name.clone());
        name
    }

    fn fresh_while_var(&mut self) -> String {
        let name = format!("w{}", self.while_vars.len());
        self.while_vars.push(name.clone());
        name
    }

    fn fresh_scalar(&mut self) -> String {
        let name = format!("s{}", self.next_scalar);
        self.next_scalar += 1;
        name
    }

    /// One top-level construct.
    fn top_item(&mut self, active: &mut Active) -> Vec<Stmt> {
        match self.rng.below(10) {
            // Affine loop nest (the parallelizable workhorse).
            0..=3 => vec![self.loop_nest(active, 1, false)],
            // Downward loop (rotated + reversed control flow).
            4 => vec![self.loop_nest(active, 1, true)],
            // Accumulator reduction into a scalar, then a store.
            5..=6 => self.reduction(active),
            // While-counter loop.
            7 => vec![self.while_loop(active)],
            // Loop-carried dependence: must stay sequential.
            8 => vec![self.prefix_dependence()],
            // Straight-line stores at constant subscripts.
            _ => self.plain_stores(active),
        }
    }

    /// A (possibly nested) counted loop over in-bounds ranges.
    fn loop_nest(&mut self, active: &mut Active, depth: usize, down: bool) -> Stmt {
        let var = self.fresh_loop_var();
        let lo = if self.rng.chance(1, 4) { 1 } else { 0 };
        let hi = self.rng.range_i64(lo + 2, self.min_dim as i64);
        active.push((var.clone(), lo, hi));
        let mut body = Vec::new();
        let nest_deeper = depth < self.cfg.max_depth && self.rng.chance(2, 3);
        if nest_deeper {
            body.push(self.loop_nest(active, depth + 1, false));
            // Sometimes a statement after the inner loop (imperfect nest).
            if self.rng.chance(1, 3) {
                body.push(self.store(active));
            }
        } else {
            let stmts = self.rng.range_i64(1, 3);
            for _ in 0..stmts {
                body.push(self.body_stmt(active));
            }
        }
        active.pop();
        Stmt::For {
            var,
            lo,
            hi,
            down,
            body,
        }
    }

    /// One statement inside a loop body: a store, a guarded store, or a
    /// local temporary feeding a store.
    fn body_stmt(&mut self, active: &mut Active) -> Stmt {
        match self.rng.below(6) {
            0 => self.guarded(active),
            1 => {
                // A block-scoped temporary feeding a store, wrapped in an
                // always-true guard so the declaration's scope is a block.
                let name = self.fresh_scalar();
                let init = self.expr(active, 2, 1.0);
                let array = self.pick_array();
                let idx = self.in_bounds_idx(array, active);
                // `s + c` or `s * damp`: either keeps the coefficient of
                // the temporary at most 1, so the store cannot compound.
                let rhs = if self.rng.chance(1, 2) {
                    Expr::Bin {
                        op: BinOp::Add,
                        lhs: Box::new(Expr::Var(name.clone())),
                        rhs: Box::new(Expr::Const(*self.rng.pick(FLOATS))),
                    }
                } else {
                    Expr::Bin {
                        op: BinOp::Mul,
                        lhs: Box::new(Expr::Var(name.clone())),
                        rhs: Box::new(Expr::Const(*self.rng.pick(DAMPS))),
                    }
                };
                Stmt::If {
                    cond: Cond::Lt {
                        var: active
                            .last()
                            .map(|(v, ..)| v.clone())
                            .unwrap_or_else(|| "0".into()),
                        bound: self.min_dim as i64 + 1,
                    },
                    then_body: vec![
                        Stmt::DeclScalar { name, init },
                        Stmt::Store {
                            array,
                            idx,
                            accumulate: false,
                            rhs,
                        },
                    ],
                    else_body: Vec::new(),
                }
            }
            _ => self.store(active),
        }
    }

    /// `if (guard) { store } [else { store }]` on the innermost variable.
    fn guarded(&mut self, active: &mut Active) -> Stmt {
        let var = active
            .last()
            .map(|(v, ..)| v.clone())
            .unwrap_or_else(|| "0".into());
        let cond = if self.rng.chance(1, 2) {
            Cond::ModEq {
                var,
                modulus: self.rng.range_i64(2, 4),
            }
        } else {
            let hi = active.last().map(|&(_, _, h)| h).unwrap_or(2);
            Cond::Lt {
                var,
                bound: self.rng.range_i64(1, hi),
            }
        };
        let then_body = vec![self.store(active)];
        let else_body = if self.rng.chance(1, 2) {
            vec![self.store(active)]
        } else {
            Vec::new()
        };
        Stmt::If {
            cond,
            then_body,
            else_body,
        }
    }

    /// Scalar reduction: declare, accumulate over a loop, store the total.
    fn reduction(&mut self, active: &mut Active) -> Vec<Stmt> {
        let name = self.fresh_scalar();
        let decl = Stmt::DeclScalar {
            name: name.clone(),
            init: Expr::Const(0.0),
        };
        let var = self.fresh_loop_var();
        let hi = self.rng.range_i64(2, self.min_dim as i64);
        active.push((var.clone(), 0, hi));
        // The accumulation body must not read the accumulator itself
        // (that would compound geometrically), so `name` is deliberately
        // not visible to the expression generator.
        let body = vec![Stmt::AssignScalar {
            name: name.clone(),
            accumulate: true,
            rhs: self.expr(active, 2, 1.0),
        }];
        active.pop();
        let loop_stmt = Stmt::For {
            var,
            lo: 0,
            hi,
            down: false,
            body,
        };
        let array = self.pick_array();
        let sink = Stmt::Store {
            array,
            idx: self.const_idx(array),
            accumulate: self.rng.chance(1, 2),
            rhs: Expr::Var(name),
        };
        vec![decl, loop_stmt, sink]
    }

    /// `w = 0; while (w < bound) { stores; w++ }`.
    fn while_loop(&mut self, active: &mut Active) -> Stmt {
        let var = self.fresh_while_var();
        let bound = self.rng.range_i64(2, self.min_dim as i64);
        active.push((var.clone(), 0, bound));
        let stmts = self.rng.range_i64(1, 2);
        let body: Vec<Stmt> = (0..stmts).map(|_| self.store(active)).collect();
        active.pop();
        Stmt::While { var, bound, body }
    }

    /// `for (v = 1; v < hi; v++) A[v] = A[v-1] op e;` — a true loop-carried
    /// dependence the parallelizer must leave sequential. On a 2-D array
    /// the recurrence runs along the last dimension of a fixed row.
    fn prefix_dependence(&mut self) -> Stmt {
        let array = self.pick_1d_array();
        let dims = self.arrays[array].dims.clone();
        let var = self.fresh_loop_var();
        let last = *dims.last().expect("arrays have at least one dim");
        let hi = self.rng.range_i64(3, last as i64);
        let lead: Vec<Index> = dims[..dims.len() - 1]
            .iter()
            .map(|&d| Index::Const(self.rng.range_i64(0, d as i64 - 1)))
            .collect();
        let mut store_idx = lead.clone();
        store_idx.push(Index::Var {
            var: var.clone(),
            offset: 0,
        });
        let mut read_idx = lead;
        read_idx.push(Index::Var {
            var: var.clone(),
            offset: -1,
        });
        let op = *self.rng.pick(&[BinOp::Add, BinOp::Mul]);
        let body = vec![Stmt::Store {
            array,
            idx: store_idx,
            accumulate: false,
            rhs: Expr::Bin {
                op,
                lhs: Box::new(Expr::Read {
                    array,
                    idx: read_idx,
                }),
                rhs: Box::new(Expr::Const(*self.rng.pick(&[0.5, 0.25, 1.5]))),
            },
        }];
        Stmt::For {
            var,
            lo: 1,
            hi,
            down: false,
            body,
        }
    }

    /// A couple of stores at constant subscripts.
    fn plain_stores(&mut self, active: &mut Active) -> Vec<Stmt> {
        let n = self.rng.range_i64(1, 2);
        (0..n)
            .map(|_| {
                let array = self.pick_array();
                Stmt::Store {
                    array,
                    idx: self.const_idx(array),
                    accumulate: false,
                    rhs: self.expr(active, 2, 1.0),
                }
            })
            .collect()
    }

    /// A store with in-bounds subscripts derived from the active loops.
    /// Accumulating stores get a value-free right-hand side: `+=` adds an
    /// implicit coefficient of 1 on the destination, so any read in the
    /// rhs would push the total past 1 and compound across trips.
    fn store(&mut self, active: &mut Active) -> Stmt {
        let array = self.pick_array();
        let idx = self.in_bounds_idx(array, active);
        let accumulate = self.rng.chance(1, 4);
        let weight = if accumulate { 0.0 } else { 1.0 };
        Stmt::Store {
            array,
            idx,
            accumulate,
            rhs: self.expr(active, 3, weight),
        }
    }

    fn pick_array(&mut self) -> usize {
        self.rng.below(self.arrays.len() as u64) as usize
    }

    /// Prefer a 1-D array; when every array is 2-D the caller must pin the
    /// leading subscripts itself.
    fn pick_1d_array(&mut self) -> usize {
        let one_d: Vec<usize> = (0..self.arrays.len())
            .filter(|&a| self.arrays[a].dims.len() == 1)
            .collect();
        if one_d.is_empty() {
            0
        } else {
            *self.rng.pick(&one_d)
        }
    }

    /// Constant, in-bounds subscripts for `array`.
    fn const_idx(&mut self, array: usize) -> Vec<Index> {
        let dims = self.arrays[array].dims.clone();
        dims.iter()
            .map(|&d| Index::Const(self.rng.range_i64(0, d as i64 - 1)))
            .collect()
    }

    /// In-bounds subscripts for `array` using active loop variables where
    /// possible (affine `var + offset` forms), constants otherwise.
    fn in_bounds_idx(&mut self, array: usize, active: &Active) -> Vec<Index> {
        let dims = self.arrays[array].dims.clone();
        let mut used: Vec<usize> = Vec::new();
        dims.iter()
            .enumerate()
            .map(|(pos, &d)| {
                // Prefer a distinct loop var per dimension; innermost last.
                let candidate = active
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(ai, _)| !used.contains(ai));
                match candidate {
                    Some((ai, (var, lo, hi))) if *hi <= d as i64 => {
                        used.push(ai);
                        let min_off = -*lo;
                        let max_off = d as i64 - *hi;
                        let off = self
                            .rng
                            .range_i64(min_off.max(-2), max_off.min(2).max(min_off.max(-2)));
                        let _ = pos;
                        Index::Var {
                            var: var.clone(),
                            offset: off,
                        }
                    }
                    _ => Index::Const(self.rng.range_i64(0, d as i64 - 1)),
                }
            })
            .collect()
    }

    /// A double-valued expression; `depth` bounds recursion, `weight` is
    /// the remaining coefficient budget over array reads. Every returned
    /// expression's value is bounded by `weight * V + K` where `V` is the
    /// current maximum array magnitude and `K` a small constant, so a
    /// caller that keeps `weight <= 1` cannot build a compounding store.
    fn expr(&mut self, active: &Active, depth: usize, weight: f64) -> Expr {
        if depth == 0 {
            return self.leaf(active, weight);
        }
        match self.rng.below(8) {
            0..=2 => {
                let op = match self.rng.below(8) {
                    0..=3 => BinOp::Add,
                    4..=5 => BinOp::Mul,
                    6 => BinOp::Sub,
                    _ => BinOp::Div,
                };
                match op {
                    // Addition splits the budget across the operands.
                    BinOp::Add | BinOp::Sub => Expr::Bin {
                        op,
                        lhs: Box::new(self.expr(active, depth - 1, weight * 0.5)),
                        rhs: Box::new(self.expr(active, depth - 1, weight * 0.5)),
                    },
                    // Multiplication always has a constant operand; the
                    // value operand's budget scales inversely with it.
                    BinOp::Mul => {
                        let c = *self.rng.pick(FLOATS);
                        Expr::Bin {
                            op,
                            lhs: Box::new(self.expr(active, depth - 1, (weight / c).min(1.0))),
                            rhs: Box::new(Expr::Const(c)),
                        }
                    }
                    // Nonzero constant divisor only; dividing buys budget.
                    BinOp::Div => {
                        let c = *self.rng.pick(&[2.0, 4.0, 8.0, 1.5]);
                        Expr::Bin {
                            op,
                            lhs: Box::new(self.expr(active, depth - 1, (weight * c).min(1.0))),
                            rhs: Box::new(Expr::Const(c)),
                        }
                    }
                }
            }
            3 if !self.helpers.is_empty() => {
                let helper = self.rng.below(self.helpers.len() as u64) as usize;
                let arity = self.helpers[helper].params.len();
                let arg_weight = (weight / self.helper_gains[helper]).min(1.0);
                let args = (0..arity)
                    .map(|_| self.expr(active, depth - 1, arg_weight))
                    .collect();
                Expr::Call { helper, args }
            }
            _ => self.leaf(active, weight),
        }
    }

    fn leaf(&mut self, active: &Active, weight: f64) -> Expr {
        match self.rng.below(6) {
            0 => Expr::Const(*self.rng.pick(FLOATS)),
            1 if !active.is_empty() => {
                let (var, ..) = self.rng.pick(active).clone();
                Expr::IntVar(var)
            }
            2 if !active.is_empty() => {
                let (var, ..) = self.rng.pick(active).clone();
                Expr::IntAffine {
                    var,
                    scale: self.rng.range_i64(1, 3),
                    bias: self.rng.range_i64(-2, 2),
                }
            }
            _ => {
                // A read costs coefficient 1; damp it when the budget is
                // tighter, and degrade to a constant when even the
                // smallest damping factor does not fit.
                let damp = DAMPS.iter().rev().find(|&&d| d <= weight).copied();
                if weight >= 1.0 {
                    let array = self.pick_array();
                    let idx = self.in_bounds_idx(array, active);
                    Expr::Read { array, idx }
                } else if let Some(d) = damp {
                    let array = self.pick_array();
                    let idx = self.in_bounds_idx(array, active);
                    Expr::Bin {
                        op: BinOp::Mul,
                        lhs: Box::new(Expr::Read { array, idx }),
                        rhs: Box::new(Expr::Const(d)),
                    }
                } else {
                    Expr::Const(*self.rng.pick(FLOATS))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for case in 0..20 {
            let a = generate(0xDEAD_BEEF, case, &cfg);
            let b = generate(0xDEAD_BEEF, case, &cfg);
            assert_eq!(a, b, "case {case} not deterministic");
            assert_eq!(a.render(), b.render());
        }
    }

    #[test]
    fn different_cases_differ() {
        let cfg = GenConfig::default();
        let a = generate(1, 0, &cfg).render();
        let b = generate(1, 1, &cfg).render();
        assert_ne!(a, b);
    }

    #[test]
    fn every_generated_program_parses() {
        let cfg = GenConfig::default();
        for case in 0..200 {
            let p = generate(0x5EED, case, &cfg);
            let src = p.render();
            splendid_cfront::parse_program(&src)
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        }
    }

    #[test]
    fn grammar_reaches_all_constructs() {
        let cfg = GenConfig::default();
        let mut saw = [false; 6]; // nest≥2, down, while, if, call, 2-D
        for case in 0..300 {
            let src = generate(7, case, &cfg).render();
            let nested = src
                .lines()
                .any(|l| l.starts_with("      for") || l.starts_with("      while"));
            saw[0] |= nested;
            saw[1] |= src.contains("--) {");
            saw[2] |= src.contains("while (");
            saw[3] |= src.contains("if (");
            saw[4] |= src.contains("f0(");
            saw[5] |= src.contains("][");
            if saw.iter().all(|&s| s) {
                return;
            }
        }
        panic!("constructs not all reachable in 300 cases: {saw:?}");
    }
}
