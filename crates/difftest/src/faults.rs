//! Seeded fault-injection campaign: prove that every injected pipeline
//! fault yields degraded-but-*correct* output.
//!
//! For each fault index the campaign derives — deterministically from the
//! campaign seed — a target case (from a small pre-verified pool), an
//! injection site, an invocation ordinal, and a fault kind. It then
//! decompiles the case's parallel IR exactly once with that single-fault
//! [`FaultPlan`] armed and checks, in order:
//!
//! 1. **no panic** escaped the pipeline (the ladder's containment held);
//! 2. the fault actually **fired** (no vacuous passes);
//! 3. a per-function fault **degraded** at least one function (and the
//!    emitted C carries the degradation annotation), while a transient
//!    module-wide fault was absorbed by **prepare retry** with no
//!    degradation — mirroring the serve layer's backoff policy;
//! 4. the degraded C **recompiles and runs to the same checksum** as the
//!    unfaulted `-O0` reference.
//!
//! Unlike the six-route oracle, the campaign decompiles each case exactly
//! once per fault: the oracle's stability route decompiles twice, which
//! would break the Nth-invocation determinism of the injection counters.

use crate::gen::{generate, GenConfig};
use crate::rng::fnv1a64;
use splendid_cfront::OmpRuntime;
use splendid_core::{
    assemble_output, decompile_function, prepare_module, FaultKind, FaultPlan, FaultRng,
    SplendidOptions, Stage, StageTimings,
};
use splendid_interp::{CompilerProfile, MachineConfig};
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_polybench::Harness;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Campaign configuration (mirrors `splendid difftest --faults`).
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// Campaign seed; fault `i` derives everything from `(seed, i)`.
    pub seed: u64,
    /// Number of faults to inject.
    pub faults: u64,
    /// Size of the case pool faults cycle over (kept small: each pool
    /// case is generated, compiled, and reference-run once up front).
    pub cases: u64,
}

impl Default for FaultCampaignConfig {
    fn default() -> FaultCampaignConfig {
        FaultCampaignConfig {
            seed: 0,
            faults: 200,
            cases: 8,
        }
    }
}

/// One fault that violated the containment contract.
#[derive(Debug, Clone)]
pub struct FaultFailure {
    /// Fault index within the campaign.
    pub index: u64,
    /// Pool case the fault was injected into.
    pub case: u64,
    /// Injection site label.
    pub site: &'static str,
    /// Fault kind label.
    pub kind: &'static str,
    /// Invocation ordinal the fault was armed for.
    pub nth: u64,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for FaultFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault={} case={} site={} kind={} nth={}: {}",
            self.index, self.case, self.site, self.kind, self.nth, self.detail
        )
    }
}

/// Campaign result; `Display` is byte-deterministic for a given config.
#[derive(Debug, Clone)]
pub struct FaultCampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Faults injected.
    pub faults_run: u64,
    /// Faults that actually fired (should equal `faults_run`).
    pub fired: u64,
    /// Functions emitted below the `Natural` tier, summed.
    pub degraded_functions: u64,
    /// Module preparations retried after a transient fault.
    pub prepare_retries: u64,
    /// Panics that escaped the pipeline (must be zero).
    pub panics: u64,
    /// Contract violations.
    pub failed: Vec<FaultFailure>,
}

impl FaultCampaignReport {
    /// True iff every fault was contained, fired, and checksum-verified.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty() && self.panics == 0
    }
}

impl std::fmt::Display for FaultCampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault campaign: seed={:#x} faults={} fired={} degraded={} prepare-retries={} panics={} failed={}",
            self.seed,
            self.faults_run,
            self.fired,
            self.degraded_functions,
            self.prepare_retries,
            self.panics,
            self.failed.len()
        )?;
        for fc in &self.failed {
            writeln!(f, "FAIL {fc}")?;
        }
        Ok(())
    }
}

/// A pre-verified pool case: source, parallel IR, reference checksum.
struct PoolCase {
    index: u64,
    src: String,
    arrays: Vec<String>,
    module: splendid_ir::Module,
    reference: f64,
}

fn build_pool(cfg: &FaultCampaignConfig, failures: &mut Vec<FaultFailure>) -> Vec<PoolCase> {
    let gen_cfg = GenConfig::default();
    let mut pool = Vec::new();
    for case in 0..cfg.cases.max(1) {
        let prog = generate(cfg.seed, case, &gen_cfg);
        let arrays = prog.array_names();
        let src = prog.render();
        let built = (|| -> Result<PoolCase, String> {
            let names: Vec<&str> = arrays.iter().map(|s| s.as_str()).collect();
            let o0 = Harness::compile_o0(&src, OmpRuntime::LibOmp).map_err(|e| e.to_string())?;
            let (reference, _) =
                Harness::run(&o0, MachineConfig::default(), &names).map_err(|e| e.to_string())?;
            if !reference.is_finite() {
                return Err(format!("non-finite reference checksum {reference}"));
            }
            let mut module =
                Harness::compile(&src, OmpRuntime::LibOmp).map_err(|e| e.to_string())?;
            let opts = ParallelizeOptions {
                version_aliasing: true,
                min_work: 0,
                only_functions: vec!["kernel".into()],
            };
            parallelize_module(&mut module, &opts);
            Ok(PoolCase {
                index: case,
                src,
                arrays,
                module,
                reference,
            })
        })();
        match built {
            Ok(pc) => pool.push(pc),
            Err(detail) => failures.push(FaultFailure {
                index: u64::MAX,
                case,
                site: "pool",
                kind: "build",
                nth: 0,
                detail,
            }),
        }
    }
    pool
}

/// Decompile with the serve layer's transient-retry policy: a transient
/// preparation error gets up to two more attempts (the injection counter
/// advances across attempts, so a single transient fault is absorbed).
fn decompile_with_retry(
    module: &splendid_ir::Module,
    opts: &SplendidOptions,
) -> Result<(String, StageTimings, u64), String> {
    let mut retries = 0u64;
    loop {
        let mut timings = StageTimings::default();
        match prepare_module(module, opts, &mut timings) {
            Ok(prepared) => {
                let functions = prepared
                    .module
                    .func_ids()
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|fid| decompile_function(&prepared, fid, opts, &mut timings))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| e.to_string())?;
                let output = assemble_output(&prepared, functions, &mut timings);
                return Ok((output.source, timings, retries));
            }
            Err(e) if e.transient && retries < 2 => retries += 1,
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Run a fault campaign. Deterministic: two runs of the same config
/// produce byte-identical reports.
pub fn run_fault_campaign(cfg: &FaultCampaignConfig) -> FaultCampaignReport {
    let mut failed = Vec::new();
    let pool = build_pool(cfg, &mut failed);
    let mut fired_total = 0u64;
    let mut degraded_total = 0u64;
    let mut retries_total = 0u64;
    let mut panics = 0u64;

    for index in 0..cfg.faults {
        let Some(case) = pool.get((index % pool.len().max(1) as u64) as usize) else {
            break; // pool construction failed entirely; already reported
        };
        let mut rng = FaultRng::new(fnv1a64(format!("fault:{:#x}:{index}", cfg.seed).as_bytes()));
        // Module-wide detransformation cannot degrade per function, so it
        // only receives transient kinds (absorbed by retry); per-function
        // sites get the full kind mix.
        let (site, nth, kind) = match rng.below(4) {
            0 => (Stage::Detransform, 1, FaultKind::Timeout { millis: 1 }),
            1 => (Stage::Naming, 1 + rng.below(2), pick_kind(&mut rng)),
            2 => (Stage::Structure, 1 + rng.below(2), pick_kind(&mut rng)),
            _ => (Stage::Pragma, 1 + rng.below(2), pick_kind(&mut rng)),
        };
        let plan = Arc::new(FaultPlan::single(site, nth, kind));
        let opts = SplendidOptions {
            faults: Some(Arc::clone(&plan)),
            ..SplendidOptions::default()
        };
        let fail = |detail: String| FaultFailure {
            index,
            case: case.index,
            site: site.label(),
            kind: kind.label(),
            nth,
            detail,
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            decompile_with_retry(&case.module, &opts)
        }));
        let (source, timings, retries) = match outcome {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => {
                failed.push(fail(format!("pipeline error instead of degradation: {e}")));
                continue;
            }
            Err(payload) => {
                panics += 1;
                failed.push(fail(format!(
                    "panic escaped the pipeline: {}",
                    splendid_core::panic_message(payload)
                )));
                continue;
            }
        };

        let fired = plan.fired();
        if fired == 0 {
            failed.push(fail(format!(
                "fault never fired ({} invocations of {})",
                plan.invocations(site),
                site.label()
            )));
            continue;
        }
        fired_total += fired;
        retries_total += retries;
        let degraded = u64::from(timings.degraded_structured) + u64::from(timings.degraded_literal);
        degraded_total += degraded;

        if site == Stage::Detransform {
            // Transient module-wide fault: absorbed by retry, untouched
            // functions, no degradation.
            if retries == 0 {
                failed.push(fail("transient prepare fault was not retried".into()));
                continue;
            }
            if degraded != 0 {
                failed.push(fail(format!(
                    "prepare retry must not degrade functions (got {degraded})"
                )));
                continue;
            }
        } else {
            if degraded == 0 {
                failed.push(fail("fault fired but no function degraded".into()));
                continue;
            }
            if !source.contains("splendid: degraded to") {
                failed.push(fail("degraded output is missing its annotation".into()));
                continue;
            }
        }

        // The contract that matters: degraded output stays correct.
        let names: Vec<&str> = case.arrays.iter().map(|s| s.as_str()).collect();
        match Harness::recompile_and_run(
            &source,
            OmpRuntime::LibOmp,
            CompilerProfile::gcc(),
            &names,
        ) {
            Ok((checksum, _)) => {
                if checksum != case.reference {
                    failed.push(fail(format!(
                        "degraded checksum {checksum} != reference {} \
                         \n--- degraded source ---\n{source}\
                         \n--- original source ---\n{}",
                        case.reference, case.src
                    )));
                }
            }
            Err(e) => failed.push(fail(format!(
                "degraded output failed to recompile: {e}\
                 \n--- degraded source ---\n{source}"
            ))),
        }
    }

    FaultCampaignReport {
        seed: cfg.seed,
        faults_run: cfg.faults,
        fired: fired_total,
        degraded_functions: degraded_total,
        prepare_retries: retries_total,
        panics,
        failed,
    }
}

fn pick_kind(rng: &mut FaultRng) -> FaultKind {
    match rng.below(3) {
        0 => FaultKind::Fail,
        1 => FaultKind::Timeout { millis: 1 },
        _ => FaultKind::AllocCap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_contained_and_deterministic() {
        let cfg = FaultCampaignConfig {
            seed: 0xFA_17,
            faults: 16,
            cases: 2,
        };
        let a = run_fault_campaign(&cfg);
        assert!(a.all_passed(), "campaign violated containment:\n{a}");
        assert_eq!(a.panics, 0);
        assert!(a.fired >= a.faults_run, "every fault must fire: {a}");
        assert!(
            a.degraded_functions > 0,
            "per-function faults must degrade: {a}"
        );
        let b = run_fault_campaign(&cfg);
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "campaign must be deterministic"
        );
    }

    #[test]
    fn detransform_faults_are_absorbed_by_retry() {
        // Force many faults over one case: some will hit Detransform.
        let cfg = FaultCampaignConfig {
            seed: 1,
            faults: 12,
            cases: 1,
        };
        let report = run_fault_campaign(&cfg);
        assert!(report.all_passed(), "{report}");
        assert!(
            report.prepare_retries > 0,
            "expected at least one transient prepare retry in 12 faults: {report}"
        );
    }
}
