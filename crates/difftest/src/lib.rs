//! Deterministic differential testing for the SPLENDID pipeline.
//!
//! Four pieces, zero external dependencies:
//!
//! - [`gen`]: a seeded program generator emitting well-typed C in the
//!   cfront subset — nested and downward loops, guarded control flow,
//!   multi-dimensional subscripts, scalar reductions, helper calls —
//!   in-bounds and NaN-free by construction.
//! - [`oracle`]: runs each program through every pipeline route (direct
//!   interpretation at `-O0` and `-O2`, the Polly-sim parallelizer, and
//!   decompile→recompile under both OpenMP runtimes) and fails on any
//!   checksum divergence, pipeline error, or unstable decompilation.
//! - [`shrink`]: a delta-debugging minimizer that preserves the exact
//!   `(route, failure kind)` while cutting the program down.
//! - [`runner`]: the campaign driver behind `splendid difftest`, with a
//!   byte-deterministic report and corpus replay.
//! - [`faults`]: the seeded fault-injection campaign behind
//!   `splendid difftest --faults N`, proving every injected pipeline
//!   fault yields degraded-but-checksum-correct output.
//!
//! Everything is a pure function of the `(seed, case)` pair: no clocks,
//! no OS entropy, no filesystem state. Two runs of the same campaign
//! print identical bytes.

pub mod faults;
pub mod gen;
pub mod oracle;
pub mod prog;
pub mod rng;
pub mod runner;
pub mod shrink;

pub use faults::{run_fault_campaign, FaultCampaignConfig, FaultCampaignReport, FaultFailure};
pub use gen::{generate, GenConfig};
pub use oracle::{CaseFailure, CaseReport, Decompiler, FailureKind, InProcessDecompiler, Oracle};
pub use prog::TestProgram;
pub use rng::{parse_seed, Rng};
pub use runner::{
    replay_command, replay_corpus_source, run_difftest, validate_source, DifftestConfig,
    DifftestReport, ValidationReport,
};
pub use shrink::{shrink, ShrinkResult};
