/* difftest regression corpus: seed=0xSPLENDID case=10.
 * Replayed through every oracle route by crates/difftest tests
 * and the CI difftest job.
 */
double A[4][4];

double f0(double p0) {
  return (p0 * 0.75);
}

void init() {
  int i0;
  int i1;
  for (i0 = 0; i0 < 4; i0++) {
    for (i1 = 0; i1 < 4; i1++) {
      A[i0][i1] = (i0 * 5 + i1 * 3 + 1) % 11 * 0.25 + 0.5;
    }
  }
}

void kernel() {
  int i;
  int j;
  int k;
  for (i = 0; i < 2; i++) {
    for (j = 1; j < 4; j++) {
      A[j][i] = ((((A[j - 1][i + 1] * 0.25) - (A[j - 1][i + 1] * 0.25)) + ((j * 2) / 2.0)) * 0.5);
      A[j][i + 1] = 0.25;
      A[j][i + 2] += ((i - 0.25) + ((i - 1) - (j + (j * 2 + 2))));
    }
    A[i][1] = ((i * 2) + f0(f0((A[i + 1][0] * 0.5))));
  }
  double s0 = 0.0;
  for (k = 0; k < 2; k++) {
    s0 += A[k + 2][2];
  }
  A[2][2] += s0;
}
