/* difftest regression corpus: seed=0xSPLENDID case=1.
 * Replayed through every oracle route by crates/difftest tests
 * and the CI difftest job.
 */
double A[6][5];

void init() {
  int i0;
  int i1;
  for (i0 = 0; i0 < 6; i0++) {
    for (i1 = 0; i1 < 5; i1++) {
      A[i0][i1] = (i0 * 5 + i1 * 3 + 1) % 11 * 0.25 + 0.5;
    }
  }
}

void kernel() {
  int i;
  int j;
  int k;
  int m;
  int n2;
  int q;
  int i6;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 5; j++) {
      for (k = 1; k < 3; k++) {
        A[k + 1][j] = (A[k][j] * 0.25);
        A[k][j] = A[k - 1][j];
        if (k < 6) {
          double s0 = (A[k + 1][j] / 2.0);
          A[k - 1][j] = (s0 * 0.5);
        }
      }
    }
    A[i + 1][4] += 2.0;
  }
  for (m = 0; m < 3; m++) {
    for (n2 = 0; n2 < 3; n2++) {
      for (q = 0; q < 5; q++) {
        A[q + 1][n2 + 2] += (((0.5 / 2.0) / 1.5) / 8.0);
        A[q][n2 + 1] = (A[q + 1][n2] / 2.0);
      }
      A[n2 + 1][m + 1] += 3.0;
    }
  }
  for (i6 = 0; i6 < 4; i6++) {
    if (i6 < 6) {
      double s1 = (A[i6 + 2][0] / 4.0);
      A[i6 + 2][3] = (s1 * 0.75);
    }
    A[i6][0] += 1.5;
    A[i6 + 1][1] = (((0.75 + (i6 * 3 + 2)) + (i6 * 2.0)) * 1.5);
  }
}
