/* difftest regression corpus: seed=0xSPLENDID case=8.
 * Replayed through every oracle route by crates/difftest tests
 * and the CI difftest job.
 */
double A[12];

void init() {
  int i0;
  for (i0 = 0; i0 < 12; i0++) {
    A[i0] = (i0 * 7 + 1) % 13 * 0.25 + 0.5;
  }
}

void kernel() {
  int i;
  int j;
  double s0 = 0.0;
  for (i = 0; i < 9; i++) {
    s0 += (((A[i + 1] * 0.25) + i) + (A[i] * 0.5));
  }
  A[9] = s0;
  for (j = 0; j < 6; j++) {
    A[j] = (j + j);
    A[j + 1] += (j + 2);
    if (j % 4 == 0) {
      A[j + 2] += (j * 3 + 1);
    } else {
      A[j] = j;
    }
  }
}
