/* difftest regression corpus: seed=0xSPLENDID case=2.
 * Replayed through every oracle route by crates/difftest tests
 * and the CI difftest job.
 */
double A[7];
double B[5][6];

void init() {
  int i0;
  int i1;
  for (i0 = 0; i0 < 7; i0++) {
    A[i0] = (i0 * 7 + 1) % 13 * 0.25 + 0.5;
  }
  for (i0 = 0; i0 < 5; i0++) {
    for (i1 = 0; i1 < 6; i1++) {
      B[i0][i1] = (i0 * 5 + i1 * 3 + 2) % 11 * 0.25 + 0.5;
    }
  }
}

void kernel() {
  int w0;
  w0 = 0;
  while (w0 < 5) {
    B[w0][2] = (w0 * 3);
    w0 = w0 + 1;
  }
}
