/* difftest regression corpus: seed=0xSPLENDID case=0.
 * Replayed through every oracle route by crates/difftest tests
 * and the CI difftest job.
 */
double A[13];
double B[5][7];
double C[7][4];

void init() {
  int i0;
  int i1;
  for (i0 = 0; i0 < 13; i0++) {
    A[i0] = (i0 * 7 + 1) % 13 * 0.25 + 0.5;
  }
  for (i0 = 0; i0 < 5; i0++) {
    for (i1 = 0; i1 < 7; i1++) {
      B[i0][i1] = (i0 * 5 + i1 * 3 + 2) % 11 * 0.25 + 0.5;
    }
  }
  for (i0 = 0; i0 < 7; i0++) {
    for (i1 = 0; i1 < 4; i1++) {
      C[i0][i1] = (i0 * 5 + i1 * 3 + 3) % 11 * 0.25 + 0.5;
    }
  }
}

void kernel() {
  int i;
  int j;
  for (i = 3; i >= 0; i--) {
    B[i + 1][3] = ((i - (B[i][1] * 0.25)) + (i * 0.25));
    A[i] += 2.0;
    B[i][0] += ((((i * 2 + 1) * 3.0) + (i / 1.5)) + ((0.75 + 0.25) + (0.25 / 2.0)));
  }
  for (j = 0; j < 4; j++) {
    B[j][1] = A[j];
    A[j + 1] = (((j * 2.0) - (2.5 - 0.25)) / 4.0);
  }
}
