//! Kill-mid-write recovery harness.
//!
//! Simulates the ways a cache store can die — truncated appends, torn
//! record headers, flipped payload bits, a stale or vanished index —
//! and asserts the invariant the design promises: reopening drops *only*
//! the damaged tail, every earlier record survives byte-for-byte, and
//! `verify` comes back clean afterwards.

use splendid_cachestore::segment::{segment_file_name, REC_HEADER_LEN, SEG_HEADER_LEN};
use splendid_cachestore::{CacheStore, StoreConfig};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "splendid-recovery-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payload_for(k: u64) -> Vec<u8> {
    format!("record-{k}-{}", "x".repeat((k % 37) as usize)).into_bytes()
}

/// Build a store with `n` records, crash it (no clean flush), and
/// return the directory plus the path of the single segment file.
fn crashed_store(tag: &str, n: u64) -> (PathBuf, PathBuf) {
    let dir = temp_dir(tag);
    let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
    for k in 0..n {
        store.put(k, &payload_for(k)).unwrap();
    }
    // Data reaches the file (the harness mutates it below) but the
    // index dirty flag stays set, as after SIGKILL.
    store.verify().unwrap();
    store.abandon();
    let seg = dir.join(segment_file_name(0));
    (dir, seg)
}

fn assert_recovers(dir: &Path, intact: u64, total: u64) {
    let mut store = CacheStore::open(dir, StoreConfig::default()).unwrap();
    for k in 0..intact {
        assert_eq!(
            store.get(k),
            Some(payload_for(k)),
            "record {k} must survive recovery"
        );
    }
    for k in intact..total {
        assert_eq!(
            store.get(k),
            None,
            "record {k} was torn and must be dropped"
        );
    }
    let report = store.verify().unwrap();
    assert!(report.ok(), "verify after recovery: {report:?}");
    assert_eq!(report.index_entries, intact);
}

#[test]
fn kill_mid_payload_drops_only_last_record() {
    let (dir, seg) = crashed_store("mid-payload", 25);
    let len = std::fs::metadata(&seg).unwrap().len();
    // Tear mid-payload of the final record.
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    assert_recovers(&dir, 24, 25);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_header_drops_only_last_record() {
    let (dir, seg) = crashed_store("mid-header", 25);
    let len = std::fs::metadata(&seg).unwrap().len();
    let last_payload = payload_for(24).len() as u64;
    // Leave only half of the final record's header.
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - last_payload - REC_HEADER_LEN / 2).unwrap();
    drop(f);
    assert_recovers(&dir, 24, 25);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_bit_in_tail_record_is_quarantined() {
    let (dir, seg) = crashed_store("bitflip", 25);
    let mut bytes = std::fs::read(&seg).unwrap();
    let last_payload = payload_for(24).len();
    let idx = bytes.len() - last_payload / 2 - 1;
    bytes[idx] ^= 0x10;
    std::fs::write(&seg, &bytes).unwrap();
    assert_recovers(&dir, 24, 25);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_appended_after_clean_records_is_truncated() {
    let (dir, seg) = crashed_store("garbage", 10);
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0xFFu8; 64]); // a write that never framed
    std::fs::write(&seg, &bytes).unwrap();
    assert_recovers(&dir, 10, 10);
    // The torn tail was physically truncated, not just skipped.
    let after = std::fs::metadata(&seg).unwrap().len();
    assert_eq!(after, bytes.len() as u64 - 64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segment_truncated_to_header_loses_all_records_cleanly() {
    let (dir, seg) = crashed_store("to-header", 8);
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(SEG_HEADER_LEN).unwrap();
    drop(f);
    assert_recovers(&dir, 0, 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleted_index_is_rebuilt_from_segments() {
    let dir = temp_dir("no-index");
    {
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        for k in 0..15 {
            store.put(k, &payload_for(k)).unwrap();
        }
        store.flush().unwrap();
    }
    std::fs::remove_file(dir.join(splendid_cachestore::index::INDEX_FILE)).unwrap();
    assert_recovers(&dir, 15, 15);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_index_from_foreign_segment_set_is_rebuilt() {
    let dir = temp_dir("stale-index");
    {
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        for k in 0..10 {
            store.put(k, &payload_for(k)).unwrap();
        }
        store.flush().unwrap();
    }
    // Mutate a segment behind the index's back (appending garbage
    // changes the file length, so seg_state no longer matches).
    let seg = dir.join(segment_file_name(0));
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0u8; 16]);
    std::fs::write(&seg, &bytes).unwrap();

    assert_recovers(&dir, 10, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_index_file_is_rebuilt() {
    let dir = temp_dir("bad-index");
    {
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        for k in 0..12 {
            store.put(k, &payload_for(k)).unwrap();
        }
        store.flush().unwrap();
    }
    let idx = dir.join(splendid_cachestore::index::INDEX_FILE);
    std::fs::write(&idx, b"not an index at all").unwrap();
    assert_recovers(&dir, 12, 12);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_crashes_converge() {
    let dir = temp_dir("repeat");
    let mut expected = 0u64;
    for round in 0..5u64 {
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        for k in expected..expected + 6 {
            store.put(k, &payload_for(k)).unwrap();
        }
        expected += 6;
        if round % 2 == 0 {
            store.abandon(); // crash without flushing
        } else {
            store.flush().unwrap();
            drop(store); // release the directory lock for the check below
        }
        // Every reopen must see everything written so far: appends hit
        // the file synchronously, only the index trust differs.
        let mut check = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        for k in 0..expected {
            assert_eq!(check.get(k), Some(payload_for(k)), "round {round}, key {k}");
        }
        assert!(check.verify().unwrap().ok());
        check.flush().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
