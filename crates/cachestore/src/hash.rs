//! FNV-1a 64-bit, the same content-addressing hash the serve layer
//! uses for cache keys. Duplicated here (30 lines) rather than imported
//! so the store stays dependency-free and usable standalone.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a 64 hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh state.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }
}
