//! Memory-mapped open-addressing index: FNV-64 key → record location.
//!
//! The index is a linear-probing hash table persisted in a single file
//! (`index.spx`) and accessed through [`MmapFile`], so lookups after a
//! warm open touch no heap and deserialize nothing. It is a *cache* of
//! the segments' contents, never the source of truth: a `dirty` flag is
//! set while the store holds it open for writing and cleared on clean
//! flush, and a `seg_state` hash fingerprints the segment set it was
//! built from. If either check fails at open, the store throws the
//! index away and rebuilds it by rescanning segments — which is also
//! the crash-recovery path, so torn index writes can never serve stale
//! or corrupt locations.
//!
//! Layout (little-endian):
//!
//! ```text
//! header (64 bytes):
//!   0  magic "SIDX"      4  version u32      8  slot count u64
//!   16 live count u64    24 used count u64   32 dirty u32
//!   40 seg_state u64     48 reserved
//! slot i at 64 + 32*i (32 bytes):
//!   0  state u32 (0 empty · 1 live · 2 tombstone)
//!   4  segment u32       8  key u64          16 offset u64
//!   24 payload len u32   28 reserved
//! ```

use crate::mmap::MmapFile;
use crate::segment::RecordRef;
use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};

const IDX_MAGIC: [u8; 4] = *b"SIDX";
const IDX_VERSION: u32 = 1;
const HEADER_LEN: usize = 64;
const SLOT_LEN: usize = 32;
/// Smallest table we ever allocate.
const MIN_SLOTS: u64 = 64;

const OFF_SLOTS: usize = 8;
const OFF_LIVE: usize = 16;
const OFF_USED: usize = 24;
const OFF_DIRTY: usize = 32;
const OFF_SEG_STATE: usize = 40;

const STATE_EMPTY: u32 = 0;
const STATE_LIVE: u32 = 1;
const STATE_TOMB: u32 = 2;

/// File name of the index within a store directory.
pub const INDEX_FILE: &str = "index.spx";

/// The persistent hash table.
pub struct Index {
    map: MmapFile,
    path: PathBuf,
    slots: u64,
    mask: u64,
}

/// Fibonacci-mix the (already FNV-hashed) key so sequential-ish keys
/// still spread across the table.
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl Index {
    /// Create a fresh, empty index sized for at least `min_slots`
    /// entries, replacing any existing file atomically.
    pub fn create(dir: &Path, min_slots: u64) -> io::Result<Index> {
        let slots = min_slots.max(MIN_SLOTS).next_power_of_two();
        let path = dir.join(INDEX_FILE);
        let tmp = dir.join(format!("{INDEX_FILE}.tmp"));
        let size = HEADER_LEN as u64 + slots * SLOT_LEN as u64;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.set_len(size)?;
        let mut map = MmapFile::map(file, size as usize)?;
        map.bytes_mut()[0..4].copy_from_slice(&IDX_MAGIC);
        map.write_u32(4, IDX_VERSION);
        map.write_u64(OFF_SLOTS, slots);
        map.write_u64(OFF_LIVE, 0);
        map.write_u64(OFF_USED, 0);
        map.write_u32(OFF_DIRTY, 0);
        map.write_u64(OFF_SEG_STATE, 0);
        map.sync()?;
        drop(map);
        std::fs::rename(&tmp, &path)?;
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let map = MmapFile::map(file, size as usize)?;
        Ok(Index {
            map,
            path,
            slots,
            mask: slots - 1,
        })
    }

    /// Map an existing index file, validating its shape. Returns an
    /// error for any structural problem (missing, bad magic, size
    /// mismatch) — the caller treats every error as "rebuild".
    pub fn open(dir: &Path) -> io::Result<Index> {
        let path = dir.join(INDEX_FILE);
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN as u64 {
            return Err(bad("index file shorter than its header"));
        }
        let map = MmapFile::map(file, file_len as usize)?;
        if map.bytes()[0..4] != IDX_MAGIC {
            return Err(bad("index magic mismatch"));
        }
        if map.read_u32(4) != IDX_VERSION {
            return Err(bad("unsupported index format version"));
        }
        let slots = map.read_u64(OFF_SLOTS);
        if slots < MIN_SLOTS || !slots.is_power_of_two() {
            return Err(bad("implausible index slot count"));
        }
        let want = HEADER_LEN as u64 + slots * SLOT_LEN as u64;
        if file_len != want {
            return Err(bad("index size does not match its slot count"));
        }
        Ok(Index {
            map,
            path,
            slots,
            mask: slots - 1,
        })
    }

    /// True if the last writer did not flush cleanly (crash evidence).
    pub fn dirty(&self) -> bool {
        self.map.read_u32(OFF_DIRTY) != 0
    }

    /// Mark the index open-for-write (`true`) or cleanly flushed
    /// (`false`), persisting the flag immediately.
    pub fn set_dirty(&mut self, dirty: bool) -> io::Result<()> {
        self.map.write_u32(OFF_DIRTY, u32::from(dirty));
        self.map.sync()
    }

    /// Fingerprint of the segment set this index was built against.
    pub fn seg_state(&self) -> u64 {
        self.map.read_u64(OFF_SEG_STATE)
    }

    /// Record the segment-set fingerprint.
    pub fn set_seg_state(&mut self, state: u64) {
        self.map.write_u64(OFF_SEG_STATE, state);
    }

    /// Number of live entries.
    pub fn live(&self) -> u64 {
        self.map.read_u64(OFF_LIVE)
    }

    /// Total slot count.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    fn slot_base(&self, i: u64) -> usize {
        HEADER_LEN + (i as usize) * SLOT_LEN
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<RecordRef> {
        let mut i = spread(key) & self.mask;
        for _ in 0..self.slots {
            let base = self.slot_base(i);
            match self.map.read_u32(base) {
                STATE_EMPTY => return None,
                STATE_LIVE if self.map.read_u64(base + 8) == key => {
                    return Some(RecordRef {
                        key,
                        segment: u64::from(self.map.read_u32(base + 4)),
                        offset: self.map.read_u64(base + 16),
                        len: self.map.read_u32(base + 24),
                    });
                }
                _ => i = (i + 1) & self.mask,
            }
        }
        None
    }

    /// Insert or update a key's location. Grows (rehash into a doubled
    /// table) when live + tombstone occupancy would pass 3/4.
    pub fn insert(&mut self, rec: RecordRef) -> io::Result<()> {
        let used = self.map.read_u64(OFF_USED);
        if (used + 1) * 4 >= self.slots * 3 {
            self.grow()?;
        }
        let mut i = spread(rec.key) & self.mask;
        let mut reuse: Option<u64> = None;
        for _ in 0..self.slots {
            let base = self.slot_base(i);
            match self.map.read_u32(base) {
                STATE_EMPTY => {
                    let target = reuse.unwrap_or(i);
                    let fresh = reuse.is_none();
                    self.write_slot(target, rec);
                    self.map
                        .write_u64(OFF_LIVE, self.map.read_u64(OFF_LIVE) + 1);
                    if fresh {
                        self.map
                            .write_u64(OFF_USED, self.map.read_u64(OFF_USED) + 1);
                    }
                    return Ok(());
                }
                STATE_TOMB => {
                    if reuse.is_none() {
                        reuse = Some(i);
                    }
                    i = (i + 1) & self.mask;
                }
                _ if self.map.read_u64(base + 8) == rec.key => {
                    self.write_slot(i, rec); // in-place update
                    return Ok(());
                }
                _ => i = (i + 1) & self.mask,
            }
        }
        Err(bad("index full despite load-factor guard"))
    }

    /// Tombstone a key. Returns true if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let mut i = spread(key) & self.mask;
        for _ in 0..self.slots {
            let base = self.slot_base(i);
            match self.map.read_u32(base) {
                STATE_EMPTY => return false,
                STATE_LIVE if self.map.read_u64(base + 8) == key => {
                    self.map.write_u32(base, STATE_TOMB);
                    self.map
                        .write_u64(OFF_LIVE, self.map.read_u64(OFF_LIVE).saturating_sub(1));
                    return true;
                }
                _ => i = (i + 1) & self.mask,
            }
        }
        false
    }

    /// Visit every live entry.
    pub fn for_each(&self, mut f: impl FnMut(RecordRef)) {
        for i in 0..self.slots {
            let base = self.slot_base(i);
            if self.map.read_u32(base) == STATE_LIVE {
                f(RecordRef {
                    key: self.map.read_u64(base + 8),
                    segment: u64::from(self.map.read_u32(base + 4)),
                    offset: self.map.read_u64(base + 16),
                    len: self.map.read_u32(base + 24),
                });
            }
        }
    }

    /// Flush the table to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.map.sync()
    }

    fn write_slot(&mut self, i: u64, rec: RecordRef) {
        let base = self.slot_base(i);
        self.map.write_u32(base, STATE_LIVE);
        self.map.write_u32(base + 4, rec.segment as u32);
        self.map.write_u64(base + 8, rec.key);
        self.map.write_u64(base + 16, rec.offset);
        self.map.write_u32(base + 24, rec.len);
    }

    /// Rehash into a doubled table (dropping tombstones), atomically
    /// replacing the on-disk file.
    fn grow(&mut self) -> io::Result<()> {
        let dir = self
            .path
            .parent()
            .ok_or_else(|| bad("index path has no parent"))?
            .to_path_buf();
        let mut entries = Vec::with_capacity(self.live() as usize);
        self.for_each(|rec| entries.push(rec));
        let seg_state = self.seg_state();
        let dirty = self.dirty();
        let mut bigger = Index::create(&dir, self.slots * 2)?;
        for rec in entries {
            bigger.insert(rec)?;
        }
        bigger.set_seg_state(seg_state);
        if dirty {
            bigger.set_dirty(true)?;
        }
        *self = bigger;
        Ok(())
    }
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("cachestore: {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("splendid-idx-{}-{}-{}", std::process::id(), tag, n));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(key: u64, seg: u64, offset: u64, len: u32) -> RecordRef {
        RecordRef {
            key,
            segment: seg,
            offset,
            len,
        }
    }

    #[test]
    fn insert_get_update_remove() {
        let dir = temp_dir("basic");
        let mut idx = Index::create(&dir, 64).unwrap();
        assert_eq!(idx.get(42), None);
        idx.insert(rec(42, 1, 16, 100)).unwrap();
        assert_eq!(idx.get(42), Some(rec(42, 1, 16, 100)));
        idx.insert(rec(42, 2, 32, 200)).unwrap(); // newer copy wins
        assert_eq!(idx.get(42), Some(rec(42, 2, 32, 200)));
        assert_eq!(idx.live(), 1);
        assert!(idx.remove(42));
        assert!(!idx.remove(42));
        assert_eq!(idx.get(42), None);
        assert_eq!(idx.live(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut idx = Index::create(&dir, 64).unwrap();
            for k in 0..40u64 {
                idx.insert(rec(k * 7919, k, k * 16, k as u32)).unwrap();
            }
            idx.set_seg_state(0xABCD);
            idx.set_dirty(false).unwrap();
            idx.sync().unwrap();
        }
        let idx = Index::open(&dir).unwrap();
        assert!(!idx.dirty());
        assert_eq!(idx.seg_state(), 0xABCD);
        assert_eq!(idx.live(), 40);
        for k in 0..40u64 {
            assert_eq!(idx.get(k * 7919), Some(rec(k * 7919, k, k * 16, k as u32)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let dir = temp_dir("grow");
        let mut idx = Index::create(&dir, 64).unwrap();
        let n = 500u64;
        for k in 0..n {
            idx.insert(rec(k.wrapping_mul(0x1234_5678_9ABC), k, k, 1))
                .unwrap();
        }
        assert_eq!(idx.live(), n);
        assert!(idx.slots() >= n);
        for k in 0..n {
            let key = k.wrapping_mul(0x1234_5678_9ABC);
            assert_eq!(idx.get(key).map(|r| r.segment), Some(k));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_keep_probe_chains_intact() {
        let dir = temp_dir("tomb");
        let mut idx = Index::create(&dir, 64).unwrap();
        // Insert colliding-ish keys, remove one in the middle of the
        // chain, and confirm later keys are still reachable.
        let keys: Vec<u64> = (0..20).map(|k| k * 64 + 5).collect();
        for &k in &keys {
            idx.insert(rec(k, 0, k, 1)).unwrap();
        }
        idx.remove(keys[3]);
        for &k in &keys {
            if k == keys[3] {
                assert_eq!(idx.get(k), None);
            } else {
                assert!(idx.get(k).is_some(), "key {k} lost after tombstone");
            }
        }
        // A reinsert reuses the tombstone.
        idx.insert(rec(keys[3], 1, 99, 2)).unwrap();
        assert_eq!(idx.get(keys[3]).map(|r| r.offset), Some(99));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_flag_roundtrips() {
        let dir = temp_dir("dirty");
        {
            let mut idx = Index::create(&dir, 64).unwrap();
            idx.set_dirty(true).unwrap();
        }
        let idx = Index::open(&dir).unwrap();
        assert!(idx.dirty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = temp_dir("trunc");
        {
            let _ = Index::create(&dir, 64).unwrap();
        }
        let path = dir.join(INDEX_FILE);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(100).unwrap();
        drop(f);
        assert!(Index::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
