//! Append-only segment files.
//!
//! A segment is the store's unit of durability and rotation. On-disk
//! layout (all integers little-endian):
//!
//! ```text
//! file header  (16 bytes): magic "SSEG" · format version u32 · segment id u64
//! record       (20 + len): magic "SREC" · key u64 · len u32 · crc u32 · payload
//! ```
//!
//! The CRC-32 covers `key || len || payload`, so a torn header is caught
//! as reliably as a torn payload. Records are only ever appended; a
//! crash mid-append leaves a torn tail that [`Segment::scan`] detects
//! and reports so the store can truncate it — everything before the tear
//! is intact by construction.

use crate::crc::Crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment file magic, first 4 bytes of every segment.
pub const SEG_MAGIC: [u8; 4] = *b"SSEG";
/// Record magic, first 4 bytes of every record.
pub const REC_MAGIC: [u8; 4] = *b"SREC";
/// On-disk format version.
pub const SEG_VERSION: u32 = 1;
/// Segment file header size in bytes.
pub const SEG_HEADER_LEN: u64 = 16;
/// Record header size in bytes (magic + key + len + crc).
pub const REC_HEADER_LEN: u64 = 20;
/// Hard cap on a single record payload (matches the wire protocol's
/// 16 MiB frame limit so any cacheable blob is also storable).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// File name for segment `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:012}.spc")
}

/// Parse a segment id back out of a file name, if it is one of ours.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".spc")?;
    if rest.len() != 12 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Location of one live record inside a segment, as discovered by scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef {
    /// Content key of the record.
    pub key: u64,
    /// Segment the record lives in.
    pub segment: u64,
    /// Byte offset of the record header within the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// Outcome of scanning a segment from disk.
#[derive(Debug)]
pub struct ScanResult {
    /// Every intact record, in append order.
    pub records: Vec<RecordRef>,
    /// Offset of the first byte past the last intact record. Anything
    /// beyond this is a torn tail.
    pub clean_len: u64,
    /// Bytes of torn tail discarded (0 when the segment is clean).
    pub torn_bytes: u64,
}

/// An open segment file. Writers append; readers fetch by offset.
pub struct Segment {
    id: u64,
    path: PathBuf,
    file: File,
    /// Current append offset == logical length of intact data.
    len: u64,
}

impl Segment {
    /// Create a fresh segment file, failing if it already exists.
    pub fn create(dir: &Path, id: u64) -> io::Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        let mut header = [0u8; SEG_HEADER_LEN as usize];
        header[0..4].copy_from_slice(&SEG_MAGIC);
        header[4..8].copy_from_slice(&SEG_VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&id.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Segment {
            id,
            path,
            file,
            len: SEG_HEADER_LEN,
        })
    }

    /// Open an existing segment, scan it for intact records, and
    /// truncate any torn tail so subsequent appends are clean.
    pub fn open(dir: &Path, id: u64) -> io::Result<(Segment, ScanResult)> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let scan = scan_records(&mut file, id)?;
        if scan.torn_bytes > 0 {
            file.set_len(scan.clean_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.clean_len))?;
        Ok((
            Segment {
                id,
                path,
                file,
                len: scan.clean_len,
            },
            scan,
        ))
    }

    /// Segment id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Logical length in bytes (header + intact records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= SEG_HEADER_LEN
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record; returns its location. The write is buffered
    /// into one `write_all` so a crash tears at most this record.
    pub fn append(&mut self, key: u64, payload: &[u8]) -> io::Result<RecordRef> {
        if payload.len() > MAX_PAYLOAD as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds record cap", payload.len()),
            ));
        }
        let len = payload.len() as u32;
        let mut crc = Crc32::new();
        crc.update(&key.to_le_bytes())
            .update(&len.to_le_bytes())
            .update(payload);
        let mut buf = Vec::with_capacity(REC_HEADER_LEN as usize + payload.len());
        buf.extend_from_slice(&REC_MAGIC);
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&crc.finish().to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&buf)?;
        let offset = self.len;
        self.len += buf.len() as u64;
        Ok(RecordRef {
            key,
            segment: self.id,
            offset,
            len,
        })
    }

    /// Read back the payload of a record previously located by scan or
    /// append, re-verifying its CRC.
    pub fn read(&mut self, rec: RecordRef) -> io::Result<Vec<u8>> {
        read_record(&mut self.file, rec)
    }

    /// Flush appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Read and CRC-verify one record from an open segment file.
///
/// The CRC is computed over the key *stored in the record header*, not
/// `rec.key`: compaction deduplicates identical payloads by aliasing
/// several index keys to one physical record, so the index key and the
/// stored key may legitimately differ. Only the payload length must
/// agree with the index entry.
pub fn read_record(file: &mut File, rec: RecordRef) -> io::Result<Vec<u8>> {
    let mut header = [0u8; REC_HEADER_LEN as usize];
    file.seek(SeekFrom::Start(rec.offset))?;
    file.read_exact(&mut header)?;
    if header[0..4] != REC_MAGIC {
        return Err(corrupt("record magic mismatch"));
    }
    let key = u64::from_le_bytes(header[4..12].try_into().unwrap_or_default());
    let len = u32::from_le_bytes(header[12..16].try_into().unwrap_or_default());
    let want_crc = u32::from_le_bytes(header[16..20].try_into().unwrap_or_default());
    if len != rec.len {
        return Err(corrupt("record length does not match index entry"));
    }
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload)?;
    let mut crc = Crc32::new();
    crc.update(&key.to_le_bytes())
        .update(&len.to_le_bytes())
        .update(&payload);
    if crc.finish() != want_crc {
        return Err(corrupt("record CRC mismatch"));
    }
    Ok(payload)
}

/// Scan a segment file from the start, validating the header and every
/// record CRC. Stops at the first torn or corrupt record; everything
/// before it is reported intact.
pub fn scan_records(file: &mut File, expect_id: u64) -> io::Result<ScanResult> {
    let file_len = file.metadata()?.len();
    file.seek(SeekFrom::Start(0))?;
    let mut reader = BufReader::new(&mut *file);

    let mut header = [0u8; SEG_HEADER_LEN as usize];
    if file_len < SEG_HEADER_LEN {
        return Err(corrupt("segment shorter than its header"));
    }
    reader.read_exact(&mut header)?;
    if header[0..4] != SEG_MAGIC {
        return Err(corrupt("segment magic mismatch"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap_or_default());
    if version != SEG_VERSION {
        return Err(corrupt("unsupported segment format version"));
    }
    let id = u64::from_le_bytes(header[8..16].try_into().unwrap_or_default());
    if id != expect_id {
        return Err(corrupt("segment id does not match file name"));
    }

    let mut records = Vec::new();
    let mut offset = SEG_HEADER_LEN;
    let mut payload = Vec::new();
    loop {
        if offset == file_len {
            break;
        }
        if file_len - offset < REC_HEADER_LEN {
            break; // torn header
        }
        let mut rec_header = [0u8; REC_HEADER_LEN as usize];
        reader.read_exact(&mut rec_header)?;
        if rec_header[0..4] != REC_MAGIC {
            break; // corrupt or torn magic
        }
        let key = u64::from_le_bytes(rec_header[4..12].try_into().unwrap_or_default());
        let len = u32::from_le_bytes(rec_header[12..16].try_into().unwrap_or_default());
        let want_crc = u32::from_le_bytes(rec_header[16..20].try_into().unwrap_or_default());
        if len > MAX_PAYLOAD || u64::from(len) > file_len - offset - REC_HEADER_LEN {
            break; // implausible or torn length
        }
        payload.clear();
        payload.resize(len as usize, 0);
        reader.read_exact(&mut payload)?;
        let mut crc = Crc32::new();
        crc.update(&key.to_le_bytes())
            .update(&len.to_le_bytes())
            .update(&payload);
        if crc.finish() != want_crc {
            break; // bit rot or torn payload
        }
        records.push(RecordRef {
            key,
            segment: expect_id,
            offset,
            len,
        });
        offset += REC_HEADER_LEN + u64::from(len);
    }
    Ok(ScanResult {
        records,
        clean_len: offset,
        torn_bytes: file_len - offset,
    })
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("cachestore: {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("splendid-seg-{}-{}-{}", std::process::id(), tag, n));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = temp_dir("rt");
        let mut seg = Segment::create(&dir, 7).unwrap();
        let a = seg.append(11, b"alpha").unwrap();
        let b = seg.append(22, b"beta-beta").unwrap();
        assert_eq!(seg.read(a).unwrap(), b"alpha");
        assert_eq!(seg.read(b).unwrap(), b"beta-beta");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_all_clean_records() {
        let dir = temp_dir("reopen");
        {
            let mut seg = Segment::create(&dir, 3).unwrap();
            seg.append(1, b"one").unwrap();
            seg.append(2, b"two").unwrap();
            seg.sync().unwrap();
        }
        let (mut seg, scan) = Segment::open(&dir, 3).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(seg.read(scan.records[1]).unwrap(), b"two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let dir = temp_dir("torn");
        let path;
        {
            let mut seg = Segment::create(&dir, 1).unwrap();
            seg.append(1, b"intact-record").unwrap();
            seg.append(2, b"doomed-record").unwrap();
            seg.sync().unwrap();
            path = seg.path().to_path_buf();
        }
        // Tear the last record mid-payload, as a crash during append would.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);

        let (mut seg, scan) = Segment::open(&dir, 1).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
        assert_eq!(seg.read(scan.records[0]).unwrap(), b"intact-record");
        // The file itself was truncated back to the clean prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), scan.clean_len);
        // And appends after recovery work.
        let r = seg.append(3, b"post-recovery").unwrap();
        assert_eq!(seg.read(r).unwrap(), b"post-recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_drops_only_the_tail() {
        let dir = temp_dir("flip");
        let path;
        let second_offset;
        {
            let mut seg = Segment::create(&dir, 9).unwrap();
            seg.append(1, b"first").unwrap();
            second_offset = seg.len();
            seg.append(2, b"second").unwrap();
            seg.sync().unwrap();
            path = seg.path().to_path_buf();
        }
        // Flip one payload byte in the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = (second_offset + REC_HEADER_LEN) as usize;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_seg, scan) = Segment::open(&dir, 9).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].key, 1);
        assert!(scan.torn_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(segment_file_name(42), "seg-000000000042.spc");
        assert_eq!(parse_segment_file_name("seg-000000000042.spc"), Some(42));
        assert_eq!(parse_segment_file_name("seg-xyz.spc"), None);
        assert_eq!(parse_segment_file_name("index.spx"), None);
    }
}
