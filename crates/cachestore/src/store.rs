//! The persistent content-addressed cache store.
//!
//! A store is a directory: numbered append-only segment files
//! (`seg-*.spc`), one memory-mapped index (`index.spx`), and a `lock`
//! file held with `flock` so two processes never write the same store.
//!
//! Durability contract:
//! * `put` appends one CRC-framed record to the active segment and
//!   updates the mmap index. A crash tears at most the record being
//!   appended.
//! * The index is disposable. At open, a dirty flag (set while any
//!   writer is live) or a `seg_state` mismatch (FNV-64 over the sorted
//!   `(segment id, file length)` list) forces a rebuild by rescanning
//!   every segment — the same walk that truncates torn tails.
//! * Rotation caps segment size; when the directory exceeds its byte
//!   budget the oldest segments are dropped whole (their index entries
//!   tombstoned), and `compact` rewrites the live set into fresh
//!   segments to reclaim superseded records, collapsing byte-identical
//!   payloads stored under several keys into one shared record.

use crate::hash::Fnv64;
use crate::index::Index;
use crate::segment::{parse_segment_file_name, read_record, RecordRef, Segment, REC_HEADER_LEN};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

#[cfg(unix)]
mod sys {
    pub const LOCK_EX: i32 = 2;
    pub const LOCK_NB: i32 = 4;
    extern "C" {
        pub fn flock(fd: i32, operation: i32) -> i32;
    }
}

/// Tuning knobs for a store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Total on-disk byte budget across all segments. Oldest segments
    /// are dropped whole once the budget is exceeded.
    pub budget_bytes: u64,
    /// Rotation threshold for the active segment.
    pub segment_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            budget_bytes: 256 * 1024 * 1024,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Operation counters, snapshot via [`CacheStore::counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// `get` calls that returned a payload.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Records appended by `put`.
    pub fills: u64,
    /// Records dropped by budget eviction or compaction.
    pub evicted: u64,
    /// Index entries dropped because the record failed its CRC at read.
    pub crc_drops: u64,
    /// Index rebuilds performed at open (0 on a clean warm start).
    pub rebuilds: u64,
    /// Torn-tail bytes truncated during recovery.
    pub torn_bytes: u64,
}

/// Point-in-time shape of the store, for `splendid cache stat`.
#[derive(Debug, Clone, Copy)]
pub struct StoreStats {
    /// Number of segment files.
    pub segments: u64,
    /// Live (indexed) records.
    pub live_records: u64,
    /// Sum of all segment file lengths.
    pub total_bytes: u64,
    /// Bytes owned by live records (header + payload).
    pub live_bytes: u64,
    /// Configured byte budget.
    pub budget_bytes: u64,
    /// Index slot count.
    pub index_slots: u64,
}

/// Result of a full-store verification pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyReport {
    /// Segments walked.
    pub segments: u64,
    /// CRC-intact records found on disk (including superseded copies).
    pub disk_records: u64,
    /// Torn/corrupt tail bytes encountered (not yet truncated).
    pub torn_bytes: u64,
    /// Live index entries checked.
    pub index_entries: u64,
    /// Index entries that did not resolve to an intact on-disk record.
    pub index_dangling: u64,
}

impl VerifyReport {
    /// True when the store is fully self-consistent.
    pub fn ok(&self) -> bool {
        self.torn_bytes == 0 && self.index_dangling == 0
    }
}

/// Result of a compaction pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactStats {
    /// Records carried into the fresh segments (including aliases).
    pub kept_records: u64,
    /// Superseded/dead records dropped.
    pub dropped_records: u64,
    /// Kept records that were collapsed onto an identical, already
    /// rewritten payload (content-level dedup): their index entries
    /// alias the shared record instead of owning a copy.
    pub deduped_records: u64,
    /// Bytes the dedup aliases avoided writing (header + payload).
    pub deduped_bytes: u64,
    /// Bytes before compaction.
    pub bytes_before: u64,
    /// Bytes after compaction.
    pub bytes_after: u64,
}

/// A writable handle on a store directory. One per process per
/// directory; the `flock`-held lock file enforces exclusivity on unix.
pub struct CacheStore {
    dir: PathBuf,
    config: StoreConfig,
    index: Index,
    active: Segment,
    readers: HashMap<u64, File>,
    /// Lock file held for the lifetime of the store (flock releases on
    /// close or process death, so a crash never wedges the directory).
    _lock: File,
    counters: StoreCounters,
    /// True once a mutation happened after the last flush.
    unflushed: bool,
}

impl CacheStore {
    /// Open (creating if needed) the store at `dir`.
    pub fn open(dir: &Path, config: StoreConfig) -> io::Result<CacheStore> {
        std::fs::create_dir_all(dir)?;
        let lock = acquire_dir_lock(dir)?;
        let mut counters = StoreCounters::default();

        let mut seg_ids = list_segment_ids(dir)?;
        if seg_ids.is_empty() {
            let active = Segment::create(dir, 0)?;
            seg_ids.push(0);
            let mut index = Index::create(dir, 64)?;
            index.set_seg_state(seg_state_of(dir, &seg_ids)?);
            index.sync()?;
            return Ok(CacheStore {
                dir: dir.to_path_buf(),
                config,
                index,
                active,
                readers: HashMap::new(),
                _lock: lock,
                counters,
                unflushed: false,
            });
        }

        // Decide whether the existing index can be trusted.
        let disk_state = seg_state_of(dir, &seg_ids)?;
        let trusted = match Index::open(dir) {
            Ok(idx) if !idx.dirty() && idx.seg_state() == disk_state => Some(idx),
            _ => None,
        };

        let (index, active, readers) = match trusted {
            Some(index) => {
                // Clean shutdown: segments are exactly as fingerprinted,
                // so reopen without a full rescan.
                let active_id = *seg_ids.last().unwrap_or(&0);
                let (active, scan) = Segment::open(dir, active_id)?;
                if scan.torn_bytes != 0 {
                    // seg_state matched yet the tail is torn — do not
                    // trust anything, rebuild from scratch.
                    counters.rebuilds += 1;
                    counters.torn_bytes += scan.torn_bytes;
                    rebuild(dir, &seg_ids, &mut counters)?
                } else {
                    let mut readers = HashMap::new();
                    for &id in &seg_ids {
                        if id != active_id {
                            readers.insert(id, open_reader(dir, id)?);
                        }
                    }
                    (index, active, readers)
                }
            }
            None => {
                counters.rebuilds += 1;
                rebuild(dir, &seg_ids, &mut counters)?
            }
        };

        Ok(CacheStore {
            dir: dir.to_path_buf(),
            config,
            index,
            active,
            readers,
            _lock: lock,
            counters,
            unflushed: false,
        })
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fetch a payload by content key.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        let Some(rec) = self.index.get(key) else {
            self.counters.misses += 1;
            return None;
        };
        let read = if rec.segment == self.active.id() {
            self.active.read(rec)
        } else {
            match self.readers.get_mut(&rec.segment) {
                Some(file) => read_record(file, rec),
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "record points at a dropped segment",
                )),
            }
        };
        match read {
            Ok(payload) => {
                self.counters.hits += 1;
                Some(payload)
            }
            Err(_) => {
                // Bit rot or a stale entry: drop it so we never return
                // corrupt bytes, and treat the call as a miss.
                self.index.remove(key);
                self.counters.crc_drops += 1;
                self.counters.misses += 1;
                None
            }
        }
    }

    /// True if `key` is present without touching hit/miss counters.
    pub fn contains(&self, key: u64) -> bool {
        self.index.get(key).is_some()
    }

    /// Persist a payload under `key`, superseding any previous value.
    pub fn put(&mut self, key: u64, payload: &[u8]) -> io::Result<()> {
        self.mark_unflushed()?;
        let needed = REC_HEADER_LEN + payload.len() as u64;
        if self.active.len() + needed > self.config.segment_bytes && !self.active.is_empty() {
            self.rotate()?;
        }
        let rec = self.active.append(key, payload)?;
        self.index.insert(rec)?;
        self.counters.fills += 1;
        Ok(())
    }

    /// Flush segment data and index to stable storage and mark the
    /// index clean so the next open skips the rescan.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.unflushed {
            return Ok(());
        }
        self.active.sync()?;
        let seg_ids = self.segment_ids();
        let state = seg_state_of(&self.dir, &seg_ids)?;
        self.index.set_seg_state(state);
        self.index.set_dirty(false)?;
        self.unflushed = false;
        Ok(())
    }

    /// Operation counters so far.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// Current shape of the store.
    pub fn stat(&self) -> io::Result<StoreStats> {
        let seg_ids = self.segment_ids();
        let mut total = 0u64;
        for &id in &seg_ids {
            total += std::fs::metadata(self.dir.join(crate::segment::segment_file_name(id)))?.len();
        }
        let mut live_bytes = 0u64;
        self.index
            .for_each(|rec| live_bytes += REC_HEADER_LEN + u64::from(rec.len));
        Ok(StoreStats {
            segments: seg_ids.len() as u64,
            live_records: self.index.live(),
            total_bytes: total,
            live_bytes,
            budget_bytes: self.config.budget_bytes,
            index_slots: self.index.slots(),
        })
    }

    /// Walk every segment and every index entry, verifying CRCs and
    /// cross-checking the index against disk. Read-only.
    pub fn verify(&mut self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for &id in &self.segment_ids() {
            let mut file = open_reader(&self.dir, id)?;
            let scan = crate::segment::scan_records(&mut file, id)?;
            report.segments += 1;
            report.disk_records += scan.records.len() as u64;
            report.torn_bytes += scan.torn_bytes;
        }
        let mut entries = Vec::with_capacity(self.index.live() as usize);
        self.index.for_each(|rec| entries.push(rec));
        for rec in entries {
            report.index_entries += 1;
            let ok = if rec.segment == self.active.id() {
                self.active.read(rec).is_ok()
            } else {
                match self.readers.get_mut(&rec.segment) {
                    Some(file) => read_record(file, rec).is_ok(),
                    None => false,
                }
            };
            if !ok {
                report.index_dangling += 1;
            }
        }
        Ok(report)
    }

    /// Rewrite every live record into fresh segments and drop the old
    /// files, reclaiming superseded and evicted space.
    ///
    /// Identical payloads stored under several keys are collapsed to a
    /// single physical record: the first copy is written, later copies
    /// only alias it in the index (byte-compared first, so an FNV
    /// digest collision can never merge distinct blobs). Aliases are an
    /// index-only construct — a post-crash index rebuild rescans the
    /// segments and maps each record to its *stored* key, so aliased
    /// keys degrade to cache misses (and re-fill), never to wrong data.
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        let mut stats = CompactStats {
            bytes_before: self.stat()?.total_bytes,
            ..CompactStats::default()
        };
        let old_ids = self.segment_ids();
        let mut live: Vec<RecordRef> = Vec::with_capacity(self.index.live() as usize);
        self.index.for_each(|rec| live.push(rec));
        // Oldest-first so compaction preserves relative age across
        // future budget evictions.
        live.sort_by_key(|r| (r.segment, r.offset));

        let mut disk_records = 0u64;
        for &id in &old_ids {
            let mut file = open_reader(&self.dir, id)?;
            disk_records += crate::segment::scan_records(&mut file, id)?.records.len() as u64;
        }

        self.mark_unflushed()?;
        let next_id = old_ids.iter().max().map_or(0, |m| m + 1);
        let mut fresh = Segment::create(&self.dir, next_id)?;
        let mut fresh_readers = HashMap::new();
        let mut moved: Vec<RecordRef> = Vec::with_capacity(live.len());
        // Content digest of every record already rewritten, for the
        // CAS-level dedup: digest -> its fresh location.
        let mut written: HashMap<u64, RecordRef> = HashMap::new();
        for rec in live {
            let payload = if rec.segment == self.active.id() {
                self.active.read(rec)
            } else {
                match self.readers.get_mut(&rec.segment) {
                    Some(file) => read_record(file, rec),
                    None => continue,
                }
            };
            let Ok(payload) = payload else {
                self.counters.crc_drops += 1;
                continue;
            };
            let mut digest = Fnv64::new();
            digest.write(&payload);
            let digest = digest.finish();
            if let Some(&shared) = written.get(&digest) {
                // Byte-compare before aliasing: a digest collision must
                // fall through to a normal append, never merge.
                let shared_payload = if shared.segment == fresh.id() {
                    fresh.read(shared).ok()
                } else {
                    fresh_readers
                        .get_mut(&shared.segment)
                        .and_then(|f| read_record(f, shared).ok())
                };
                if shared_payload.as_deref() == Some(&payload[..]) {
                    moved.push(RecordRef {
                        key: rec.key,
                        ..shared
                    });
                    stats.kept_records += 1;
                    stats.deduped_records += 1;
                    stats.deduped_bytes += REC_HEADER_LEN + payload.len() as u64;
                    continue;
                }
            }
            if fresh.len() + REC_HEADER_LEN + payload.len() as u64 > self.config.segment_bytes
                && !fresh.is_empty()
            {
                fresh.sync()?;
                fresh_readers.insert(fresh.id(), open_reader(&self.dir, fresh.id())?);
                let id = fresh.id() + 1;
                fresh = Segment::create(&self.dir, id)?;
            }
            let new_rec = fresh.append(rec.key, &payload)?;
            written.entry(digest).or_insert(new_rec);
            moved.push(new_rec);
            stats.kept_records += 1;
        }
        fresh.sync()?;
        stats.dropped_records = disk_records - stats.kept_records;
        self.counters.evicted += stats.dropped_records;

        // Point the index at the fresh copies, then drop the old files.
        for rec in moved {
            self.index.insert(rec)?;
        }
        self.readers = fresh_readers;
        self.active = fresh;
        for &id in &old_ids {
            let _ = std::fs::remove_file(self.dir.join(crate::segment::segment_file_name(id)));
        }
        self.flush()?;
        stats.bytes_after = self.stat()?.total_bytes;
        Ok(stats)
    }

    /// Segment ids currently part of the store, ascending.
    fn segment_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.readers.keys().copied().collect();
        ids.push(self.active.id());
        ids.sort_unstable();
        ids
    }

    /// Seal the active segment, open a successor, and enforce budget.
    fn rotate(&mut self) -> io::Result<()> {
        self.active.sync()?;
        let old_id = self.active.id();
        let new_id = old_id + 1;
        self.readers.insert(old_id, open_reader(&self.dir, old_id)?);
        self.active = Segment::create(&self.dir, new_id)?;
        self.enforce_budget()?;
        Ok(())
    }

    /// Drop oldest sealed segments until the store fits its budget.
    fn enforce_budget(&mut self) -> io::Result<()> {
        loop {
            let ids = self.segment_ids();
            let mut total = 0u64;
            for &id in &ids {
                total +=
                    std::fs::metadata(self.dir.join(crate::segment::segment_file_name(id)))?.len();
            }
            if total <= self.config.budget_bytes || ids.len() <= 1 {
                return Ok(());
            }
            let oldest = ids[0];
            if oldest == self.active.id() {
                return Ok(());
            }
            // Tombstone every index entry that lives in the segment.
            let mut doomed = Vec::new();
            self.index.for_each(|rec| {
                if rec.segment == oldest {
                    doomed.push(rec.key);
                }
            });
            for key in doomed {
                self.index.remove(key);
                self.counters.evicted += 1;
            }
            self.readers.remove(&oldest);
            std::fs::remove_file(self.dir.join(crate::segment::segment_file_name(oldest)))?;
        }
    }

    fn mark_unflushed(&mut self) -> io::Result<()> {
        if !self.unflushed {
            self.index.set_dirty(true)?;
            self.unflushed = true;
        }
        Ok(())
    }

    /// Drop the store *without* the clean flush, leaving the on-disk
    /// dirty flag set — exactly the state a killed process leaves
    /// behind. For crash-recovery testing; the directory lock is still
    /// released so the store can be reopened.
    pub fn abandon(mut self) {
        self.unflushed = false;
    }
}

impl Drop for CacheStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// FNV-64 fingerprint of the segment set: sorted (id, file length)
/// pairs. Any append, rotation, eviction, or torn tail changes it.
fn seg_state_of(dir: &Path, seg_ids: &[u64]) -> io::Result<u64> {
    let mut h = Fnv64::new();
    for &id in seg_ids {
        let len = std::fs::metadata(dir.join(crate::segment::segment_file_name(id)))?.len();
        h.write_u64(id);
        h.write_u64(len);
    }
    Ok(h.finish())
}

/// Enumerate segment ids in `dir`, ascending.
fn list_segment_ids(dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(id) = parse_segment_file_name(name) {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

fn open_reader(dir: &Path, id: u64) -> io::Result<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .open(dir.join(crate::segment::segment_file_name(id)))
}

/// Full rebuild: scan every segment (truncating torn tails), then
/// construct a fresh index over the surviving records. Later records
/// supersede earlier ones for the same key, matching append order.
#[allow(clippy::type_complexity)]
fn rebuild(
    dir: &Path,
    seg_ids: &[u64],
    counters: &mut StoreCounters,
) -> io::Result<(Index, Segment, HashMap<u64, File>)> {
    let mut all: Vec<RecordRef> = Vec::new();
    let active_id = *seg_ids.last().unwrap_or(&0);
    let mut active = None;
    let mut readers = HashMap::new();
    for &id in seg_ids {
        let (seg, scan) = Segment::open(dir, id)?;
        counters.torn_bytes += scan.torn_bytes;
        all.extend(scan.records);
        if id == active_id {
            active = Some(seg);
        } else {
            drop(seg);
            readers.insert(id, open_reader(dir, id)?);
        }
    }
    let active = active
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "store has no active segment"))?;
    let mut index = Index::create(dir, (all.len() as u64).saturating_mul(2).max(64))?;
    for rec in all {
        index.insert(rec)?;
    }
    index.set_seg_state(seg_state_of(dir, seg_ids)?);
    index.set_dirty(false)?;
    index.sync()?;
    Ok((index, active, readers))
}

/// Take the directory's advisory lock, failing fast if another process
/// holds it. The lock releases automatically when the process dies.
fn acquire_dir_lock(dir: &Path) -> io::Result<File> {
    let lock = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join("lock"))?;
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        // SAFETY: plain syscall on an fd we own.
        let rc = unsafe { sys::flock(lock.as_raw_fd(), sys::LOCK_EX | sys::LOCK_NB) };
        if rc != 0 {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!(
                    "cache store at {} is locked by another process",
                    dir.display()
                ),
            ));
        }
    }
    Ok(lock)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "splendid-store-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            budget_bytes: 4096,
            segment_bytes: 512,
        }
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let dir = temp_dir("rt");
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(1), None);
        store.put(1, b"hello").unwrap();
        store.put(2, b"world").unwrap();
        assert_eq!(store.get(1).as_deref(), Some(&b"hello"[..]));
        assert_eq!(store.get(2).as_deref(), Some(&b"world"[..]));
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.fills), (2, 1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_reopen_without_rebuild() {
        let dir = temp_dir("warm");
        {
            let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
            for k in 0..50u64 {
                store.put(k, format!("payload-{k}").as_bytes()).unwrap();
            }
            store.flush().unwrap();
        }
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(
            store.counters().rebuilds,
            0,
            "clean reopen must trust the index"
        );
        for k in 0..50u64 {
            assert_eq!(store.get(k), Some(format!("payload-{k}").into_bytes()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_index_forces_rebuild_and_recovers_everything() {
        let dir = temp_dir("dirty");
        {
            let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
            for k in 0..20u64 {
                store.put(k, b"v").unwrap();
            }
            store.active.sync().unwrap();
            store.abandon(); // crash: dirty flag stays set on disk
        }
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.counters().rebuilds, 1);
        for k in 0..20u64 {
            assert_eq!(store.get(k).as_deref(), Some(&b"v"[..]));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newer_put_supersedes_older() {
        let dir = temp_dir("supersede");
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        store.put(9, b"old").unwrap();
        store.put(9, b"new").unwrap();
        assert_eq!(store.get(9).as_deref(), Some(&b"new"[..]));
        // Still true after a rebuild (append order must win).
        store.active.sync().unwrap();
        store.abandon();
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(9).as_deref(), Some(&b"new"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_budget_evict_oldest() {
        let dir = temp_dir("budget");
        let mut store = CacheStore::open(&dir, small_config()).unwrap();
        let blob = vec![0xAAu8; 100];
        for k in 0..200u64 {
            store.put(k, &blob).unwrap();
        }
        let stat = store.stat().unwrap();
        assert!(
            stat.total_bytes <= small_config().budget_bytes + small_config().segment_bytes,
            "budget not enforced: {} bytes on disk",
            stat.total_bytes
        );
        assert!(store.counters().evicted > 0);
        // Newest keys survive; oldest were dropped with their segments.
        assert!(store.get(199).is_some());
        assert!(store.get(0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_clean_store() {
        let dir = temp_dir("verify");
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        for k in 0..10u64 {
            store.put(k, b"payload").unwrap();
        }
        store.flush().unwrap();
        let report = store.verify().unwrap();
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.index_entries, 10);
        assert_eq!(report.disk_records, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_reclaims_superseded_space() {
        let dir = temp_dir("compact");
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        for _ in 0..20 {
            store.put(1, &[0xBB; 200]).unwrap();
        }
        store.put(2, b"keep-me").unwrap();
        store.flush().unwrap();
        let before = store.stat().unwrap().total_bytes;
        let stats = store.compact().unwrap();
        assert_eq!(stats.kept_records, 2);
        assert!(stats.dropped_records >= 19);
        assert!(stats.bytes_after < before);
        assert_eq!(store.get(1).as_deref(), Some(&vec![0xBB; 200][..]));
        assert_eq!(store.get(2).as_deref(), Some(&b"keep-me"[..]));
        assert!(store.verify().unwrap().ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_deduplicates_identical_payloads() {
        let dir = temp_dir("dedup");
        let blob = vec![0xCD; 300];
        {
            let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
            for k in 0..10u64 {
                store.put(k, &blob).unwrap();
            }
            store.put(99, b"unique").unwrap();
            store.flush().unwrap();
            let before = store.stat().unwrap().total_bytes;

            let stats = store.compact().unwrap();
            assert_eq!(stats.kept_records, 11, "{stats:?}");
            assert_eq!(
                stats.deduped_records, 9,
                "ten identical blobs collapse onto one record: {stats:?}"
            );
            assert!(stats.deduped_bytes >= 9 * 300, "{stats:?}");
            assert!(
                stats.bytes_after + stats.deduped_bytes <= before,
                "dedup must actually save bytes: {stats:?}"
            );

            // Every key still resolves to its exact payload.
            for k in 0..10u64 {
                assert_eq!(store.get(k).as_deref(), Some(&blob[..]));
            }
            assert_eq!(store.get(99).as_deref(), Some(&b"unique"[..]));
            assert!(store.verify().unwrap().ok());
            store.flush().unwrap();
        }

        // Aliases live in the index: a clean reopen (trusted index)
        // keeps serving every key.
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.counters().rebuilds, 0);
        for k in 0..10u64 {
            assert_eq!(store.get(k).as_deref(), Some(&blob[..]));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_after_dedup_degrades_aliases_to_misses_not_corruption() {
        // A post-crash rescan maps each physical record to its stored
        // key: the canonical key survives, aliased keys miss (and would
        // simply re-fill). Nothing may ever resolve to wrong bytes.
        let dir = temp_dir("dedup-rebuild");
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        store.put(1, b"shared-bytes").unwrap();
        store.put(2, b"shared-bytes").unwrap();
        store.flush().unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.deduped_records, 1);
        // Compaction flushes clean; dirty the store again so the next
        // open must rebuild, then "crash" without flushing.
        store.put(3, b"other").unwrap();
        store.active.sync().unwrap();
        store.abandon();

        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.counters().rebuilds, 1);
        // Key 1 owns the physical record; key 2 was an alias and is now
        // a plain miss.
        assert_eq!(store.get(1).as_deref(), Some(&b"shared-bytes"[..]));
        assert_eq!(store.get(2), None);
        // Re-filling the lost alias works as usual.
        store.put(2, b"shared-bytes").unwrap();
        assert_eq!(store.get(2).as_deref(), Some(&b"shared-bytes"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn second_writer_is_locked_out() {
        let dir = temp_dir("lock");
        let store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        let second = CacheStore::open(&dir, StoreConfig::default());
        assert!(second.is_err(), "flock must reject a concurrent writer");
        drop(store);
        assert!(CacheStore::open(&dir, StoreConfig::default()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payload_is_rejected_not_written() {
        let dir = temp_dir("oversize");
        let mut store = CacheStore::open(&dir, StoreConfig::default()).unwrap();
        let too_big = vec![0u8; crate::segment::MAX_PAYLOAD as usize + 1];
        assert!(store.put(7, &too_big).is_err());
        assert_eq!(store.get(7), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
