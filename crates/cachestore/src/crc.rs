//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! The store's record integrity check. Hand-rolled because the build is
//! offline by design; the table is computed at compile time so the
//! runtime cost is one lookup per byte.

/// The 256-entry CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Crc32 {
        Crc32::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Crc32 {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ TABLE[((self.0 ^ u32::from(b)) & 0xFF) as usize];
        }
        self
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut c = Crc32::new();
        c.update(b"1234").update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"splendid cache record payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    want,
                    "flip at {byte}:{bit} must change the CRC"
                );
            }
        }
    }
}
