//! A minimal file-backed memory map.
//!
//! Unix targets map the index file with direct `libc` FFI (`mmap` /
//! `msync` / `munmap` — the same zero-dependency style as the daemon's
//! signal handling); other targets fall back to a heap buffer that is
//! read at open and written back on [`MmapFile::sync`]. Both expose the
//! same byte-slice surface, so the index code above is platform-blind.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_SHARED: i32 = 0x01;
    #[cfg(target_os = "linux")]
    pub const MS_SYNC: i32 = 4;
    #[cfg(not(target_os = "linux"))]
    pub const MS_SYNC: i32 = 0x0010;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn msync(addr: *mut c_void, len: usize, flags: i32) -> i32;
    }
}

/// A writable, file-backed byte region of fixed length.
pub struct MmapFile {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(not(unix))]
    buf: Vec<u8>,
    len: usize,
    file: File,
}

// SAFETY: the mapping is a plain byte region owned by this struct; all
// access goes through `&self`/`&mut self`, so aliasing discipline is the
// borrow checker's. The raw pointer itself is thread-agnostic.
#[cfg(unix)]
unsafe impl Send for MmapFile {}
#[cfg(unix)]
unsafe impl Sync for MmapFile {}

impl MmapFile {
    /// Map `file` read-write and shared over its first `len` bytes. The
    /// file must already be at least `len` bytes long.
    #[cfg(unix)]
    pub fn map(file: File, len: usize) -> io::Result<MmapFile> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty region",
            ));
        }
        // SAFETY: fd is a valid open file descriptor owned by `file`,
        // which outlives the mapping (held in the struct); len is
        // nonzero; failure is checked against MAP_FAILED below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapFile {
            ptr: ptr.cast(),
            len,
            file,
        })
    }

    /// Heap fallback: read the region at open, write it back on sync.
    #[cfg(not(unix))]
    pub fn map(file: File, len: usize) -> io::Result<MmapFile> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = file;
        let mut buf = vec![0u8; len];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut buf)?;
        Ok(MmapFile { buf, len, file })
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is mapped (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        // SAFETY: ptr..ptr+len is the live mapping established in `map`.
        unsafe {
            std::slice::from_raw_parts(self.ptr, self.len)
        }
        #[cfg(not(unix))]
        &self.buf
    }

    /// The mapped bytes, writable.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        #[cfg(unix)]
        // SAFETY: as `bytes`, and `&mut self` guarantees exclusivity.
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr, self.len)
        }
        #[cfg(not(unix))]
        &mut self.buf
    }

    /// Flush the region to the backing file (blocking).
    pub fn sync(&mut self) -> io::Result<()> {
        #[cfg(unix)]
        {
            // SAFETY: the region is the live mapping from `map`.
            let rc = unsafe { sys::msync(self.ptr.cast(), self.len, sys::MS_SYNC) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            self.file.seek(SeekFrom::Start(0))?;
            self.file.write_all(&self.buf)?;
            self.file.sync_data()
        }
    }

    /// Read a little-endian `u64` at `offset`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        let b = &self.bytes()[offset..offset + 8];
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Write a little-endian `u64` at `offset`.
    pub fn write_u64(&mut self, offset: usize, v: u64) {
        self.bytes_mut()[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u32` at `offset`.
    pub fn read_u32(&self, offset: usize) -> u32 {
        let b = &self.bytes()[offset..offset + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Write a little-endian `u32` at `offset`.
    pub fn write_u32(&mut self, offset: usize, v: u32) {
        self.bytes_mut()[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: unmapping the exact region returned by `mmap`; the
        // pointer is never used again (we are in drop).
        unsafe {
            sys::munmap(self.ptr.cast(), self.len);
        }
        #[cfg(not(unix))]
        {
            let _ = self.sync();
        }
        let _ = self.file.sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "splendid-mmap-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    #[test]
    fn write_sync_read_back() {
        let path = temp_path("rt");
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(4096).unwrap();
        let mut map = MmapFile::map(file, 4096).unwrap();
        map.write_u64(0, 0xDEAD_BEEF_CAFE_F00D);
        map.write_u32(8, 42);
        map.bytes_mut()[100] = 0xAB;
        map.sync().unwrap();
        assert_eq!(map.read_u64(0), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(map.read_u32(8), 42);
        drop(map);

        let mut raw = Vec::new();
        std::fs::File::open(&path)
            .unwrap()
            .read_to_end(&mut raw)
            .unwrap();
        assert_eq!(raw.len(), 4096);
        assert_eq!(&raw[0..8], &0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        assert_eq!(raw[100], 0xAB);
        let _ = std::fs::remove_file(&path);
    }
}
