//! # splendid-cachestore
//!
//! Persistent content-addressed cache store for the SPLENDID
//! reproduction: the disk tier under the serve layer's in-memory LRU.
//!
//! The store maps 64-bit content keys (the serve layer's FNV-64
//! `(fingerprint, options)` hashes) to opaque byte payloads. It knows
//! nothing about decompilation — encoding of `FunctionOutput` /
//! `DecompileOutput` blobs lives in `splendid-serve` — which keeps this
//! crate std-only with zero dependencies.
//!
//! Architecture (see DESIGN.md "Persistent cache & tiering"):
//!
//! * [`segment`] — append-only record files with per-record CRC-32
//!   framing; a crash tears at most the record being appended, and a
//!   scan finds the torn tail deterministically.
//! * [`index`] — a linear-probing hash table memory-mapped from disk
//!   (direct `libc` `mmap` FFI on unix, heap fallback elsewhere). The
//!   index is disposable: a dirty flag plus a segment-set fingerprint
//!   decide at open whether it can be trusted or must be rebuilt by
//!   rescanning segments.
//! * [`store`] — ties the two together with a `flock`-guarded store
//!   directory, size-budgeted segment rotation and oldest-first
//!   eviction, full-store `verify`, and `compact`.
//!
//! ```no_run
//! use splendid_cachestore::{CacheStore, StoreConfig};
//! # fn main() -> std::io::Result<()> {
//! let mut store = CacheStore::open(std::path::Path::new("/tmp/cache"), StoreConfig::default())?;
//! store.put(0xF00D, b"decompiled artifact")?;
//! assert_eq!(store.get(0xF00D).as_deref(), Some(&b"decompiled artifact"[..]));
//! store.flush()?; // mark the index clean for an O(1) warm reopen
//! # Ok(()) }
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod crc;
pub mod hash;
pub mod index;
pub mod mmap;
pub mod segment;
pub mod store;

pub use crc::crc32;
pub use hash::fnv64;
pub use store::{CacheStore, CompactStats, StoreConfig, StoreCounters, StoreStats, VerifyReport};
