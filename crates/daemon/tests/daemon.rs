//! End-to-end daemon tests over real sockets: incremental sessions,
//! stats frames, drain semantics, disconnect hygiene, the connection
//! cap, idle eviction, and the Unix-socket listener.

use splendid_cfront::{lower_program, parse_program, LowerOptions};
use splendid_daemon::protocol::{frame_bytes, kind};
use splendid_daemon::{Daemon, DaemonClient, DaemonConfig, ErrorCode, Response};
use splendid_ir::printer::module_str;
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_serve::ServeConfig;
use splendid_transforms::{optimize_module, O2Options};
use std::time::Duration;

/// A small parallelized module with one kernel per constant; editing one
/// constant dirties exactly one prepared function.
fn module_text(consts: &[f64]) -> String {
    let mut src = String::new();
    for (i, c) in consts.iter().enumerate() {
        src.push_str(&format!("double A{i}[64];\ndouble B{i}[64];\n"));
        src.push_str(&format!(
            "void kernel{i}() {{ int j; for (j = 1; j < 63; j++) {{ \
             B{i}[j] = (A{i}[j-1] + A{i}[j+1]) * {c:?}; }} }}\n"
        ));
    }
    let prog = parse_program(&src).unwrap();
    let mut m = lower_program(&prog, "itest", &LowerOptions::default()).unwrap();
    optimize_module(&mut m, &O2Options::default());
    parallelize_module(&mut m, &ParallelizeOptions::default());
    module_str(&m)
}

fn start(config: DaemonConfig) -> Daemon {
    Daemon::start(config).expect("daemon binds on a loopback port")
}

/// Fire a DECOMPILE frame without waiting for its response.
fn send_decompile(client: &mut DaemonClient) -> std::io::Result<()> {
    client.send_raw(&frame_bytes(kind::DECOMPILE, &[]))
}

fn connect(daemon: &Daemon) -> DaemonClient {
    let client = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
}

#[test]
fn incremental_session_over_tcp() {
    let daemon = start(DaemonConfig::default());
    let mut client = connect(&daemon);
    client.ping().unwrap();

    let base = module_text(&[0.25, 0.5, 0.75]);
    let (session, functions) = client.open("itest", 3, &base).unwrap();
    assert!(session > 0);
    assert_eq!(functions, 3);

    let first = client.decompile().unwrap();
    let Response::Result {
        functions,
        dirty,
        fast_path,
        source: first_source,
        ..
    } = first
    else {
        panic!("expected RESULT");
    };
    assert_eq!((functions, dirty, fast_path), (3, 3, false));

    // Edit exactly one kernel: one dirty, the rest served from cache.
    let edited = module_text(&[0.25, 0.625, 0.75]);
    let Response::Updated { dirty, total, .. } = client.update(&edited).unwrap() else {
        panic!("expected UPDATED");
    };
    assert_eq!((dirty, total), (1, 3));
    let Response::Result {
        cached,
        dirty,
        fast_path,
        source: second_source,
        ..
    } = client.decompile().unwrap()
    else {
        panic!("expected RESULT");
    };
    assert_eq!((cached, dirty, fast_path), (2, 1, false));
    assert_ne!(first_source, second_source);

    // Nothing dirty: the session answers without the scheduler.
    let Response::Result {
        fast_path, source, ..
    } = client.decompile().unwrap()
    else {
        panic!("expected RESULT");
    };
    assert!(fast_path);
    assert_eq!(source, second_source);

    // Stats surfaces: session-scoped and daemon-wide.
    let session_stats = client.stats(false).unwrap();
    assert!(session_stats.contains("session"), "{session_stats}");
    assert!(session_stats.contains("decompile"), "{session_stats}");
    let daemon_stats = client.stats(true).unwrap();
    assert!(daemon_stats.contains("daemon stats"), "{daemon_stats}");
    assert!(daemon_stats.contains("sessions"), "{daemon_stats}");

    client.close().unwrap();
    assert_eq!(daemon.open_sessions(), 0);
    client.ping().unwrap(); // connection outlives the session
    assert!(daemon.drain());
}

#[test]
fn drain_completes_inflight_decompile() {
    // One worker so a queued decompile is reliably still in flight when
    // the drain starts.
    let daemon = start(DaemonConfig {
        serve: ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();

    let module = module_text(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let mut front = DaemonClient::connect_tcp(addr).unwrap();
    front
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    front.open("front", 3, &module).unwrap();
    let mut back = DaemonClient::connect_tcp(addr).unwrap();
    back.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    back.open("back", 3, &module_text(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]))
        .unwrap();

    // Fire both DECOMPILEs without waiting; `back` queues behind `front`
    // on the single worker, so it is mid-request when the drain begins.
    send_decompile(&mut front).unwrap();
    send_decompile(&mut back).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let drainer = std::thread::spawn(move || daemon.drain());

    // Both in-flight requests complete with real results.
    for client in [&mut front, &mut back] {
        match client.read_response().unwrap() {
            Response::Result { functions, .. } => assert_eq!(functions, 6),
            other => panic!("in-flight decompile should finish during drain, got {other:?}"),
        }
    }
    assert!(drainer.join().unwrap(), "drain wound down cleanly");
}

#[test]
fn mid_request_disconnect_leaves_daemon_healthy() {
    let daemon = start(DaemonConfig::default());
    let module = module_text(&[0.1, 0.2, 0.3]);

    {
        let mut client = connect(&daemon);
        client.open("gone", 3, &module).unwrap();
        // Fire a DECOMPILE and hang up before the response arrives.
        send_decompile(&mut client).unwrap();
    } // drop = close

    // The handler notices the dead peer when its send fails and
    // unregisters the session.
    let mut waited = 0;
    while daemon.open_sessions() > 0 && waited < 100 {
        std::thread::sleep(Duration::from_millis(50));
        waited += 1;
    }
    assert_eq!(daemon.open_sessions(), 0, "no leaked sessions");

    // And the daemon still serves new work.
    let mut client = connect(&daemon);
    client.ping().unwrap();
    let (_, functions) = client.open("after", 3, &module).unwrap();
    assert_eq!(functions, 3);
    client.close().unwrap();
    assert!(daemon.drain());
}

#[test]
fn connection_cap_applies_backpressure() {
    let daemon = start(DaemonConfig {
        max_connections: 1,
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();

    let mut first = DaemonClient::connect_tcp(addr).unwrap();
    first
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    first.ping().unwrap();

    // Second connection sits in the OS accept backlog: the TCP connect
    // succeeds but no handler answers while the cap is occupied.
    let mut second = DaemonClient::connect_tcp(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    assert!(
        second.ping().is_err(),
        "capped connection must not be served"
    );

    // Freeing the slot lets the queued connection through; the PING it
    // already sent is answered once accepted.
    drop(first);
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match second.read_response().unwrap() {
        Response::Pong => {}
        other => panic!("expected the queued PING's PONG, got {other:?}"),
    }
    drop(second);
    assert!(daemon.drain());
}

#[test]
fn idle_sessions_are_evicted() {
    let daemon = start(DaemonConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..DaemonConfig::default()
    });
    let mut client = connect(&daemon);
    client.open("idle", 3, &module_text(&[0.5])).unwrap();
    assert_eq!(daemon.open_sessions(), 1);

    // Sit past the idle timeout: the daemon sends a typed error and
    // evicts the session.
    std::thread::sleep(Duration::from_millis(600));
    match client.read_response() {
        Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::IdleTimeout),
        Ok(other) => panic!("expected idle-timeout ERROR, got {other:?}"),
        Err(e) => panic!("expected idle-timeout ERROR before close: {e}"),
    }
    let mut waited = 0;
    while daemon.open_sessions() > 0 && waited < 100 {
        std::thread::sleep(Duration::from_millis(20));
        waited += 1;
    }
    assert_eq!(daemon.open_sessions(), 0);
    assert_eq!(
        daemon
            .stats()
            .sessions_evicted
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert!(daemon.drain());
}

#[cfg(unix)]
#[test]
fn unix_socket_roundtrip() {
    let path =
        std::env::temp_dir().join(format!("splendid-daemon-test-{}.sock", std::process::id()));
    let daemon = start(DaemonConfig {
        unix_path: Some(path.clone()),
        ..DaemonConfig::default()
    });
    let mut client = DaemonClient::connect_unix(&path).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client.ping().unwrap();
    let (_, functions) = client.open("unix", 3, &module_text(&[0.5, 0.75])).unwrap();
    assert_eq!(functions, 2);
    match client.decompile().unwrap() {
        Response::Result { functions, .. } => assert_eq!(functions, 2),
        other => panic!("expected RESULT, got {other:?}"),
    }
    client.close().unwrap();
    drop(client);
    assert!(daemon.drain());
    assert!(!path.exists(), "drain removes the socket file");
}

/// A TCP listener that never accepts: connects succeed (the OS backlog
/// takes them) but every read against it runs out the peer timeout — a
/// deterministic dead peer, independent of machine speed.
fn blackhole_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::mem::forget(listener); // held open for the rest of the test process
    addr
}

/// DaemonConfig with one worker, a one-slot admission queue, and a dead
/// peer whose timeout stretches any cold decompile to a deterministic
/// several hundred ms: the saturation fixture for the tests below.
fn saturated_config() -> DaemonConfig {
    DaemonConfig {
        peer: Some(blackhole_addr()),
        peer_timeout: Duration::from_millis(300),
        serve: ServeConfig {
            workers: 1,
            max_pending_jobs: 1,
            ..ServeConfig::default()
        },
        ..DaemonConfig::default()
    }
}

#[test]
fn slow_request_does_not_count_as_idle() {
    // Regression test: a request whose *service time* exceeds the idle
    // timeout must not get its session evicted the moment the response
    // goes out. The dead peer makes the cold decompile pay ~3 peer
    // timeouts (get / put / get, then the breaker trips), far past the
    // idle window, without depending on compute speed.
    let daemon = start(DaemonConfig {
        idle_timeout: Some(Duration::from_millis(250)),
        peer: Some(blackhole_addr()),
        peer_timeout: Duration::from_millis(200),
        serve: ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        ..DaemonConfig::default()
    });
    let mut client = connect(&daemon);
    client
        .open("slow", 3, &module_text(&[0.1, 0.2, 0.3, 0.4]))
        .unwrap();

    let t = std::time::Instant::now();
    match client.decompile().unwrap() {
        Response::Result { functions, .. } => assert_eq!(functions, 4),
        other => panic!("expected RESULT, got {other:?}"),
    }
    assert!(
        t.elapsed() >= Duration::from_millis(250),
        "premise: the dead peer must stretch this request past the idle \
         window (took {:?})",
        t.elapsed()
    );

    // Sit out one idle-check tick (100ms) but stay inside the idle
    // window as measured from the *end* of the slow request. Before the
    // fix, `last_activity` still pointed at the request's arrival, so
    // the first tick after the response evicted the session.
    std::thread::sleep(Duration::from_millis(150));
    client.ping().unwrap();
    match client.decompile().unwrap() {
        Response::Result { fast_path, .. } => assert!(fast_path, "session state survived"),
        other => panic!("expected RESULT, got {other:?}"),
    }
    assert_eq!(
        daemon
            .stats()
            .sessions_evicted
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "service time must not be billed as idleness"
    );
    client.close().unwrap();
    assert!(daemon.drain());
}

#[test]
fn saturated_daemon_sheds_busy_and_recovers() {
    let daemon = start(saturated_config());

    // Blocker occupies the single worker with a dead-peer-stretched job
    // and holds the one admission slot.
    let mut blocker = connect(&daemon);
    blocker
        .open("blocker", 3, &module_text(&[1.0, 2.0, 3.0]))
        .unwrap();
    send_decompile(&mut blocker).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // admitted, in flight

    // A second session's DECOMPILE finds the queue full: typed BUSY
    // with a retry hint, not an error, and the connection survives.
    let mut shed = connect(&daemon);
    shed.open("shed", 3, &module_text(&[4.0])).unwrap();
    let retry_after_ms = match shed.decompile_with_budget(0).unwrap() {
        Response::Busy { retry_after_ms } => retry_after_ms,
        other => panic!("expected BUSY from a saturated daemon, got {other:?}"),
    };
    assert!(retry_after_ms > 0, "BUSY must carry a retry hint");

    // Honouring the hint eventually lands the request once the blocker
    // completes — BUSY is backpressure, not rejection.
    let mut attempts = 0;
    loop {
        match shed.decompile_with_budget(0).unwrap() {
            Response::Result { functions, .. } => {
                assert_eq!(functions, 1);
                break;
            }
            Response::Busy { retry_after_ms } => {
                attempts += 1;
                assert!(attempts < 200, "still BUSY after 200 retries");
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms).min(50)));
            }
            other => panic!("expected RESULT or BUSY, got {other:?}"),
        }
    }
    match blocker.read_response().unwrap() {
        Response::Result { functions, .. } => assert_eq!(functions, 3),
        other => panic!("blocker's admitted job must complete, got {other:?}"),
    }

    // Both ledgers saw the shed: the scheduler's queue-full counter and
    // the daemon's BUSY-responses counter.
    assert!(daemon.serve_stats().jobs_shed_queue >= 1);
    assert!(
        daemon
            .stats()
            .requests_shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    let stats_text = shed.stats(true).unwrap();
    assert!(stats_text.contains("shed busy"), "{stats_text}");
    assert!(daemon.drain());
}

#[test]
fn drain_under_saturation_completes_admitted_work() {
    let daemon = start(saturated_config());

    let mut blocker = connect(&daemon);
    blocker
        .open("blocker", 3, &module_text(&[5.0, 6.0, 7.0]))
        .unwrap();
    send_decompile(&mut blocker).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // admitted, in flight

    // Saturation is real before the drain starts: a second session is
    // shed with BUSY.
    let mut late = connect(&daemon);
    late.open("late", 3, &module_text(&[8.0])).unwrap();
    match late.decompile_with_budget(0).unwrap() {
        Response::Busy { .. } => {}
        other => panic!("expected BUSY before drain, got {other:?}"),
    }
    assert!(
        daemon
            .stats()
            .requests_shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    let drainer = std::thread::spawn(move || daemon.drain());

    // The admitted in-flight job completes with a real result even
    // though the drain began mid-request.
    match blocker.read_response().unwrap() {
        Response::Result { functions, .. } => assert_eq!(functions, 3),
        other => panic!("admitted decompile must finish during drain, got {other:?}"),
    }

    // Work arriving after the drain began is refused — either with the
    // typed DRAINING error or, if the handler already observed the drain
    // on an idle tick, by winding the connection down.
    match late.roundtrip(&splendid_daemon::protocol::Request::Decompile { budget_ms: 0 }) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Draining),
        Ok(other) => panic!("draining daemon must refuse new work, got {other:?}"),
        Err(_) => {} // connection already closed by the drain: also a refusal
    }

    assert!(drainer.join().unwrap(), "drain wound down cleanly");
}

#[test]
fn validate_request_is_stateless_and_annotates() {
    let daemon = start(DaemonConfig::default());
    let mut client = connect(&daemon);

    // No OPEN needed: VALIDATE carries the module with it.
    let text = module_text(&[0.5]);
    let resp = client.validate("vtest", 3, &text).unwrap();
    let Response::Validated {
        functions,
        verified,
        unverified,
        source,
        ..
    } = resp
    else {
        panic!("expected VALIDATED");
    };
    assert_eq!(functions, 1);
    assert_eq!(
        verified + unverified,
        functions,
        "every function gets a verdict"
    );
    assert_eq!(verified, 1, "the stencil kernel verifies");
    assert!(source.contains("splendid: verified"), "{source}");

    // Garbage module text is a typed error, not a dropped connection.
    use splendid_daemon::protocol::Request;
    match client
        .roundtrip(&Request::Validate {
            name: "g".into(),
            variant: 3,
            module_text: "not ir at all".into(),
        })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ModuleParse),
        other => panic!("expected ERROR, got {other:?}"),
    }
    // A bad variant byte is BadPayload, and the connection stays usable.
    match client
        .roundtrip(&Request::Validate {
            name: "g".into(),
            variant: 9,
            module_text: text.clone(),
        })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadPayload),
        other => panic!("expected ERROR, got {other:?}"),
    }
    client.ping().unwrap();
    drop(client);
    assert!(daemon.drain());
}
