//! Replay the malformed-frame corpus (`tests/malformed/*.hex`) against a
//! live daemon. The contract under test: malformed input yields typed
//! ERROR frames (or silence, for truncations) — it never kills the
//! daemon, and never leaks a session.
//!
//! Corpus format (shared with `splendid connect --malformed`):
//! whitespace-separated hex bytes, `#` comments to end of line.

use splendid_daemon::{Daemon, DaemonClient, DaemonConfig, ErrorCode, Response};
use std::path::Path;
use std::time::Duration;

fn parse_hex(text: &str) -> Vec<u8> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .flat_map(str::split_whitespace)
        .map(|tok| u8::from_str_radix(tok, 16).expect("corpus tokens are hex bytes"))
        .collect()
}

/// Responses the daemon produced for one corpus file, drained until the
/// short read timeout.
fn replay(daemon: &Daemon, bytes: &[u8]) -> Vec<Response> {
    let mut client = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_millis(400)))
        .unwrap();
    client.send_raw(bytes).unwrap();
    let mut responses = Vec::new();
    while let Ok(resp) = client.read_response() {
        responses.push(resp);
        if responses.len() > 64 {
            break; // runaway guard; the corpus earns a handful at most
        }
    }
    responses
}

fn error_codes(responses: &[Response]) -> Vec<ErrorCode> {
    responses
        .iter()
        .filter_map(|r| match r {
            Response::Error { code, .. } => Some(*code),
            _ => None,
        })
        .collect()
}

#[test]
fn corpus_never_kills_the_daemon() {
    let daemon = Daemon::start(DaemonConfig::default()).unwrap();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/malformed");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "hex"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 16, "corpus went missing: {entries:?}");

    for path in &entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let bytes = parse_hex(&std::fs::read_to_string(path).unwrap());
        let responses = replay(&daemon, &bytes);
        let codes = error_codes(&responses);

        match name.as_str() {
            "ping" => assert!(
                responses.iter().any(|r| matches!(r, Response::Pong)),
                "{name}: valid PING must be answered"
            ),
            "bad-magic" | "garbage" => assert_eq!(
                codes,
                vec![ErrorCode::Desync],
                "{name}: one desync per garbage run"
            ),
            "bad-version" => assert_eq!(codes, vec![ErrorCode::BadVersion], "{name}"),
            "unknown-kind" => assert_eq!(codes, vec![ErrorCode::UnknownKind], "{name}"),
            "oversized-len" => assert_eq!(codes, vec![ErrorCode::Oversized], "{name}"),
            "bad-payload-open" => assert_eq!(codes, vec![ErrorCode::BadPayload], "{name}"),
            "update-no-session" => assert_eq!(codes, vec![ErrorCode::NoSession], "{name}"),
            "busy-kind-request" => assert_eq!(
                codes,
                vec![ErrorCode::UnknownKind],
                "{name}: BUSY is a response kind, never a request"
            ),
            "decompile-truncated-budget" => {
                assert_eq!(codes, vec![ErrorCode::BadPayload], "{name}")
            }
            "decompile-budget-no-session" => {
                assert_eq!(codes, vec![ErrorCode::NoSession], "{name}")
            }
            "cache-get-no-cache" => assert_eq!(
                codes,
                vec![ErrorCode::NoCache],
                "{name}: this daemon runs without --cache-dir"
            ),
            "cache-put-truncated-blob" => {
                assert_eq!(codes, vec![ErrorCode::BadPayload], "{name}")
            }
            "cache-put-oversized" => assert_eq!(codes, vec![ErrorCode::Oversized], "{name}"),
            // Truncations produce no response at all: the assembler is
            // still waiting for the rest of the frame.
            "truncated-header" | "truncated-payload" => {
                assert!(responses.is_empty(), "{name}: got {responses:?}")
            }
            other => panic!("corpus file {other}.hex has no expectation recorded here"),
        }

        // Liveness after every file, on a fresh connection: the daemon
        // survived whatever the corpus threw at it.
        let mut probe = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        probe.ping().unwrap_or_else(|e| {
            panic!("daemon unresponsive after replaying {name}: {e}");
        });
    }

    assert_eq!(daemon.open_sessions(), 0, "corpus must not leak sessions");
    assert!(daemon.drain());
}
