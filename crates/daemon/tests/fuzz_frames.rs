//! Seeded frame fuzzing, reusing core's deterministic [`FaultRng`]: the
//! assembler must recover every well-formed frame embedded in garbage,
//! and a live daemon must answer a valid PING after arbitrary noise.

use splendid_core::FaultRng;
use splendid_daemon::protocol::{frame_bytes, kind, FrameAssembler, FrameEvent, MAGIC, VERSION};
use splendid_daemon::{Daemon, DaemonClient, DaemonConfig, Response};
use std::time::Duration;

/// Garbage that can never alias a frame boundary: scrub the magic's
/// first byte so an embedded `b"SPLD"` cannot appear by chance (which
/// would make the assembler legitimately swallow a following frame as
/// that ghost frame's payload).
fn garbage(rng: &mut FaultRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| {
            let b = (rng.next_u64() & 0xFF) as u8;
            if b == MAGIC[0] {
                0x00
            } else {
                b
            }
        })
        .collect()
}

#[test]
fn assembler_recovers_every_valid_frame_from_noise() {
    for seed in 0..64u64 {
        let mut rng = FaultRng::new(seed);
        let mut stream = Vec::new();
        let mut pings = 0u32;
        for _ in 0..32 {
            match rng.below(4) {
                0 => {
                    stream.extend_from_slice(&frame_bytes(kind::PING, &[]));
                    pings += 1;
                }
                1 => {
                    let len = 1 + rng.below(63) as usize;
                    stream.extend_from_slice(&garbage(&mut rng, len));
                }
                2 => {
                    // Well-framed but wrong protocol version: still a
                    // clean Frame event, never a desync.
                    let mut f = frame_bytes(kind::PING, &[]);
                    f[4] = 9;
                    stream.extend_from_slice(&f);
                }
                _ => {
                    // Well-framed unknown kind with a small payload.
                    stream.extend_from_slice(&frame_bytes(0x7F, &[1, 2, 3]));
                }
            }
        }

        // Feed in rng-sized chunks; drain events after every push.
        let mut assembler = FrameAssembler::new();
        let mut recovered = 0u32;
        let mut offset = 0;
        while offset < stream.len() {
            let step = (1 + rng.below(97) as usize).min(stream.len() - offset);
            assembler.push(&stream[offset..offset + step]);
            offset += step;
            while let Some(event) = assembler.next_event() {
                if let FrameEvent::Frame {
                    version,
                    kind: frame_kind,
                    ..
                } = event
                {
                    if version == VERSION && frame_kind == kind::PING {
                        recovered += 1;
                    }
                }
            }
        }
        assert_eq!(
            recovered, pings,
            "seed {seed}: every injected PING must survive the noise"
        );
    }
}

/// Seeded fuzz over the CACHE_GET/CACHE_PUT surface of a daemon that
/// *does* have a persistent tier: every frame — valid-but-missing keys,
/// garbage blobs, truncated keys, blob lengths overrunning the payload —
/// earns exactly one typed answer, and nothing kills the connection.
#[test]
fn cache_frames_earn_typed_answers_under_fuzz() {
    let dir = std::env::temp_dir().join(format!("splendid-fuzz-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = Daemon::start(DaemonConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();

    for seed in 300..316u64 {
        let mut rng = FaultRng::new(seed);
        let mut client = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for round in 0..16 {
            let ctx = format!("seed {seed} round {round}");
            match rng.below(4) {
                0 => {
                    // Well-formed GET for a random key: the store holds
                    // nothing (garbage puts below are all rejected), so
                    // this must be a clean miss, not an error.
                    let payload = rng.next_u64().to_le_bytes();
                    client
                        .send_raw(&frame_bytes(kind::CACHE_GET, &payload))
                        .unwrap();
                    match client.read_response().unwrap() {
                        Response::CacheValue { blob } => assert!(blob.is_none(), "{ctx}"),
                        other => panic!("{ctx}: expected CACHE_VALUE, got {other:?}"),
                    }
                }
                1 => {
                    // Well-formed PUT carrying a garbage blob: record
                    // validation must reject it politely (stored=false).
                    // `garbage` scrubs the leading 'S', so a blob can
                    // never alias a real record envelope by chance.
                    let len = rng.below(128) as usize;
                    let mut payload = Vec::new();
                    payload.extend_from_slice(&rng.next_u64().to_le_bytes());
                    payload.extend_from_slice(&(len as u32).to_le_bytes());
                    payload.extend_from_slice(&garbage(&mut rng, len));
                    client
                        .send_raw(&frame_bytes(kind::CACHE_PUT, &payload))
                        .unwrap();
                    match client.read_response().unwrap() {
                        Response::CacheStored { stored } => assert!(!stored, "{ctx}"),
                        other => panic!("{ctx}: expected CACHE_STORED, got {other:?}"),
                    }
                }
                2 => {
                    // GET with a truncated key (0-7 bytes): BadPayload.
                    let cut = rng.below(8) as usize;
                    client
                        .send_raw(&frame_bytes(kind::CACHE_GET, &vec![0xAB; cut]))
                        .unwrap();
                    match client.read_response().unwrap() {
                        Response::Error { code, .. } => {
                            assert_eq!(code, splendid_daemon::ErrorCode::BadPayload, "{ctx}")
                        }
                        other => panic!("{ctx}: expected ERROR, got {other:?}"),
                    }
                }
                _ => {
                    // PUT whose declared blob length overruns the actual
                    // payload: BadPayload, never a hang waiting for more.
                    let mut payload = Vec::new();
                    payload.extend_from_slice(&rng.next_u64().to_le_bytes());
                    payload.extend_from_slice(&1024u32.to_le_bytes());
                    payload.extend_from_slice(&garbage(&mut rng, 8));
                    client
                        .send_raw(&frame_bytes(kind::CACHE_PUT, &payload))
                        .unwrap();
                    match client.read_response().unwrap() {
                        Response::Error { code, .. } => {
                            assert_eq!(code, splendid_daemon::ErrorCode::BadPayload, "{ctx}")
                        }
                        other => panic!("{ctx}: expected ERROR, got {other:?}"),
                    }
                }
            }
        }
        // The connection survived all of it.
        client.ping().unwrap();
    }

    assert!(daemon.drain());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded fuzz over the DECOMPILE-budget and BUSY surfaces: random
/// budgets on sessionless DECOMPILEs (decode fine, then NoSession),
/// truncated budget payloads (BadPayload), and BUSY frames sent *to*
/// the daemon (UnknownKind — BUSY is strictly a response). Every frame
/// earns exactly one typed answer and the connection survives all of it.
#[test]
fn budget_and_busy_frames_earn_typed_answers_under_fuzz() {
    let daemon = Daemon::start(DaemonConfig::default()).unwrap();
    for seed in 400..416u64 {
        let mut rng = FaultRng::new(seed);
        let mut client = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for round in 0..16 {
            let ctx = format!("seed {seed} round {round}");
            let want = match rng.below(3) {
                0 => {
                    // Sessionless DECOMPILE with an arbitrary budget —
                    // including 0, which travels as the back-compat
                    // empty payload, and u32::MAX.
                    let budget = (rng.next_u64() & 0xFFFF_FFFF) as u32;
                    let payload = if budget == 0 {
                        Vec::new()
                    } else {
                        budget.to_le_bytes().to_vec()
                    };
                    client
                        .send_raw(&frame_bytes(kind::DECOMPILE, &payload))
                        .unwrap();
                    splendid_daemon::ErrorCode::NoSession
                }
                1 => {
                    // A budget that is neither absent nor a whole u32.
                    let cut = 1 + rng.below(3) as usize;
                    client
                        .send_raw(&frame_bytes(kind::DECOMPILE, &vec![0xEE; cut]))
                        .unwrap();
                    splendid_daemon::ErrorCode::BadPayload
                }
                _ => {
                    // A response kind aimed at the daemon.
                    let hint = ((rng.next_u64() & 0xFFFF_FFFF) as u32).to_le_bytes();
                    client.send_raw(&frame_bytes(kind::BUSY, &hint)).unwrap();
                    splendid_daemon::ErrorCode::UnknownKind
                }
            };
            match client.read_response().unwrap() {
                Response::Error { code, .. } => assert_eq!(code, want, "{ctx}"),
                other => panic!("{ctx}: expected ERROR [{want}], got {other:?}"),
            }
        }
        // The connection survived all of it.
        client.ping().unwrap();
    }
    assert_eq!(daemon.open_sessions(), 0);
    assert!(daemon.drain());
}

#[test]
fn daemon_answers_ping_after_socket_noise() {
    let daemon = Daemon::start(DaemonConfig::default()).unwrap();
    for seed in 100..108u64 {
        let mut rng = FaultRng::new(seed);
        let mut client = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // A few bursts of garbage interleaved with framed junk...
        for _ in 0..4 {
            let len = 1 + rng.below(200) as usize;
            client.send_raw(&garbage(&mut rng, len)).unwrap();
            client.send_raw(&frame_bytes(0x44, &[0xAA; 8])).unwrap();
        }
        // ...then a valid PING: the daemon must still answer it, after
        // however many typed ERROR frames the noise earned.
        client.send_raw(&frame_bytes(kind::PING, &[])).unwrap();
        let mut got_pong = false;
        for _ in 0..64 {
            match client.read_response() {
                Ok(Response::Pong) => {
                    got_pong = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("seed {seed}: connection died on noise: {e}"),
            }
        }
        assert!(got_pong, "seed {seed}: PING after noise must be answered");
    }
    assert_eq!(daemon.open_sessions(), 0);
    assert!(daemon.drain());
}
