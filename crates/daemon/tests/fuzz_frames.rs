//! Seeded frame fuzzing, reusing core's deterministic [`FaultRng`]: the
//! assembler must recover every well-formed frame embedded in garbage,
//! and a live daemon must answer a valid PING after arbitrary noise.

use splendid_core::FaultRng;
use splendid_daemon::protocol::{frame_bytes, kind, FrameAssembler, FrameEvent, MAGIC, VERSION};
use splendid_daemon::{Daemon, DaemonClient, DaemonConfig, Response};
use std::time::Duration;

/// Garbage that can never alias a frame boundary: scrub the magic's
/// first byte so an embedded `b"SPLD"` cannot appear by chance (which
/// would make the assembler legitimately swallow a following frame as
/// that ghost frame's payload).
fn garbage(rng: &mut FaultRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| {
            let b = (rng.next_u64() & 0xFF) as u8;
            if b == MAGIC[0] {
                0x00
            } else {
                b
            }
        })
        .collect()
}

#[test]
fn assembler_recovers_every_valid_frame_from_noise() {
    for seed in 0..64u64 {
        let mut rng = FaultRng::new(seed);
        let mut stream = Vec::new();
        let mut pings = 0u32;
        for _ in 0..32 {
            match rng.below(4) {
                0 => {
                    stream.extend_from_slice(&frame_bytes(kind::PING, &[]));
                    pings += 1;
                }
                1 => {
                    let len = 1 + rng.below(63) as usize;
                    stream.extend_from_slice(&garbage(&mut rng, len));
                }
                2 => {
                    // Well-framed but wrong protocol version: still a
                    // clean Frame event, never a desync.
                    let mut f = frame_bytes(kind::PING, &[]);
                    f[4] = 9;
                    stream.extend_from_slice(&f);
                }
                _ => {
                    // Well-framed unknown kind with a small payload.
                    stream.extend_from_slice(&frame_bytes(0x7F, &[1, 2, 3]));
                }
            }
        }

        // Feed in rng-sized chunks; drain events after every push.
        let mut assembler = FrameAssembler::new();
        let mut recovered = 0u32;
        let mut offset = 0;
        while offset < stream.len() {
            let step = (1 + rng.below(97) as usize).min(stream.len() - offset);
            assembler.push(&stream[offset..offset + step]);
            offset += step;
            while let Some(event) = assembler.next_event() {
                if let FrameEvent::Frame {
                    version,
                    kind: frame_kind,
                    ..
                } = event
                {
                    if version == VERSION && frame_kind == kind::PING {
                        recovered += 1;
                    }
                }
            }
        }
        assert_eq!(
            recovered, pings,
            "seed {seed}: every injected PING must survive the noise"
        );
    }
}

#[test]
fn daemon_answers_ping_after_socket_noise() {
    let daemon = Daemon::start(DaemonConfig::default()).unwrap();
    for seed in 100..108u64 {
        let mut rng = FaultRng::new(seed);
        let mut client = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // A few bursts of garbage interleaved with framed junk...
        for _ in 0..4 {
            let len = 1 + rng.below(200) as usize;
            client.send_raw(&garbage(&mut rng, len)).unwrap();
            client.send_raw(&frame_bytes(0x44, &[0xAA; 8])).unwrap();
        }
        // ...then a valid PING: the daemon must still answer it, after
        // however many typed ERROR frames the noise earned.
        client.send_raw(&frame_bytes(kind::PING, &[])).unwrap();
        let mut got_pong = false;
        for _ in 0..64 {
            match client.read_response() {
                Ok(Response::Pong) => {
                    got_pong = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("seed {seed}: connection died on noise: {e}"),
            }
        }
        assert!(got_pong, "seed {seed}: PING after noise must be answered");
    }
    assert_eq!(daemon.open_sessions(), 0);
    assert!(daemon.drain());
}
