//! End-to-end tests for the persistent cache tier over the wire: daemon
//! warm restart from its own disk store, peer feeding between two
//! daemons via CACHE_GET, and the CACHE_GET/CACHE_PUT request surface
//! (validation, NoCache on tier-less daemons, byte fidelity).

use splendid_cfront::{lower_program, parse_program, LowerOptions};
use splendid_core::{decompile, SplendidOptions};
use splendid_daemon::{Daemon, DaemonClient, DaemonConfig, ErrorCode, Request, Response};
use splendid_ir::Module;
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_serve::codec;
use splendid_transforms::{optimize_module, O2Options};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "splendid-daemon-cache-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small parallelized module, one kernel per constant (same shape the
/// daemon tests use).
fn test_module(consts: &[f64]) -> Module {
    let mut src = String::new();
    for (i, c) in consts.iter().enumerate() {
        src.push_str(&format!("double A{i}[64];\ndouble B{i}[64];\n"));
        src.push_str(&format!(
            "void kernel{i}() {{ int j; for (j = 1; j < 63; j++) {{ \
             B{i}[j] = (A{i}[j-1] + A{i}[j+1]) * {c:?}; }} }}\n"
        ));
    }
    let prog = parse_program(&src).unwrap();
    let mut m = lower_program(&prog, "ctest", &LowerOptions::default()).unwrap();
    optimize_module(&mut m, &O2Options::default());
    parallelize_module(&mut m, &ParallelizeOptions::default());
    m
}

fn module_text(consts: &[f64]) -> String {
    splendid_ir::printer::module_str(&test_module(consts))
}

/// Start a daemon, retrying briefly: a just-drained predecessor may
/// still hold the store's advisory lock for a few milliseconds while
/// its last handler thread unwinds.
fn start_with_retry(config: DaemonConfig) -> Daemon {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Daemon::start(config.clone()) {
            Ok(d) => return d,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("daemon failed to start: {e}"),
        }
    }
}

fn connect(daemon: &Daemon) -> DaemonClient {
    let client = DaemonClient::connect_tcp(daemon.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
}

fn decompile_counts(client: &mut DaemonClient) -> (u32, u32) {
    match client.decompile().unwrap() {
        Response::Result {
            functions, cached, ..
        } => (functions, cached),
        other => panic!("expected RESULT, got {other:?}"),
    }
}

#[test]
fn cache_frames_without_cache_dir_are_no_cache_errors() {
    let daemon = Daemon::start(DaemonConfig::default()).unwrap();
    let mut client = connect(&daemon);
    for req in [
        Request::CacheGet { key: 1 },
        Request::CachePut {
            key: 1,
            blob: vec![0u8; 16],
        },
    ] {
        match client.roundtrip(&req).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoCache),
            other => panic!("expected NoCache error, got {other:?}"),
        }
    }
    client.ping().unwrap();
    assert!(daemon.drain());
}

#[test]
fn cache_put_validates_and_serves_bytes_back() {
    let dir = temp_dir("wire");
    let daemon = Daemon::start(DaemonConfig {
        cache_dir: Some(dir),
        ..Default::default()
    })
    .unwrap();
    let mut client = connect(&daemon);

    // Garbage is rejected politely; nothing is stored under the key.
    assert!(!client.cache_put(7, b"not a record").unwrap());
    assert_eq!(client.cache_get(7).unwrap(), None);

    // A real encoded module record is accepted and comes back
    // byte-for-byte (the write-behind makes the readback eventual).
    let module = test_module(&[0.25, 0.5]);
    let output = decompile(&module, &SplendidOptions::default()).unwrap();
    let blob = codec::encode_module_record(&output);
    assert!(client.cache_put(99, &blob).unwrap());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.cache_get(99).unwrap() {
            Some(back) => {
                assert_eq!(back, blob, "stored record must round-trip unchanged");
                break;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            None => panic!("stored record never became visible"),
        }
    }
    assert!(daemon.drain());
}

#[test]
fn daemon_warm_restarts_and_feeds_a_peer() {
    let dir_a = temp_dir("peer-a");
    let dir_b = temp_dir("peer-b");
    let text = module_text(&[0.125, 0.375, 0.875]);

    // Cold daemon: decompiles for real, persists, drains (drain flushes
    // the store so the next open is a clean warm start).
    {
        let daemon = Daemon::start(DaemonConfig {
            cache_dir: Some(dir_a.clone()),
            ..Default::default()
        })
        .unwrap();
        let mut client = connect(&daemon);
        client.open("peer-test", 3, &text).unwrap();
        let (functions, cached) = decompile_counts(&mut client);
        assert_eq!(functions, 3);
        assert_eq!(cached, 0, "cold daemon must decompile from scratch");
        assert!(daemon.drain());
    }

    // Warm restart over the same store: every function answers from the
    // disk tier (sessions are new, so the in-memory LRU starts empty).
    let warm = start_with_retry(DaemonConfig {
        cache_dir: Some(dir_a.clone()),
        ..Default::default()
    });
    {
        let mut client = connect(&warm);
        client.open("peer-test", 3, &text).unwrap();
        let (functions, cached) = decompile_counts(&mut client);
        assert_eq!(
            cached, functions,
            "warm restart must serve every function from disk"
        );
        let stats = client.stats(true).unwrap();
        assert!(
            stats.contains("tier:disk"),
            "daemon-wide stats must attribute the disk tier:\n{stats}"
        );
    }

    // Peer feeding: a fresh daemon with an empty store of its own, but
    // pointed at the warm daemon, fills over the wire instead of
    // decompiling.
    let fed = Daemon::start(DaemonConfig {
        cache_dir: Some(dir_b),
        peer: Some(warm.local_addr().to_string()),
        ..Default::default()
    })
    .unwrap();
    {
        let mut client = connect(&fed);
        client.open("peer-test", 3, &text).unwrap();
        let (functions, cached) = decompile_counts(&mut client);
        assert_eq!(
            cached, functions,
            "peer-fed daemon must answer every function from its peer"
        );
        let stats = client.stats(true).unwrap();
        assert!(stats.contains("tier:disk"), "{stats}");
        assert!(stats.contains("tier:peer"), "{stats}");
    }

    assert!(fed.drain());
    assert!(warm.drain());
    let _ = std::fs::remove_dir_all(&dir_a);
}
