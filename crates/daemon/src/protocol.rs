//! The hand-rolled, zero-dependency wire protocol.
//!
//! Every message is one **frame**:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"SPLD"
//!      4     1  protocol version (currently 1)
//!      5     1  frame kind
//!      6     4  payload length, little-endian
//!     10     n  payload
//! ```
//!
//! Integers inside payloads are little-endian; strings are a `u32` byte
//! length followed by UTF-8 bytes. Requests and responses are strictly
//! 1:1 — every request frame produces exactly one response frame (a
//! typed [`Response::Error`] when anything goes wrong).
//!
//! Robustness contract (exercised by the frame-fuzz tests): malformed
//! input NEVER kills the connection or the daemon. The server-side
//! [`FrameAssembler`] is a pull parser over a byte buffer that
//!
//! * **resyncs** after garbage: on a bad magic it reports one desync
//!   event, then scans forward byte-by-byte for the next `b"SPLD"`;
//! * **skips** oversized payloads: a frame declaring more than
//!   [`MAX_PAYLOAD`] bytes is reported and its payload bytes are
//!   discarded as they arrive, without ever buffering them;
//! * treats a bad version or unknown kind as a per-frame error while
//!   keeping the frame boundary intact.

use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SPLD";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 10;
/// Largest payload a peer may declare (16 MiB). Larger frames are
/// skipped with [`ErrorCode::Oversized`].
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame kinds. Requests have the high bit clear, responses set.
pub mod kind {
    /// Open a session: parse a module, fingerprint its functions.
    pub const OPEN: u8 = 0x01;
    /// Replace the session module; dirty-diff against the previous one.
    pub const UPDATE: u8 = 0x02;
    /// Decompile the session module incrementally.
    pub const DECOMPILE: u8 = 0x03;
    /// Request the session-scoped or daemon-wide stats dump.
    pub const STATS: u8 = 0x04;
    /// Close the session (the connection stays usable).
    pub const CLOSE: u8 = 0x05;
    /// Liveness probe.
    pub const PING: u8 = 0x06;
    /// Look up a blob in the daemon's persistent cache tier (peer
    /// tiering: another daemon asks before decompiling itself).
    pub const CACHE_GET: u8 = 0x07;
    /// Offer a blob to the daemon's persistent cache tier.
    pub const CACHE_PUT: u8 = 0x08;
    /// Stateless validated decompilation: decompile the supplied module
    /// with translation validation on, returning per-function verdicts.
    pub const VALIDATE: u8 = 0x09;

    /// Session opened.
    pub const OPENED: u8 = 0x81;
    /// Module replaced; reports the dirty count.
    pub const UPDATED: u8 = 0x82;
    /// Decompilation result.
    pub const RESULT: u8 = 0x83;
    /// Stats dump text.
    pub const STATS_TEXT: u8 = 0x84;
    /// Session closed.
    pub const CLOSED: u8 = 0x85;
    /// Liveness reply.
    pub const PONG: u8 = 0x86;
    /// Cache lookup answer (found flag + blob).
    pub const CACHE_VALUE: u8 = 0x87;
    /// Cache offer answer (stored flag).
    pub const CACHE_STORED: u8 = 0x88;
    /// Validated decompilation result (verdict tallies + source).
    pub const VALIDATED: u8 = 0x89;
    /// The daemon shed the request at admission (overloaded or over
    /// quota); carries a `retry_after_ms` hint. Not an error — the
    /// connection and session both survive.
    pub const BUSY: u8 = 0x8A;
    /// Typed error.
    pub const ERROR: u8 = 0xEE;
}

/// Typed wire error codes carried by ERROR frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Stream desynchronized (bad magic); the server is scanning for the
    /// next frame boundary.
    Desync = 1,
    /// Frame declared an unsupported protocol version.
    BadVersion = 2,
    /// Frame kind is not a known request.
    UnknownKind = 3,
    /// Declared payload length exceeds [`MAX_PAYLOAD`]; payload skipped.
    Oversized = 4,
    /// Payload bytes did not decode as the kind's message shape.
    BadPayload = 5,
    /// UPDATE/DECOMPILE/session-STATS before a successful OPEN.
    NoSession = 6,
    /// Module text did not parse as SPLENDID IR.
    ModuleParse = 7,
    /// The decompilation job failed (the message carries the job error).
    DecompileFailed = 8,
    /// The per-request deadline expired (watchdog-attributed stage in the
    /// message).
    Deadline = 9,
    /// The daemon is draining and refuses new work.
    Draining = 10,
    /// The session sat idle past the eviction timeout.
    IdleTimeout = 11,
    /// CACHE_GET/CACHE_PUT on a daemon that has no persistent cache
    /// tier configured (`--cache-dir`).
    NoCache = 12,
}

impl ErrorCode {
    /// Decode a wire value; unknown values map to `BadPayload`.
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Desync,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::UnknownKind,
            4 => ErrorCode::Oversized,
            6 => ErrorCode::NoSession,
            7 => ErrorCode::ModuleParse,
            8 => ErrorCode::DecompileFailed,
            9 => ErrorCode::Deadline,
            10 => ErrorCode::Draining,
            11 => ErrorCode::IdleTimeout,
            12 => ErrorCode::NoCache,
            _ => ErrorCode::BadPayload,
        }
    }

    /// Stable lowercase label used in stats and logs.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Desync => "desync",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::UnknownKind => "unknown-kind",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadPayload => "bad-payload",
            ErrorCode::NoSession => "no-session",
            ErrorCode::ModuleParse => "module-parse",
            ErrorCode::DecompileFailed => "decompile-failed",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Draining => "draining",
            ErrorCode::IdleTimeout => "idle-timeout",
            ErrorCode::NoCache => "no-cache",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A client request, decoded from a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open (or replace) this connection's session.
    Open {
        /// Caller-chosen module label.
        name: String,
        /// Variant selector: 1 = v1, 2 = portable, 3 = full.
        variant: u8,
        /// Textual SPLENDID IR.
        module_text: String,
    },
    /// Replace the session module.
    Update {
        /// Textual SPLENDID IR of the edited module.
        module_text: String,
    },
    /// Decompile the session module.
    Decompile {
        /// Client budget for this request in milliseconds; 0 means no
        /// budget. Relative rather than absolute so clock skew between
        /// client and daemon cannot distort it; the daemon converts it
        /// to an absolute deadline on arrival and propagates it through
        /// admission, the scheduler, and the cache tiers.
        budget_ms: u32,
    },
    /// Stats dump; `daemon_wide` selects scope.
    Stats {
        /// `true` for the daemon-wide dump, `false` for this session.
        daemon_wide: bool,
    },
    /// Close the session.
    Close,
    /// Liveness probe.
    Ping,
    /// Look up a blob in the persistent cache tier by content key.
    CacheGet {
        /// Content-addressed FNV-64 key.
        key: u64,
    },
    /// Offer an encoded result record to the persistent cache tier.
    CachePut {
        /// Content-addressed FNV-64 key.
        key: u64,
        /// Versioned record bytes (see `splendid_serve::codec`).
        blob: Vec<u8>,
    },
    /// Stateless validated decompilation: no session required, the
    /// module travels with the request.
    Validate {
        /// Caller-chosen module label.
        name: String,
        /// Variant selector: 1 = v1, 2 = portable, 3 = full.
        variant: u8,
        /// Textual SPLENDID IR.
        module_text: String,
    },
}

/// A daemon response, decoded from a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session opened.
    Opened {
        /// Daemon-wide session id.
        session: u32,
        /// Functions in the parsed module.
        functions: u32,
    },
    /// Module replaced.
    Updated {
        /// Root functions whose span fingerprint changed (or everything,
        /// after a structural change).
        dirty: u32,
        /// Total root functions in the new module text.
        total: u32,
        /// Server time spent span-scanning and hashing the new text.
        fingerprint_nanos: u64,
        /// Server time spent diffing fingerprints and updating session
        /// bookkeeping.
        bookkeeping_nanos: u64,
    },
    /// Decompilation result.
    Result {
        /// Functions in the module.
        functions: u32,
        /// Functions answered from the shared serve cache.
        cached: u32,
        /// Functions emitted below the `Natural` fidelity tier.
        degraded: u32,
        /// Functions that were dirty and re-ran `decompile_function`.
        dirty: u32,
        /// Server-side wall time for this request, microseconds.
        wall_micros: u64,
        /// `true` when the whole request was answered from the session's
        /// last result without touching the scheduler (nothing dirty).
        fast_path: bool,
        /// The decompiled C translation unit.
        source: String,
    },
    /// Stats dump.
    StatsText {
        /// Stable, line-oriented stats text.
        text: String,
    },
    /// Session closed.
    Closed,
    /// Liveness reply.
    Pong,
    /// Cache lookup answer.
    CacheValue {
        /// The record bytes, when the key was present.
        blob: Option<Vec<u8>>,
    },
    /// Cache offer answer.
    CacheStored {
        /// `false` when the daemon rejected the record (e.g. it failed
        /// validation) without treating it as a wire error.
        stored: bool,
    },
    /// The request was shed at admission; the caller should back off.
    Busy {
        /// Suggested backoff before retrying, milliseconds.
        retry_after_ms: u32,
    },
    /// Validated decompilation result.
    Validated {
        /// Functions in the module.
        functions: u32,
        /// Functions whose certificate says `Verified`.
        verified: u32,
        /// Functions whose certificate says `Unverified`.
        unverified: u32,
        /// Server-side wall time for this request, microseconds.
        wall_micros: u64,
        /// The decompiled C translation unit with verdict annotations.
        source: String,
    },
    /// Typed error; the connection survives.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Payload decode failure (maps to [`ErrorCode::BadPayload`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian payload writer.
#[derive(Default)]
pub struct Enc(Vec<u8>);

impl Enc {
    /// Fresh empty payload.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append a `u8`.
    pub fn u8(mut self, v: u8) -> Enc {
        self.0.push(v);
        self
    }

    /// Append a little-endian `u16`.
    pub fn u16(mut self, v: u16) -> Enc {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(mut self, v: u32) -> Enc {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(mut self, v: u64) -> Enc {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(mut self, s: &str) -> Enc {
        self.0.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.0.extend_from_slice(s.as_bytes());
        self
    }

    /// Append a length-prefixed byte blob (cache records are binary, not
    /// UTF-8).
    pub fn bytes(mut self, b: &[u8]) -> Enc {
        self.0.extend_from_slice(&(b.len() as u32).to_le_bytes());
        self.0.extend_from_slice(b);
        self
    }

    /// Final payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.0
    }
}

/// Little-endian payload reader.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Reader over a payload.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError(format!(
                "need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| DecodeError(format!("invalid UTF-8: {e}")))
    }

    /// Read a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Fail unless every payload byte was consumed (catches frames that
    /// smuggle trailing garbage past a lenient decoder).
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing byte(s) after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl Request {
    /// Frame kind this request travels as.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Open { .. } => kind::OPEN,
            Request::Update { .. } => kind::UPDATE,
            Request::Decompile { .. } => kind::DECOMPILE,
            Request::Stats { .. } => kind::STATS,
            Request::Close => kind::CLOSE,
            Request::Ping => kind::PING,
            Request::CacheGet { .. } => kind::CACHE_GET,
            Request::CachePut { .. } => kind::CACHE_PUT,
            Request::Validate { .. } => kind::VALIDATE,
        }
    }

    /// Encode the payload (header excluded).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            Request::Open {
                name,
                variant,
                module_text,
            } => Enc::new().u8(*variant).str(name).str(module_text).finish(),
            Request::Update { module_text } => Enc::new().str(module_text).finish(),
            // Back-compat: a budget-less DECOMPILE stays the empty
            // payload older daemons already understand.
            Request::Decompile { budget_ms: 0 } => Vec::new(),
            Request::Decompile { budget_ms } => Enc::new().u32(*budget_ms).finish(),
            Request::Close | Request::Ping => Vec::new(),
            Request::Stats { daemon_wide } => Enc::new().u8(u8::from(*daemon_wide)).finish(),
            Request::CacheGet { key } => Enc::new().u64(*key).finish(),
            Request::CachePut { key, blob } => Enc::new().u64(*key).bytes(blob).finish(),
            Request::Validate {
                name,
                variant,
                module_text,
            } => Enc::new().u8(*variant).str(name).str(module_text).finish(),
        }
    }

    /// Decode a request payload for a known request kind. `None` means
    /// the kind is not a request.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Option<Result<Request, DecodeError>> {
        let mut d = Dec::new(payload);
        let req = match kind_byte {
            kind::OPEN => (|| {
                let variant = d.u8()?;
                let name = d.str()?;
                let module_text = d.str()?;
                d.expect_end()?;
                Ok(Request::Open {
                    name,
                    variant,
                    module_text,
                })
            })(),
            kind::UPDATE => (|| {
                let module_text = d.str()?;
                d.expect_end()?;
                Ok(Request::Update { module_text })
            })(),
            // Empty payload = no budget (frames from pre-budget clients);
            // otherwise exactly one u32.
            kind::DECOMPILE => (|| {
                let budget_ms = if payload.is_empty() { 0 } else { d.u32()? };
                d.expect_end()?;
                Ok(Request::Decompile { budget_ms })
            })(),
            kind::STATS => (|| {
                let scope = d.u8()?;
                d.expect_end()?;
                Ok(Request::Stats {
                    daemon_wide: scope != 0,
                })
            })(),
            kind::CLOSE => d.expect_end().map(|()| Request::Close),
            kind::PING => d.expect_end().map(|()| Request::Ping),
            kind::CACHE_GET => (|| {
                let key = d.u64()?;
                d.expect_end()?;
                Ok(Request::CacheGet { key })
            })(),
            kind::CACHE_PUT => (|| {
                let key = d.u64()?;
                let blob = d.bytes()?;
                d.expect_end()?;
                Ok(Request::CachePut { key, blob })
            })(),
            kind::VALIDATE => (|| {
                let variant = d.u8()?;
                let name = d.str()?;
                let module_text = d.str()?;
                d.expect_end()?;
                Ok(Request::Validate {
                    name,
                    variant,
                    module_text,
                })
            })(),
            _ => return None,
        };
        Some(req)
    }
}

impl Response {
    /// Frame kind this response travels as.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Opened { .. } => kind::OPENED,
            Response::Updated { .. } => kind::UPDATED,
            Response::Result { .. } => kind::RESULT,
            Response::StatsText { .. } => kind::STATS_TEXT,
            Response::Closed => kind::CLOSED,
            Response::Pong => kind::PONG,
            Response::CacheValue { .. } => kind::CACHE_VALUE,
            Response::CacheStored { .. } => kind::CACHE_STORED,
            Response::Busy { .. } => kind::BUSY,
            Response::Validated { .. } => kind::VALIDATED,
            Response::Error { .. } => kind::ERROR,
        }
    }

    /// Encode the payload (header excluded).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            Response::Opened { session, functions } => {
                Enc::new().u32(*session).u32(*functions).finish()
            }
            Response::Updated {
                dirty,
                total,
                fingerprint_nanos,
                bookkeeping_nanos,
            } => Enc::new()
                .u32(*dirty)
                .u32(*total)
                .u64(*fingerprint_nanos)
                .u64(*bookkeeping_nanos)
                .finish(),
            Response::Result {
                functions,
                cached,
                degraded,
                dirty,
                wall_micros,
                fast_path,
                source,
            } => Enc::new()
                .u32(*functions)
                .u32(*cached)
                .u32(*degraded)
                .u32(*dirty)
                .u64(*wall_micros)
                .u8(u8::from(*fast_path))
                .str(source)
                .finish(),
            Response::StatsText { text } => Enc::new().str(text).finish(),
            Response::Closed | Response::Pong => Vec::new(),
            Response::CacheValue { blob } => match blob {
                Some(b) => Enc::new().u8(1).bytes(b).finish(),
                None => Enc::new().u8(0).finish(),
            },
            Response::CacheStored { stored } => Enc::new().u8(u8::from(*stored)).finish(),
            Response::Busy { retry_after_ms } => Enc::new().u32(*retry_after_ms).finish(),
            Response::Validated {
                functions,
                verified,
                unverified,
                wall_micros,
                source,
            } => Enc::new()
                .u32(*functions)
                .u32(*verified)
                .u32(*unverified)
                .u64(*wall_micros)
                .str(source)
                .finish(),
            Response::Error { code, message } => Enc::new().u16(*code as u16).str(message).finish(),
        }
    }

    /// Decode a response payload for a known response kind. `None` means
    /// the kind is not a response.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Option<Result<Response, DecodeError>> {
        let mut d = Dec::new(payload);
        let resp = match kind_byte {
            kind::OPENED => (|| {
                let session = d.u32()?;
                let functions = d.u32()?;
                d.expect_end()?;
                Ok(Response::Opened { session, functions })
            })(),
            kind::UPDATED => (|| {
                let dirty = d.u32()?;
                let total = d.u32()?;
                let fingerprint_nanos = d.u64()?;
                let bookkeeping_nanos = d.u64()?;
                d.expect_end()?;
                Ok(Response::Updated {
                    dirty,
                    total,
                    fingerprint_nanos,
                    bookkeeping_nanos,
                })
            })(),
            kind::RESULT => (|| {
                let functions = d.u32()?;
                let cached = d.u32()?;
                let degraded = d.u32()?;
                let dirty = d.u32()?;
                let wall_micros = d.u64()?;
                let fast_path = d.u8()? != 0;
                let source = d.str()?;
                d.expect_end()?;
                Ok(Response::Result {
                    functions,
                    cached,
                    degraded,
                    dirty,
                    wall_micros,
                    fast_path,
                    source,
                })
            })(),
            kind::STATS_TEXT => (|| {
                let text = d.str()?;
                d.expect_end()?;
                Ok(Response::StatsText { text })
            })(),
            kind::CLOSED => d.expect_end().map(|()| Response::Closed),
            kind::PONG => d.expect_end().map(|()| Response::Pong),
            kind::CACHE_VALUE => (|| {
                let found = d.u8()?;
                let blob = if found != 0 { Some(d.bytes()?) } else { None };
                d.expect_end()?;
                Ok(Response::CacheValue { blob })
            })(),
            kind::CACHE_STORED => (|| {
                let stored = d.u8()? != 0;
                d.expect_end()?;
                Ok(Response::CacheStored { stored })
            })(),
            kind::BUSY => (|| {
                let retry_after_ms = d.u32()?;
                d.expect_end()?;
                Ok(Response::Busy { retry_after_ms })
            })(),
            kind::VALIDATED => (|| {
                let functions = d.u32()?;
                let verified = d.u32()?;
                let unverified = d.u32()?;
                let wall_micros = d.u64()?;
                let source = d.str()?;
                d.expect_end()?;
                Ok(Response::Validated {
                    functions,
                    verified,
                    unverified,
                    wall_micros,
                    source,
                })
            })(),
            kind::ERROR => (|| {
                let code = ErrorCode::from_u16(d.u16()?);
                let message = d.str()?;
                d.expect_end()?;
                Ok(Response::Error { code, message })
            })(),
            _ => return None,
        };
        Some(resp)
    }
}

/// Serialize one frame (header + payload) into a byte vector.
pub fn frame_bytes(kind_byte: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind_byte);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, kind_byte: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(kind_byte, payload))?;
    w.flush()
}

/// Blocking client-side frame read: returns `(version, kind, payload)`.
/// Clients trust the daemon to frame correctly; any desync is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, u8, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame magic from daemon",
        ));
    }
    let version = header[4];
    let kind_byte = header[5];
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("oversized frame from daemon: {len} bytes"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((version, kind_byte, payload))
}

/// Events pulled out of a [`FrameAssembler`].
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete, well-framed message (kind may still be unknown to the
    /// dispatcher, and the payload may still fail to decode).
    Frame {
        /// Protocol version from the header.
        version: u8,
        /// Frame kind byte.
        kind: u8,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// Bad magic: the stream desynchronized. Reported once per garbage
    /// run; the assembler scans forward for the next magic.
    Desync,
    /// A frame declared a payload above [`MAX_PAYLOAD`]; its bytes are
    /// being discarded.
    Oversized {
        /// The declared payload length.
        declared: u64,
    },
}

/// Incremental server-side frame parser: feed it raw bytes as they
/// arrive, pull [`FrameEvent`]s. Never panics, never gives up on the
/// stream — garbage is scanned past, oversized payloads are discarded
/// without buffering.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Payload bytes of an oversized frame still to discard.
    skip: u64,
    /// True while scanning garbage, so one desync run reports one event.
    desynced: bool,
}

impl FrameAssembler {
    /// Fresh assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Append raw bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.skip > 0 {
            let eat = (self.skip).min(bytes.len() as u64) as usize;
            self.skip -= eat as u64;
            self.buf.extend_from_slice(&bytes[eat..]);
        } else {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet parsed (diagnostic).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next event, or `None` when more bytes are needed.
    pub fn next_event(&mut self) -> Option<FrameEvent> {
        loop {
            // Resync: drop bytes until the buffer starts with as much of
            // MAGIC as it contains.
            let misaligned = !self
                .buf
                .starts_with(&MAGIC[..MAGIC.len().min(self.buf.len())]);
            if misaligned {
                let first_desync = !self.desynced;
                self.desynced = true;
                // Scan for the next candidate magic start past offset 0.
                match self.buf[1..].iter().position(|&b| b == MAGIC[0]) {
                    Some(p) => {
                        self.buf.drain(..p + 1);
                    }
                    None => self.buf.clear(),
                }
                if first_desync {
                    return Some(FrameEvent::Desync);
                }
                continue;
            }
            if self.buf.len() < HEADER_LEN {
                return None; // incomplete (possibly partial-magic) header
            }
            self.desynced = false;
            let version = self.buf[4];
            let kind_byte = self.buf[5];
            let len = u32::from_le_bytes([self.buf[6], self.buf[7], self.buf[8], self.buf[9]]);
            if len > MAX_PAYLOAD {
                // Consume the header, discard the payload as it arrives.
                let have = self.buf.len() - HEADER_LEN;
                let eat = (len as usize).min(have);
                self.buf.drain(..HEADER_LEN + eat);
                self.skip = u64::from(len) - eat as u64;
                return Some(FrameEvent::Oversized {
                    declared: u64::from(len),
                });
            }
            if self.buf.len() < HEADER_LEN + len as usize {
                return None; // payload still in flight
            }
            let payload = self.buf[HEADER_LEN..HEADER_LEN + len as usize].to_vec();
            self.buf.drain(..HEADER_LEN + len as usize);
            return Some(FrameEvent::Frame {
                version,
                kind: kind_byte,
                payload,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(assembler: &mut FrameAssembler, bytes: &[u8], chunk: usize) -> Vec<FrameEvent> {
        let mut events = Vec::new();
        for c in bytes.chunks(chunk.max(1)) {
            assembler.push(c);
            while let Some(e) = assembler.next_event() {
                events.push(e);
            }
        }
        events
    }

    #[test]
    fn roundtrip_request_encodings() {
        let reqs = [
            Request::Open {
                name: "jacobi".into(),
                variant: 3,
                module_text: "module text".into(),
            },
            Request::Update {
                module_text: "new text".into(),
            },
            Request::Decompile { budget_ms: 0 },
            Request::Decompile { budget_ms: 250 },
            Request::Stats { daemon_wide: true },
            Request::Close,
            Request::Ping,
            Request::CacheGet {
                key: 0xDEAD_BEEF_CAFE_F00D,
            },
            Request::CachePut {
                key: 42,
                blob: vec![0x00, 0xFF, 0x7F, 0x80],
            },
            Request::Validate {
                name: "gemm".into(),
                variant: 1,
                module_text: "module text".into(),
            },
        ];
        for req in reqs {
            let payload = req.encode_payload();
            let back = Request::decode(req.kind(), &payload).unwrap().unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn roundtrip_response_encodings() {
        let resps = [
            Response::Opened {
                session: 7,
                functions: 16,
            },
            Response::Updated {
                dirty: 1,
                total: 16,
                fingerprint_nanos: 812_345,
                bookkeeping_nanos: 21_000,
            },
            Response::Result {
                functions: 16,
                cached: 15,
                degraded: 0,
                dirty: 1,
                wall_micros: 1234,
                fast_path: false,
                source: "int main() {}\n".into(),
            },
            Response::StatsText {
                text: "daemon stats\n".into(),
            },
            Response::Closed,
            Response::Pong,
            Response::CacheValue {
                blob: Some(vec![1, 2, 3, 0, 255]),
            },
            Response::CacheValue { blob: None },
            Response::CacheStored { stored: true },
            Response::CacheStored { stored: false },
            Response::Busy {
                retry_after_ms: 750,
            },
            Response::Validated {
                functions: 3,
                verified: 2,
                unverified: 1,
                wall_micros: 5678,
                source: "/* splendid: verified */\n".into(),
            },
            Response::Error {
                code: ErrorCode::NoSession,
                message: "open first".into(),
            },
        ];
        for resp in resps {
            let payload = resp.encode_payload();
            let back = Response::decode(resp.kind(), &payload).unwrap().unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn decompile_budget_wire_compat() {
        // A budget of 0 must encode as the legacy empty payload...
        assert!(Request::Decompile { budget_ms: 0 }
            .encode_payload()
            .is_empty());
        // ...and the legacy empty payload must decode as budget 0.
        assert_eq!(
            Request::decode(kind::DECOMPILE, &[]).unwrap().unwrap(),
            Request::Decompile { budget_ms: 0 }
        );
        // Truncated and over-long budget payloads are BadPayload, not
        // lenient decodes.
        assert!(Request::decode(kind::DECOMPILE, &[0x01, 0x02])
            .unwrap()
            .is_err());
        assert!(
            Request::decode(kind::DECOMPILE, &[0x01, 0x02, 0x03, 0x04, 0x05])
                .unwrap()
                .is_err()
        );
    }

    #[test]
    fn assembler_reads_frames_at_any_chunking() {
        let mut bytes = frame_bytes(kind::PING, &[]);
        bytes.extend(frame_bytes(kind::UPDATE, &Enc::new().str("abc").finish()));
        for chunk in [1, 2, 3, 7, 64] {
            let mut a = FrameAssembler::new();
            let events = feed(&mut a, &bytes, chunk);
            assert_eq!(events.len(), 2, "chunk={chunk}");
            assert!(matches!(
                events[0],
                FrameEvent::Frame {
                    kind: kind::PING,
                    ..
                }
            ));
        }
    }

    #[test]
    fn assembler_resyncs_after_garbage() {
        let mut bytes = b"this is not a frame at all SPL but almost".to_vec();
        bytes.extend(frame_bytes(kind::PING, &[]));
        let mut a = FrameAssembler::new();
        let events = feed(&mut a, &bytes, 5);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, FrameEvent::Desync))
                .count(),
            1,
            "one desync run reports one event: {events:?}"
        );
        assert!(
            matches!(
                events.last(),
                Some(FrameEvent::Frame {
                    kind: kind::PING,
                    ..
                })
            ),
            "{events:?}"
        );
    }

    #[test]
    fn assembler_skips_oversized_payloads_without_buffering() {
        let declared = MAX_PAYLOAD as u64 + 10;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(kind::UPDATE);
        bytes.extend_from_slice(&(declared as u32).to_le_bytes());
        bytes.extend(std::iter::repeat_n(0xAB, declared as usize));
        bytes.extend(frame_bytes(kind::PING, &[]));
        let mut a = FrameAssembler::new();
        let events = feed(&mut a, &bytes, 4096);
        assert!(
            matches!(events[0], FrameEvent::Oversized { declared: d } if d == declared),
            "{events:?}"
        );
        assert!(matches!(
            events.last(),
            Some(FrameEvent::Frame {
                kind: kind::PING,
                ..
            })
        ));
        assert!(a.buffered() < HEADER_LEN + 16, "payload must not buffer");
    }

    #[test]
    fn truncated_frame_yields_no_event_and_no_panic() {
        let full = frame_bytes(kind::UPDATE, &Enc::new().str("abcdef").finish());
        for cut in 0..full.len() {
            let mut a = FrameAssembler::new();
            a.push(&full[..cut]);
            assert!(a.next_event().is_none(), "cut={cut}");
        }
    }
}
