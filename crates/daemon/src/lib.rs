#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! `splendid-daemon`: interactive decompilation sessions over the wire.
//!
//! The serve layer answers one-shot batch requests; this crate keeps a
//! decompiler *resident* so an editing loop (decompile → read → tweak →
//! decompile) pays only for what changed:
//!
//! * [`protocol`] — the hand-rolled, zero-dependency length-prefixed
//!   frame protocol (OPEN/UPDATE/DECOMPILE/STATS/CLOSE/PING, versioned
//!   header, typed error codes) and the malformed-input-proof
//!   [`protocol::FrameAssembler`];
//! * [`session`] — per-client sessions holding a parsed module and its
//!   per-function FNV-64 content fingerprints; UPDATE dirty-diffs the
//!   edited module so DECOMPILE re-runs only changed functions (the
//!   rest answer from the shared serve cache, or — when nothing is
//!   dirty — from the session's retained result without touching the
//!   scheduler at all);
//! * [`server`] — the daemon: TCP + Unix-socket accept loops over one
//!   shared [`splendid_serve::Scheduler`], connection capping with
//!   accept-queue backpressure, per-request deadlines via the serve
//!   watchdog, idle-session eviction, and graceful drain;
//! * [`client`] — the blocking client used by `splendid connect`,
//!   `splendid bench-daemon`, and the integration tests;
//! * [`bench`] — the interactive-latency benchmark behind
//!   `BENCH_daemon.json` (p50/p95/p99, incremental-vs-cold speedup).

pub mod bench;
pub mod client;
pub mod overload;
pub mod peer;
pub mod protocol;
pub mod server;
pub mod session;

pub use bench::{percentiles, run_bench, BenchConfig, BenchReport, Percentiles};
pub use client::DaemonClient;
pub use overload::{run_overload_bench, OverloadConfig, OverloadReport};
pub use peer::{PeerTier, DEFAULT_PEER_TIMEOUT};
pub use protocol::{ErrorCode, FrameAssembler, FrameEvent, Request, Response};
pub use server::{Daemon, DaemonConfig, DaemonStats};
pub use session::{DecompileReply, Session, SessionError};
