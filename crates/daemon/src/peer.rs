//! The peer cache tier: a [`splendid_serve::CacheTier`] that speaks
//! `CACHE_GET`/`CACHE_PUT` to another daemon's persistent store.
//!
//! A daemon started with `--peer host:port` chains this tier *behind*
//! its own disk tier, so a cold process next to a warm one fills from
//! the warm process's store over the wire instead of decompiling from
//! scratch (the read-through then promotes the record into the local
//! disk and memory tiers).
//!
//! Failure policy: a cache tier must never take the service down. Every
//! I/O error drops the connection (the next call reconnects), counts as
//! a tier error, and reads as a miss. The peer answers `CACHE_GET`
//! exclusively from its *disk* tier — never from its own peer — so two
//! daemons pointed at each other cannot loop.

use crate::client::DaemonClient;
use splendid_serve::{CacheTier, TierCounters};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long one peer round-trip may block a cache lookup.
const PEER_TIMEOUT: Duration = Duration::from_secs(2);

/// A lazily-connected, auto-reconnecting peer tier.
pub struct PeerTier {
    addr: String,
    conn: Mutex<Option<DaemonClient>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fills: AtomicU64,
    errors: AtomicU64,
}

impl PeerTier {
    /// Tier over a peer daemon's TCP address. Does not connect yet —
    /// the first lookup does, so a daemon may start before its peer.
    pub fn new(addr: impl Into<String>) -> PeerTier {
        PeerTier {
            addr: addr.into(),
            conn: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fills: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Run `op` on the live connection, dialing if necessary. Any error
    /// tears the connection down for the next call to retry fresh.
    fn with_conn<T>(&self, op: impl FnOnce(&mut DaemonClient) -> std::io::Result<T>) -> Option<T> {
        let mut guard = match self.conn.lock() {
            Ok(g) => g,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if guard.is_none() {
            match DaemonClient::connect_tcp(&self.addr) {
                Ok(client) => {
                    let _ = client.set_read_timeout(Some(PEER_TIMEOUT));
                    *guard = Some(client);
                }
                Err(_) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        let client = guard.as_mut()?;
        match op(client) {
            Ok(v) => Some(v),
            Err(_) => {
                *guard = None;
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

impl CacheTier for PeerTier {
    fn name(&self) -> &'static str {
        "peer"
    }

    fn get(&self, key: u64) -> Option<Vec<u8>> {
        let found = self.with_conn(|c| c.cache_get(key))?;
        match found {
            Some(blob) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(blob)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: u64, blob: &[u8]) {
        if self.with_conn(|c| c.cache_put(key, blob)) == Some(true) {
            self.fills.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn counters(&self) -> TierCounters {
        TierCounters {
            name: self.name().to_string(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}
