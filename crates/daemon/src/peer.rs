//! The peer cache tier: a [`splendid_serve::CacheTier`] that speaks
//! `CACHE_GET`/`CACHE_PUT` to another daemon's persistent store.
//!
//! A daemon started with `--peer host:port` chains this tier *behind*
//! its own disk tier, so a cold process next to a warm one fills from
//! the warm process's store over the wire instead of decompiling from
//! scratch (the read-through then promotes the record into the local
//! disk and memory tiers).
//!
//! Failure policy: a cache tier must never take the service down. Every
//! I/O error drops the connection (the next call reconnects), counts as
//! a tier error, and reads as a miss. The peer answers `CACHE_GET`
//! exclusively from its *disk* tier — never from its own peer — so two
//! daemons pointed at each other cannot loop.
//!
//! Overload hardening (see DESIGN.md, "Overload protection &
//! backpressure"): a *dead* peer must cost nanoseconds per miss, not a
//! full network timeout. A half-open circuit breaker trips after
//! [`BREAKER_TRIP_AFTER`] consecutive failures; while open, every
//! operation fast-fails without touching the socket. When the backoff
//! window (exponential, jittered, capped) elapses, exactly one probe
//! operation goes through half-open: success closes the breaker and
//! resets the backoff, failure re-opens it with the window doubled.
//! Breaker state is surfaced through [`TierCounters`] into
//! `ServeStats`/STATS_TEXT, and [`PeerTier::cost_hint`] reports a
//! near-zero cost while open so deadline-aware tier reads skip the peer
//! entirely.

use crate::client::DaemonClient;
use splendid_core::FaultRng;
use splendid_serve::hash::Fnv64;
use splendid_serve::{CacheTier, TierCounters};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default for how long one peer round-trip may block a cache lookup
/// (overridable per daemon via `--peer-timeout-ms`).
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(2);

/// Consecutive failures before the breaker opens.
const BREAKER_TRIP_AFTER: u32 = 3;
/// First open window; doubles on every consecutive re-open.
const BREAKER_BACKOFF_BASE: Duration = Duration::from_millis(200);
/// Backoff ceiling.
const BREAKER_BACKOFF_MAX: Duration = Duration::from_secs(30);

enum BreakerState {
    /// Peer believed healthy; operations flow.
    Closed,
    /// Tripped: fast-fail everything until `until`.
    Open { until: Instant },
    /// One probe operation is in flight; everyone else fast-fails.
    HalfOpen,
}

/// The breaker state machine. Lock-cheap: the hot path (open, not yet
/// expired) is one lock + one `Instant` comparison.
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// Next open window duration (before jitter).
    backoff: Duration,
    /// Deterministic jitter source, seeded from the peer address so two
    /// daemons pointed at the same dead peer don't probe in lockstep
    /// forever while staying reproducible per process configuration.
    rng: FaultRng,
}

impl Breaker {
    fn new(addr: &str) -> Breaker {
        let mut h = Fnv64::new();
        h.write(addr.as_bytes());
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            backoff: BREAKER_BACKOFF_BASE,
            rng: FaultRng::new(h.finish()),
        }
    }

    /// May an operation proceed right now? Transitions Open → HalfOpen
    /// when the window has elapsed (the caller becomes the probe).
    fn allows(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open { until } => {
                if Instant::now() >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // A probe is already in flight; don't pile on.
            BreakerState::HalfOpen => false,
        }
    }

    /// Successful operation: close and reset.
    fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.backoff = BREAKER_BACKOFF_BASE;
    }

    /// Failed operation. Returns true when this failure *trips* the
    /// breaker (for the trip counter).
    fn on_failure(&mut self) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            // A failed half-open probe re-opens with a doubled window.
            BreakerState::HalfOpen => {
                self.trip();
                true
            }
            BreakerState::Closed if self.consecutive_failures >= BREAKER_TRIP_AFTER => {
                self.trip();
                true
            }
            _ => false,
        }
    }

    /// Open for one jittered backoff window, then double the next one.
    fn trip(&mut self) {
        // ±25% jitter: window ∈ [0.75, 1.25) × backoff.
        let nanos = u64::try_from(self.backoff.as_nanos()).unwrap_or(u64::MAX);
        let jittered = nanos * 3 / 4 + self.rng.below(nanos / 2 + 1);
        self.state = BreakerState::Open {
            until: Instant::now() + Duration::from_nanos(jittered),
        };
        self.backoff = (self.backoff * 2).min(BREAKER_BACKOFF_MAX);
    }

    fn is_open(&self) -> bool {
        matches!(
            self.state,
            BreakerState::Open { .. } | BreakerState::HalfOpen
        )
    }
}

/// A lazily-connected, auto-reconnecting peer tier with a circuit
/// breaker.
pub struct PeerTier {
    addr: String,
    timeout: Duration,
    conn: Mutex<Option<DaemonClient>>,
    breaker: Mutex<Breaker>,
    hits: AtomicU64,
    misses: AtomicU64,
    fills: AtomicU64,
    errors: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_fast_fails: AtomicU64,
}

impl PeerTier {
    /// Tier over a peer daemon's TCP address with the default 2 s
    /// round-trip timeout. Does not connect yet — the first lookup
    /// does, so a daemon may start before its peer.
    pub fn new(addr: impl Into<String>) -> PeerTier {
        PeerTier::with_timeout(addr, DEFAULT_PEER_TIMEOUT)
    }

    /// [`PeerTier::new`] with an explicit round-trip timeout (the
    /// daemon's `--peer-timeout-ms` flag).
    pub fn with_timeout(addr: impl Into<String>, timeout: Duration) -> PeerTier {
        let addr = addr.into();
        let breaker = Breaker::new(&addr);
        PeerTier {
            addr,
            timeout,
            conn: Mutex::new(None),
            breaker: Mutex::new(breaker),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fills: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_fast_fails: AtomicU64::new(0),
        }
    }

    /// Run `op` on the live connection, dialing if necessary, under the
    /// breaker. Any error tears the connection down for the next call
    /// to retry fresh and counts against the breaker; while the breaker
    /// is open the socket is never touched.
    fn with_conn<T>(&self, op: impl FnOnce(&mut DaemonClient) -> std::io::Result<T>) -> Option<T> {
        {
            let mut breaker = match self.breaker.lock() {
                Ok(b) => b,
                Err(e) => e.into_inner(),
            };
            if !breaker.allows() {
                self.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        let result = self.try_op(op);
        let mut breaker = match self.breaker.lock() {
            Ok(b) => b,
            Err(e) => e.into_inner(),
        };
        match &result {
            Some(_) => breaker.on_success(),
            None => {
                if breaker.on_failure() {
                    self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        result
    }

    /// One connect-if-needed + operation attempt, breaker-blind.
    fn try_op<T>(&self, op: impl FnOnce(&mut DaemonClient) -> std::io::Result<T>) -> Option<T> {
        let mut guard = match self.conn.lock() {
            Ok(g) => g,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if guard.is_none() {
            match DaemonClient::connect_tcp(&self.addr) {
                Ok(client) => {
                    let _ = client.set_read_timeout(Some(self.timeout));
                    *guard = Some(client);
                }
                Err(_) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        let client = guard.as_mut()?;
        match op(client) {
            Ok(v) => Some(v),
            Err(_) => {
                *guard = None;
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn breaker_open(&self) -> bool {
        match self.breaker.lock() {
            Ok(b) => b.is_open(),
            Err(e) => e.into_inner().is_open(),
        }
    }
}

impl CacheTier for PeerTier {
    fn name(&self) -> &'static str {
        "peer"
    }

    fn get(&self, key: u64) -> Option<Vec<u8>> {
        let found = self.with_conn(|c| c.cache_get(key))?;
        match found {
            Some(blob) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(blob)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: u64, blob: &[u8]) {
        if self.with_conn(|c| c.cache_put(key, blob)) == Some(true) {
            self.fills.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn counters(&self) -> TierCounters {
        TierCounters {
            name: self.name().to_string(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            breaker_open: self.breaker_open(),
        }
    }

    /// Worst case for one lookup: a full round-trip timeout when the
    /// breaker is closed (the peer may be slow-dead), effectively free
    /// while it is open (we fast-fail without touching the socket).
    fn cost_hint(&self) -> Duration {
        if self.breaker_open() {
            Duration::ZERO
        } else {
            self.timeout
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// A listener that accepts connections and never answers: the
    /// "slow-dead" peer every timeout-driven test needs.
    fn blackhole() -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind blackhole");
        let addr = listener.local_addr().expect("blackhole addr").to_string();
        listener.set_nonblocking(true).expect("nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut held = Vec::new();
            while !thread_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((sock, _)) => held.push(sock),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        (addr, stop, handle)
    }

    #[test]
    fn breaker_trips_after_consecutive_timeouts_then_fast_fails() {
        let (addr, stop, handle) = blackhole();
        let tier = PeerTier::with_timeout(&addr, Duration::from_millis(50));
        // Slow failures until the breaker trips.
        for _ in 0..BREAKER_TRIP_AFTER {
            assert!(tier.get(1).is_none());
        }
        let k = tier.counters();
        assert_eq!(k.breaker_trips, 1, "tripped exactly once: {k:?}");
        assert!(k.breaker_open);
        assert_eq!(k.errors, u64::from(BREAKER_TRIP_AFTER));
        // While open, operations are refused in nanoseconds — well under
        // the 50 ms timeout, and without touching the socket.
        let start = Instant::now();
        for _ in 0..100 {
            assert!(tier.get(2).is_none());
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(50),
            "100 fast-fails took {elapsed:?}; breaker is not fast-failing"
        );
        let k = tier.counters();
        assert_eq!(k.breaker_fast_fails, 100);
        assert_eq!(
            k.errors,
            u64::from(BREAKER_TRIP_AFTER),
            "open breaker must not touch the socket"
        );
        // Open breaker advertises ~zero cost so deadline-aware readers
        // skip nothing by asking.
        assert_eq!(tier.cost_hint(), Duration::ZERO);
        stop.store(true, Ordering::SeqCst);
        handle.join().expect("blackhole thread");
    }

    #[test]
    fn half_open_probe_failure_reopens_with_longer_window() {
        let (addr, stop, handle) = blackhole();
        let tier = PeerTier::with_timeout(&addr, Duration::from_millis(30));
        for _ in 0..BREAKER_TRIP_AFTER {
            assert!(tier.get(1).is_none());
        }
        assert_eq!(tier.counters().breaker_trips, 1);
        // Wait out the first window (base 200 ms, +25% jitter ceiling).
        std::thread::sleep(BREAKER_BACKOFF_BASE * 5 / 4 + Duration::from_millis(10));
        // The next operation is the half-open probe; it times out again
        // and re-trips the breaker.
        assert!(tier.get(1).is_none());
        let k = tier.counters();
        assert_eq!(k.breaker_trips, 2, "failed probe must re-open: {k:?}");
        assert!(k.breaker_open);
        stop.store(true, Ordering::SeqCst);
        handle.join().expect("blackhole thread");
    }

    #[test]
    fn unreachable_peer_trips_breaker_on_connect_failures() {
        // Reserve a port and close it so nothing is listening.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind probe");
            l.local_addr().expect("probe addr").port()
        };
        let tier = PeerTier::with_timeout(format!("127.0.0.1:{port}"), Duration::from_millis(50));
        for _ in 0..BREAKER_TRIP_AFTER {
            assert!(tier.get(1).is_none());
        }
        let k = tier.counters();
        assert_eq!(k.breaker_trips, 1, "{k:?}");
        assert!(tier.get(2).is_none());
        assert_eq!(tier.counters().breaker_fast_fails, 1);
    }
}
