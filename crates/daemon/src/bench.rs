//! `bench-daemon`: measures interactive-session latency against a live
//! daemon — N concurrent connections, M edit/decompile rounds each —
//! and reports p50/p95/p99 percentiles plus the headline
//! incremental-vs-cold speedup (a 1-function edit in a 16-function
//! module must be ≥5× cheaper than re-decompiling everything).
//!
//! Three request series per connection:
//!
//! * **cold** — every function's constant edited, so every function is
//!   dirty and re-runs `decompile_function`;
//! * **incremental** — exactly one function edited; the rest answer from
//!   the shared serve cache;
//! * **fast path** — no edit at all; the session answers from its
//!   retained result without touching the scheduler.
//!
//! A fourth phase replays the real PolyBench suite (open + decompile
//! per module) so the numbers aren't only about synthetic kernels.

use crate::client::DaemonClient;
use crate::protocol::Response;
use crate::server::{Daemon, DaemonConfig};
use splendid_ir::printer::module_str;
use splendid_polybench::Harness;
use std::time::{Duration, Instant};

/// Latency percentiles over one request series, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Sample count.
    pub samples: usize,
}

/// Nearest-rank percentiles (`ceil(p·n)`-th smallest) over a sample set.
/// Returns zeros for an empty set.
pub fn percentiles(samples: &[Duration]) -> Percentiles {
    if samples.is_empty() {
        return Percentiles {
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            samples: 0,
        };
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let rank = |p: f64| -> f64 {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx].as_secs_f64() * 1e3
    };
    Percentiles {
        p50_ms: rank(0.50),
        p95_ms: rank(0.95),
        p99_ms: rank(0.99),
        samples: sorted.len(),
    }
}

impl Percentiles {
    /// Render as a JSON object (hand-rolled; the offline build has no
    /// serde).
    pub fn json(&self) -> String {
        format!(
            "{{ \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"samples\": {} }}",
            self.p50_ms, self.p95_ms, self.p99_ms, self.samples
        )
    }
}

/// Build the textual IR of a synthetic module with one stencil kernel
/// per constant, through the in-tree pipeline (cfront → O2 →
/// auto-parallelize → print). Each kernel works its own global arrays,
/// so editing one constant dirties exactly one function.
pub fn synthetic_module(consts: &[f64]) -> Result<String, String> {
    synthetic_module_tagged("", consts)
}

/// [`synthetic_module`] with `tag` (a C-identifier fragment) spliced
/// into every global and kernel name. Tagged modules have *distinct
/// module contexts* — distinct admission tenants — where untagged ones
/// all share one context fingerprint (globals and debug vars are the
/// context; constants are not). `bench-overload` uses this to drive
/// mixed-tenant load.
pub fn synthetic_module_tagged(tag: &str, consts: &[f64]) -> Result<String, String> {
    use splendid_cfront::{lower_program, parse_program, LowerOptions};
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_transforms::{optimize_module, O2Options};

    let mut src = String::new();
    for (i, c) in consts.iter().enumerate() {
        // Shadow the index with its tagged form: `i` below only ever
        // appears inside identifiers.
        let i = format!("{tag}{i}");
        // PolyBench-weight kernels (gemm plus a 5-point stencil sweep):
        // enough loop nests and statements that decompiling one function
        // dominates the fixed per-request costs, as real modules do.
        // Decompile cost tracks IR size (statements and loop nests, not
        // trip counts), so weight comes from the number of nests: three
        // gemm-style triple nests plus two 5-point stencil sweeps per
        // kernel, about the shape of a mid-sized PolyBench kernel.
        src.push_str(&format!(
            "double A{i}[40][40];\ndouble B{i}[40][40];\ndouble C{i}[40][40];\n\
             double D{i}[40][40];\ndouble E{i}[40][40];\n"
        ));
        src.push_str(&format!(
            "void kernel{i}() {{\n  int r;\n  int c;\n  int k;\n  \
             for (r = 0; r < 40; r++) {{\n    for (c = 0; c < 40; c++) {{\n      \
             C{i}[r][c] = C{i}[r][c] * 0.75;\n      \
             for (k = 0; k < 40; k++) {{\n        \
             C{i}[r][c] = C{i}[r][c] + {c:?} * A{i}[r][k] * B{i}[k][c];\n      }}\n    }}\n  }}\n  \
             for (r = 0; r < 40; r++) {{\n    for (c = 0; c < 40; c++) {{\n      \
             D{i}[r][c] = D{i}[r][c] * 0.5;\n      \
             for (k = 0; k < 40; k++) {{\n        \
             D{i}[r][c] = D{i}[r][c] + {c:?} * B{i}[r][k] * C{i}[k][c];\n      }}\n    }}\n  }}\n  \
             for (r = 0; r < 40; r++) {{\n    for (c = 0; c < 40; c++) {{\n      \
             E{i}[r][c] = E{i}[r][c] * 0.25;\n      \
             for (k = 0; k < 40; k++) {{\n        \
             E{i}[r][c] = E{i}[r][c] + {c:?} * C{i}[r][k] * D{i}[k][c];\n      }}\n    }}\n  }}\n  \
             for (r = 1; r < 39; r++) {{\n    for (c = 1; c < 39; c++) {{\n      \
             A{i}[r][c] = (B{i}[r-1][c] + B{i}[r+1][c] + B{i}[r][c-1] + B{i}[r][c+1]) * {c:?};\n    \
             }}\n  }}\n  \
             for (r = 1; r < 39; r++) {{\n    for (c = 1; c < 39; c++) {{\n      \
             B{i}[r][c] = (E{i}[r-1][c] + E{i}[r+1][c] + E{i}[r][c-1] + E{i}[r][c+1]) * {c:?};\n    \
             }}\n  }}\n}}\n"
        ));
    }
    let prog = parse_program(&src).map_err(|e| e.to_string())?;
    let mut m =
        lower_program(&prog, "bench", &LowerOptions::default()).map_err(|e| e.to_string())?;
    optimize_module(&mut m, &O2Options::default());
    parallelize_module(&mut m, &ParallelizeOptions::default());
    Ok(module_str(&m))
}

/// Constant for (connection, round, function): distinct across all three
/// axes so no two connections or rounds ever share a function body.
fn bench_const(conn: usize, round: usize, func: usize) -> f64 {
    1.0 + conn as f64 * 0.001 + round as f64 * 0.01 + func as f64 * 0.1
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Edit/decompile rounds per connection.
    pub rounds: usize,
    /// Functions per synthetic module (the headline uses 16).
    pub functions: usize,
    /// Attach to a daemon at this TCP address instead of starting an
    /// in-process one.
    pub addr: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            connections: 4,
            rounds: 8,
            functions: 16,
            addr: None,
        }
    }
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Echo of the configuration.
    pub connections: usize,
    /// Echo of the configuration.
    pub rounds: usize,
    /// Echo of the configuration.
    pub functions: usize,
    /// All functions dirty (every constant edited).
    pub cold: Percentiles,
    /// Exactly one function dirty.
    pub incremental: Percentiles,
    /// Nothing dirty; answered from the session's retained result.
    pub fast_path: Percentiles,
    /// UPDATE frame latency, round-trip as the client sees it.
    pub update: Percentiles,
    /// Server-side share of UPDATE spent span-scanning and hashing the
    /// new text (the re-fingerprint work itself).
    pub update_fingerprint: Percentiles,
    /// Server-side share of UPDATE spent diffing fingerprints and
    /// updating session bookkeeping.
    pub update_bookkeeping: Percentiles,
    /// cold p50 ÷ incremental p50 — the headline number.
    pub incremental_speedup: f64,
    /// cold p50 ÷ fast-path p50.
    pub fast_path_speedup: f64,
    /// PolyBench corpus open+decompile latency, one module per request.
    pub corpus: Percentiles,
    /// Modules in the corpus phase.
    pub corpus_modules: usize,
}

impl BenchReport {
    /// Render as pretty-printed JSON (hand-rolled; no serde offline).
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"bench-daemon\",\n");
        out.push_str(&format!("  \"connections\": {},\n", self.connections));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!(
            "  \"functions_per_module\": {},\n",
            self.functions
        ));
        out.push_str(&format!("  \"cold\": {},\n", self.cold.json()));
        out.push_str(&format!(
            "  \"incremental\": {},\n",
            self.incremental.json()
        ));
        out.push_str(&format!("  \"fast_path\": {},\n", self.fast_path.json()));
        out.push_str(&format!("  \"update\": {},\n", self.update.json()));
        out.push_str(&format!(
            "  \"update_fingerprint\": {},\n",
            self.update_fingerprint.json()
        ));
        out.push_str(&format!(
            "  \"update_bookkeeping\": {},\n",
            self.update_bookkeeping.json()
        ));
        out.push_str(&format!(
            "  \"incremental_speedup\": {:.3},\n",
            self.incremental_speedup
        ));
        out.push_str(&format!(
            "  \"fast_path_speedup\": {:.3},\n",
            self.fast_path_speedup
        ));
        out.push_str(&format!("  \"corpus_modules\": {},\n", self.corpus_modules));
        out.push_str(&format!("  \"corpus\": {}\n", self.corpus.json()));
        out.push_str("}\n");
        out
    }

    /// Render as human-oriented text.
    pub fn text(&self) -> String {
        let line = |label: &str, p: &Percentiles| {
            format!(
                "  {label:<12} p50 {:8.3}ms  p95 {:8.3}ms  p99 {:8.3}ms  ({} samples)\n",
                p.p50_ms, p.p95_ms, p.p99_ms, p.samples
            )
        };
        let mut out = format!(
            "bench-daemon: {} connection(s) x {} round(s), {}-function module\n",
            self.connections, self.rounds, self.functions
        );
        out.push_str(&line("cold", &self.cold));
        out.push_str(&line("incremental", &self.incremental));
        out.push_str(&line("fast-path", &self.fast_path));
        out.push_str(&line("update", &self.update));
        out.push_str(&line("  fingerprint", &self.update_fingerprint));
        out.push_str(&line("  bookkeeping", &self.update_bookkeeping));
        out.push_str(&format!(
            "  speedup      incremental {:.2}x, fast-path {:.2}x (vs cold, p50)\n",
            self.incremental_speedup, self.fast_path_speedup
        ));
        out.push_str(&format!(
            "corpus: {} polybench modules, open+decompile per module\n",
            self.corpus_modules
        ));
        out.push_str(&line("corpus", &self.corpus));
        out
    }
}

/// Per-connection sample series.
#[derive(Default)]
struct Series {
    cold: Vec<Duration>,
    incremental: Vec<Duration>,
    fast_path: Vec<Duration>,
    update: Vec<Duration>,
    update_fingerprint: Vec<Duration>,
    update_bookkeeping: Vec<Duration>,
}

impl Series {
    /// Time one UPDATE round-trip and record the server-side split the
    /// UPDATED frame reports.
    fn timed_update(
        &mut self,
        client: &mut DaemonClient,
        text: &str,
    ) -> Result<(u32, u32), String> {
        let t = Instant::now();
        let resp = client.update(text).map_err(|e| e.to_string())?;
        self.update.push(t.elapsed());
        let Response::Updated {
            dirty,
            total,
            fingerprint_nanos,
            bookkeeping_nanos,
        } = resp
        else {
            return Err(format!("expected UPDATED, got {resp:?}"));
        };
        self.update_fingerprint
            .push(Duration::from_nanos(fingerprint_nanos));
        self.update_bookkeeping
            .push(Duration::from_nanos(bookkeeping_nanos));
        Ok((dirty, total))
    }
}

/// One phase of a benchmark round.
#[derive(Clone, Copy)]
enum Phase {
    Cold,
    Incremental,
    FastPath,
}

/// The edit half of a phase: build the round's module text (a full
/// cfront → O2 → parallelize run — deliberately NOT inside the timed
/// decompile) and send the UPDATE.
fn run_phase_edit(
    client: &mut DaemonClient,
    phase: Phase,
    conn: usize,
    round: usize,
    cfg: &BenchConfig,
    series: &mut Series,
) -> Result<(), String> {
    let mut consts: Vec<f64> = (0..cfg.functions)
        .map(|f| bench_const(conn, round, f))
        .collect();
    match phase {
        Phase::Cold => {
            // Every function edited (fresh round constants) — all dirty.
            let text = synthetic_module(&consts)?;
            let (dirty, total) = series.timed_update(client, &text)?;
            if dirty != total {
                return Err(format!(
                    "cold round: expected all dirty, got {dirty}/{total}"
                ));
            }
        }
        Phase::Incremental => {
            // Only function 0 edited relative to the cold phase.
            consts[0] += 0.5;
            let text = synthetic_module(&consts)?;
            let (dirty, _) = series.timed_update(client, &text)?;
            if dirty != 1 {
                return Err(format!("incremental round: expected 1 dirty, got {dirty}"));
            }
        }
        Phase::FastPath => {} // no edit at all
    }
    Ok(())
}

/// The measured half of a phase: one DECOMPILE, timed.
fn run_phase_decompile(
    client: &mut DaemonClient,
    phase: Phase,
    cfg: &BenchConfig,
    series: &mut Series,
) -> Result<(), String> {
    let t = Instant::now();
    let resp = client.decompile().map_err(|e| e.to_string())?;
    let wall = t.elapsed();
    match phase {
        Phase::Cold => series.cold.push(wall),
        Phase::Incremental => {
            if let Response::Result { cached, .. } = &resp {
                if *cached as usize != cfg.functions - 1 {
                    return Err(format!(
                        "incremental round: expected {} cached, got {cached}",
                        cfg.functions - 1
                    ));
                }
            }
            series.incremental.push(wall);
        }
        Phase::FastPath => {
            if !matches!(
                resp,
                Response::Result {
                    fast_path: true,
                    ..
                }
            ) {
                return Err("fast-path round did not take the fast path".into());
            }
            series.fast_path.push(wall);
        }
    }
    Ok(())
}

/// Drive one connection's edit/decompile rounds.
///
/// Connections run in lockstep — a barrier before each phase's edit
/// half, and another between edit and decompile — so a timed DECOMPILE
/// only ever competes with its own kind: cold against cold, incremental
/// against incremental. Without the barriers, on a small machine an
/// incremental request mostly measures queueing behind a neighbor's
/// cold fan-out, UPDATE prepare, or client-side module construction,
/// not the incremental machinery.
///
/// Every thread executes the identical barrier schedule (`rounds` × 3
/// phases × 2 waits) even after a failure — it just stops doing work —
/// so one bad connection can never deadlock the others at a barrier.
fn run_connection(
    addr: &str,
    conn: usize,
    cfg: &BenchConfig,
    barrier: &std::sync::Barrier,
    failed: &std::sync::atomic::AtomicBool,
) -> Result<Series, String> {
    use std::sync::atomic::Ordering;

    let mut series = Series::default();
    let mut err: Option<String> = None;
    let mut client = (|| -> Result<DaemonClient, String> {
        let mut client = DaemonClient::connect_tcp(addr).map_err(|e| e.to_string())?;
        let consts: Vec<f64> = (0..cfg.functions)
            .map(|f| bench_const(conn, 0, f))
            .collect();
        client
            .open(&format!("bench-c{conn}"), 3, &synthetic_module(&consts)?)
            .map_err(|e| e.to_string())?;
        Ok(client)
    })()
    .map_err(|e| {
        failed.store(true, Ordering::Relaxed);
        err = Some(e);
    })
    .ok();

    for round in 1..=cfg.rounds {
        for phase in [Phase::Cold, Phase::Incremental, Phase::FastPath] {
            barrier.wait();
            if !failed.load(Ordering::Relaxed) {
                if let Some(c) = client.as_mut() {
                    if let Err(e) = run_phase_edit(c, phase, conn, round, cfg, &mut series) {
                        failed.store(true, Ordering::Relaxed);
                        err = Some(e);
                    }
                }
            }
            barrier.wait();
            if !failed.load(Ordering::Relaxed) {
                if let Some(c) = client.as_mut() {
                    if let Err(e) = run_phase_decompile(c, phase, cfg, &mut series) {
                        failed.store(true, Ordering::Relaxed);
                        err = Some(e);
                    }
                }
            }
        }
    }

    if let Some(e) = err {
        return Err(e);
    }
    if failed.load(Ordering::Relaxed) {
        return Err("aborted: another bench connection failed".into());
    }
    match client {
        Some(mut c) => c.close().map_err(|e| e.to_string())?,
        None => return Err("bench connection never opened".into()),
    }
    Ok(series)
}

/// Replay the real PolyBench suite: open + decompile, one module per
/// request, on a single connection.
fn run_corpus(addr: &str) -> Result<(Vec<Duration>, usize), String> {
    let suite = Harness::polly_suite().map_err(|e| e.to_string())?;
    let count = suite.len();
    let mut client = DaemonClient::connect_tcp(addr).map_err(|e| e.to_string())?;
    let mut samples = Vec::with_capacity(count);
    for (name, module) in suite {
        let text = module_str(&module);
        let t = Instant::now();
        client.open(&name, 3, &text).map_err(|e| e.to_string())?;
        client.decompile().map_err(|e| e.to_string())?;
        samples.push(t.elapsed());
    }
    client.close().map_err(|e| e.to_string())?;
    Ok((samples, count))
}

/// Run the benchmark. With `cfg.addr == None`, a daemon is started
/// in-process on a loopback port and drained afterwards.
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let owned_daemon = match cfg.addr {
        Some(_) => None,
        None => {
            let mut config = DaemonConfig {
                max_connections: cfg.connections + 2,
                ..Default::default()
            };
            // Provision one worker per client, as a deployment serving N
            // interactive sessions would: otherwise on a small machine an
            // incremental request queues behind other connections' cold
            // fan-outs and the measured latency is mostly queueing.
            config.serve.workers = cfg
                .connections
                .max(std::thread::available_parallelism().map_or(1, |n| n.get()));
            Some(Daemon::start(config).map_err(|e| e.to_string())?)
        }
    };
    let addr = match (&cfg.addr, &owned_daemon) {
        (Some(a), _) => a.clone(),
        (None, Some(d)) => d.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(cfg.connections));
    let failed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..cfg.connections)
        .map(|conn| {
            let addr = addr.clone();
            let cfg = cfg.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            let failed = std::sync::Arc::clone(&failed);
            std::thread::spawn(move || run_connection(&addr, conn, &cfg, &barrier, &failed))
        })
        .collect();
    let mut all = Series::default();
    for h in handles {
        let s = h
            .join()
            .map_err(|_| "bench connection thread panicked".to_string())??;
        all.cold.extend(s.cold);
        all.incremental.extend(s.incremental);
        all.fast_path.extend(s.fast_path);
        all.update.extend(s.update);
        all.update_fingerprint.extend(s.update_fingerprint);
        all.update_bookkeeping.extend(s.update_bookkeeping);
    }

    let (corpus_samples, corpus_modules) = run_corpus(&addr)?;

    if let Some(daemon) = owned_daemon {
        if !daemon.drain() {
            return Err("daemon failed to drain cleanly after the benchmark".into());
        }
    }

    let cold = percentiles(&all.cold);
    let incremental = percentiles(&all.incremental);
    let fast_path = percentiles(&all.fast_path);
    Ok(BenchReport {
        connections: cfg.connections,
        rounds: cfg.rounds,
        functions: cfg.functions,
        cold,
        incremental,
        fast_path,
        update: percentiles(&all.update),
        update_fingerprint: percentiles(&all.update_fingerprint),
        update_bookkeeping: percentiles(&all.update_bookkeeping),
        incremental_speedup: cold.p50_ms / incremental.p50_ms.max(1e-9),
        fast_path_speedup: cold.p50_ms / fast_path.p50_ms.max(1e-9),
        corpus: percentiles(&corpus_samples),
        corpus_modules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let p = percentiles(&samples);
        assert_eq!(p.samples, 100);
        assert!((p.p50_ms - 50.0).abs() < 1e-9, "{p:?}");
        assert!((p.p95_ms - 95.0).abs() < 1e-9, "{p:?}");
        assert!((p.p99_ms - 99.0).abs() < 1e-9, "{p:?}");
        let one = percentiles(&[Duration::from_millis(7)]);
        assert!((one.p99_ms - 7.0).abs() < 1e-9);
        assert_eq!(percentiles(&[]).samples, 0);
    }

    #[test]
    fn synthetic_module_has_requested_function_count() {
        let text = synthetic_module(&[0.5, 1.5]).unwrap();
        let m = splendid_ir::parser::parse_module(&text).unwrap();
        // Kernels plus their outlined parallel-region functions; the
        // latter are inlined away by prepare_module.
        let kernels = m.functions.iter().filter(|f| !f.is_outlined).count();
        assert_eq!(kernels, 2);
    }
}
