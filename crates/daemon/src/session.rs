//! Interactive decompilation sessions: retained module text, span
//! fingerprints, and the incremental re-decompilation logic.
//!
//! Invalidation rules (see DESIGN.md, "Allocation-free hot path"):
//!
//! * OPEN parses and prepares the module eagerly (the reply reports the
//!   function count) and span-fingerprints the text
//!   ([`splendid_core::fingerprint::span_fingerprints_into`]: one linear
//!   pass, no parsing). Everything starts dirty.
//! * UPDATE never parses. It re-hashes the function spans of the new
//!   text into warm buffers and diffs them against the previous scan —
//!   microseconds, allocation-free in steady state. A changed function
//!   body marks its *root* dirty ([`splendid_core::incremental::root_of`]
//!   folds outlined `_polly_parN` regions into the kernel they are
//!   inlined back into); a preamble change or any added/removed/renamed
//!   function marks everything dirty. Parse errors in the new text are
//!   deliberately not detected here — they surface at the next
//!   DECOMPILE, which is the first request that needs the IR.
//! * DECOMPILE re-prepares lazily. When only a minority of roots is
//!   dirty it builds a *mini-module* (preamble + dirty-root spans) and
//!   [`splendid_core::incremental::reprepare`]s just those bytes,
//!   transplanting the prepared functions into a clone of the previous
//!   prepared module — parse + detransform cost tracks the edit, not the
//!   module. Any structural surprise falls back to a full prepare;
//!   correctness never depends on the incremental path. Unchanged
//!   functions keep their content fingerprints and come back from the
//!   content-addressed serve cache; with nothing dirty at all, the
//!   retained last result answers without touching the scheduler.

use splendid_core::fingerprint::{span_fingerprints_into, SpanFingerprints};
use splendid_core::incremental::{reprepare, root_of};
use splendid_core::{prepare_module, PreparedModule, SplendidOptions, StageTimings, Variant};
use splendid_ir::{parser::parse_module, ModuleSpans};
use splendid_serve::{Busy, JobError, JobInput, JobRequest, Scheduler, ServeStats};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Why a DECOMPILE produced no reply: refused at admission (the caller
/// should back off and retry) or accepted-but-failed (a job error).
#[derive(Debug)]
pub enum SessionError {
    /// Shed at admission; carries the retry hint for the BUSY frame.
    Busy(Busy),
    /// The job ran (or tried to) and failed.
    Job(JobError),
}

impl From<JobError> for SessionError {
    fn from(e: JobError) -> SessionError {
        SessionError::Job(e)
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Busy(b) => b.fmt(f),
            SessionError::Job(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SessionError {}

/// Decode the wire variant byte; `None` for out-of-range values.
pub fn variant_from_wire(v: u8) -> Option<Variant> {
    match v {
        1 => Some(Variant::V1),
        2 => Some(Variant::Portable),
        3 => Some(Variant::Full),
        _ => None,
    }
}

/// What a session's UPDATE returns to the connection handler.
#[derive(Debug, Clone, Copy)]
pub struct UpdateOutcome {
    /// Root functions dirty after this update (accumulated since the
    /// last successful decompile).
    pub dirty: u32,
    /// Total root functions in the module text.
    pub total: u32,
    /// Time spent span-scanning and hashing the new text.
    pub fingerprint_nanos: u64,
    /// Time spent diffing fingerprints and updating session state.
    pub bookkeeping_nanos: u64,
}

/// What a session's DECOMPILE returns to the connection handler.
#[derive(Debug, Clone)]
pub struct DecompileReply {
    /// The decompiled C translation unit.
    pub source: String,
    /// Functions in the module.
    pub functions: u32,
    /// Functions answered from the shared serve cache.
    pub cached: u32,
    /// Functions emitted below the `Natural` tier.
    pub degraded: u32,
    /// Functions that were dirty going into this request.
    pub dirty: u32,
    /// Whole request answered from the session's retained result.
    pub fast_path: bool,
}

/// Retained result of the last successful decompile.
struct LastResult {
    source: String,
    functions: u32,
    degraded: u32,
}

/// One client's interactive session: module state + incremental bookkeeping.
pub struct Session {
    /// Daemon-wide session id (assigned by the server).
    pub id: u32,
    /// Caller-chosen module label.
    pub name: String,
    options: SplendidOptions,
    /// Per-session serve counters, teed from the shared scheduler.
    pub stats: Arc<ServeStats>,
    /// Retained module text — the source of truth between UPDATEs.
    text: String,
    /// Span scan of `text` (byte ranges of the preamble and every `func`
    /// definition). Warm buffer: reused across updates.
    spans: ModuleSpans,
    /// Span fingerprints of `text`, parallel to `spans`.
    span_fps: SpanFingerprints,
    /// Scratch buffers the next UPDATE scans into before the diff (then
    /// swapped with `spans`/`span_fps`, so both stay warm).
    scratch_spans: ModuleSpans,
    scratch_fps: SpanFingerprints,
    /// Distinct root functions in `spans` (outlined regions folded into
    /// their kernels) — the `total` every UPDATE reply reports.
    roots_total: u32,
    /// Roots whose span hash changed since the last successful decompile.
    dirty_roots: BTreeSet<String>,
    /// Everything is dirty (fresh OPEN, preamble edit, or any
    /// added/removed/renamed function).
    all_dirty: bool,
    /// The prepared (parsed + detransformed) module, submitted as
    /// [`JobInput::Prepared`] behind an `Arc` so DECOMPILE skips straight
    /// to the per-function fan-out without copying it.
    prepared: Arc<PreparedModule>,
    /// `prepared` no longer reflects `text`; the next DECOMPILE must
    /// re-prepare (incrementally when it can) before submitting.
    prepared_stale: bool,
    last: Option<LastResult>,
    /// Request counters for the stats surface.
    opens: u64,
    updates: u64,
    decompiles: u64,
    fast_path_decompiles: u64,
    /// Creation time, for the stats dump.
    started: Instant,
}

/// Distinct root-function count of a span scan.
fn count_roots(spans: &ModuleSpans, text: &str) -> u32 {
    let mut roots: Vec<&str> = spans
        .funcs
        .iter()
        .map(|f| root_of(f.name_str(text)))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len() as u32
}

/// Parse and prepare module text from scratch (the non-incremental path).
fn full_prepare(text: &str, opts: &SplendidOptions) -> Result<PreparedModule, JobError> {
    let module = parse_module(text).map_err(|e| JobError::Parse(e.to_string()))?;
    let mut timings = StageTimings::default();
    let prepared = prepare_module(&module, opts, &mut timings)
        .map_err(|e| JobError::Prepare(e.to_string()))?;
    // Populate the memoized digests before sharing: every later consumer
    // (cache keys, dirty diffs) reads the same computed-once values.
    prepared.digests();
    Ok(prepared)
}

impl Session {
    /// Open a session over parsed module text. Every function starts dirty.
    pub fn open(id: u32, name: String, variant: Variant, text: &str) -> Result<Session, String> {
        let options = SplendidOptions {
            variant,
            ..SplendidOptions::default()
        };
        let prepared = full_prepare(text, &options).map_err(|e| e.to_string())?;
        let mut spans = ModuleSpans::default();
        let mut span_fps = SpanFingerprints::default();
        span_fingerprints_into(text, &mut spans, &mut span_fps);
        let roots_total = count_roots(&spans, text);
        Ok(Session {
            id,
            name,
            options,
            stats: Arc::new(ServeStats::default()),
            text: text.to_string(),
            spans,
            span_fps,
            scratch_spans: ModuleSpans::default(),
            scratch_fps: SpanFingerprints::default(),
            roots_total,
            dirty_roots: BTreeSet::new(),
            all_dirty: true,
            prepared: Arc::new(prepared),
            prepared_stale: false,
            last: None,
            opens: 1,
            updates: 0,
            decompiles: 0,
            fast_path_decompiles: 0,
            started: Instant::now(),
        })
    }

    /// Functions in the current prepared module (outlined parallel
    /// regions are inlined away) — the unit of incremental
    /// re-decompilation, and the count the OPENED frame reports.
    pub fn functions(&self) -> u32 {
        self.prepared.digests().functions.len() as u32
    }

    /// Root functions dirty right now.
    fn dirty_count(&self) -> u32 {
        if self.all_dirty {
            self.roots_total
        } else {
            self.dirty_roots.len() as u32
        }
    }

    /// Replace the module text, dirty-diffing span fingerprints against
    /// the previous scan. No parsing happens here — this is the hot
    /// path an editor hits on every keystroke burst.
    pub fn update(&mut self, text: &str) -> UpdateOutcome {
        self.updates += 1;
        let t0 = Instant::now();
        span_fingerprints_into(text, &mut self.scratch_spans, &mut self.scratch_fps);
        let fingerprint_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let t1 = Instant::now();
        let mut structural = self.scratch_fps.preamble != self.span_fps.preamble
            || self.scratch_fps.funcs.len() != self.span_fps.funcs.len();
        let mut changed = structural;
        if !structural {
            for (i, f) in self.scratch_fps.funcs.iter().enumerate() {
                match self.span_fps.position_of(f.name_hash) {
                    None => {
                        // Renamed (or hash-colliding) function: be safe.
                        structural = true;
                        changed = true;
                        break;
                    }
                    Some(j) => {
                        if self.span_fps.funcs[j].body_hash != f.body_hash {
                            changed = true;
                            let name = self.scratch_spans.funcs[i].name_str(text);
                            self.dirty_roots.insert(root_of(name).to_string());
                        }
                    }
                }
            }
        }
        if changed {
            // Keep both buffer pairs warm by swapping rather than moving.
            std::mem::swap(&mut self.spans, &mut self.scratch_spans);
            std::mem::swap(&mut self.span_fps, &mut self.scratch_fps);
            self.text.clear();
            self.text.push_str(text);
            self.roots_total = count_roots(&self.spans, &self.text);
            self.prepared_stale = true;
            // The retained result no longer matches the module text.
            self.last = None;
            if structural {
                self.all_dirty = true;
                self.dirty_roots.clear();
            }
        }
        UpdateOutcome {
            dirty: self.dirty_count(),
            total: self.roots_total,
            fingerprint_nanos,
            bookkeeping_nanos: u64::try_from(t1.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Bring `prepared` back in sync with `text`: incrementally when a
    /// strict minority of roots is dirty, from scratch otherwise (or
    /// whenever the incremental path declines).
    fn refresh_prepared(&mut self) -> Result<(), JobError> {
        if !self.all_dirty
            && !self.dirty_roots.is_empty()
            && (self.dirty_roots.len() as u32) < self.roots_total
        {
            let mut mini = String::new();
            for &(a, b) in &self.spans.preamble {
                mini.push_str(&self.text[a..b]);
            }
            for f in &self.spans.funcs {
                if self.dirty_roots.contains(root_of(f.name_str(&self.text))) {
                    mini.push_str(f.body_str(&self.text));
                }
            }
            let roots: Vec<&str> = self.dirty_roots.iter().map(|s| s.as_str()).collect();
            let mut timings = StageTimings::default();
            if let Ok(p) = reprepare(&self.prepared, &mini, &roots, &self.options, &mut timings) {
                self.prepared = Arc::new(p);
                self.prepared_stale = false;
                return Ok(());
            }
            // Recoverable by design: fall through to the full prepare.
        }
        self.prepared = Arc::new(full_prepare(&self.text, &self.options)?);
        self.prepared_stale = false;
        Ok(())
    }

    /// The session's tenant id for admission fairness: the prepared
    /// module's context fingerprint (the `ModuleDigests` digest), so
    /// "one tenant" means one module being worked on, however many
    /// connections hammer it.
    pub fn tenant(&self) -> u64 {
        self.prepared.context_fingerprint()
    }

    /// Decompile the current module incrementally through the shared
    /// scheduler (or from the retained result when nothing is dirty).
    pub fn decompile(&mut self, scheduler: &Scheduler) -> Result<DecompileReply, JobError> {
        self.decompile_with(scheduler, None).map_err(|e| match e {
            // Budget-less callers (tests, legacy paths) never configure
            // admission bounds, but map a refusal defensively anyway.
            SessionError::Busy(b) => JobError::Decompile(b.to_string()),
            SessionError::Job(e) => e,
        })
    }

    /// [`Session::decompile`] with overload protection: the request
    /// passes through scheduler admission (keyed by this session's
    /// tenant id) before any work happens, and `deadline` — the wire
    /// budget, made absolute — rides the job through the scheduler and
    /// cache tiers. The fast path is exempt from admission: answering
    /// from the retained result costs nanoseconds and touches no queue.
    pub fn decompile_with(
        &mut self,
        scheduler: &Scheduler,
        deadline: Option<Instant>,
    ) -> Result<DecompileReply, SessionError> {
        self.decompiles += 1;
        let dirty = self.dirty_count();
        if dirty == 0 {
            if let Some(last) = &self.last {
                self.fast_path_decompiles += 1;
                return Ok(DecompileReply {
                    source: last.source.clone(),
                    functions: last.functions,
                    cached: last.functions,
                    degraded: last.degraded,
                    dirty: 0,
                    fast_path: true,
                });
            }
        }
        // Admit before re-preparing: a to-be-shed request must not burn
        // CPU on parse/detransform first. The ticket holds the queue
        // slot through the prepare (dropped on the error path).
        let ticket = scheduler
            .admit(Some(self.tenant()), deadline)
            .map_err(SessionError::Busy)?;
        if self.prepared_stale {
            self.refresh_prepared()?;
        }
        let request = JobRequest {
            name: self.name.clone(),
            input: JobInput::Prepared(Arc::clone(&self.prepared)),
            options: self.options.clone(),
        };
        let result = scheduler
            .submit_ticketed(ticket, request, Some(Arc::clone(&self.stats)))
            .wait()
            .map_err(SessionError::Job)?;
        self.all_dirty = false;
        self.dirty_roots.clear();
        let reply = DecompileReply {
            source: result.output.source.clone(),
            functions: result.functions as u32,
            cached: result.cached_functions as u32,
            degraded: result.degraded_functions as u32,
            dirty,
            fast_path: false,
        };
        self.last = Some(LastResult {
            source: result.output.source,
            functions: reply.functions,
            degraded: reply.degraded,
        });
        Ok(reply)
    }

    /// Stable, line-oriented session stats: request counters plus the
    /// session-scoped serve counters teed by `submit_with_stats`.
    pub fn stats_text(&self) -> String {
        let get = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!(
            "session {} ({}): up {}s, {} function(s), {} dirty\n",
            self.id,
            self.name,
            self.started.elapsed().as_secs(),
            self.functions(),
            self.dirty_count()
        ));
        out.push_str(&format!(
            "  requests   {} open / {} update / {} decompile ({} fast-path)\n",
            self.opens, self.updates, self.decompiles, self.fast_path_decompiles
        ));
        out.push_str(&format!(
            "  jobs       {} submitted / {} completed / {} failed / {} timed out\n",
            get(&s.jobs_submitted),
            get(&s.jobs_completed),
            get(&s.jobs_failed),
            get(&s.jobs_timed_out)
        ));
        out.push_str(&format!(
            "  functions  {} decompiled, {} from cache\n",
            get(&s.functions_decompiled),
            get(&s.functions_from_cache)
        ));
        out.push_str(&format!(
            "  fidelity   {} degraded ({} structured, {} literal), {} retried, {} quarantined\n",
            get(&s.functions_degraded_structured) + get(&s.functions_degraded_literal),
            get(&s.functions_degraded_structured),
            get(&s.functions_degraded_literal),
            get(&s.functions_retried),
            get(&s.functions_quarantined)
        ));
        out.push_str(&format!(
            "  stages     parse {:?}, detransform {:?}, naming {:?}, structure {:?}, emit {:?}\n",
            std::time::Duration::from_nanos(get(&s.ns_parse)),
            std::time::Duration::from_nanos(get(&s.ns_detransform)),
            std::time::Duration::from_nanos(get(&s.ns_naming)),
            std::time::Duration::from_nanos(get(&s.ns_structure)),
            std::time::Duration::from_nanos(get(&s.ns_emit)),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_cfront::{lower_program, parse_program, LowerOptions};
    use splendid_ir::printer::module_str;
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_serve::ServeConfig;
    use splendid_transforms::{optimize_module, O2Options};

    fn module_text(consts: &[f64]) -> String {
        let mut src = String::new();
        for (i, c) in consts.iter().enumerate() {
            src.push_str(&format!("double A{i}[64];\ndouble B{i}[64];\n"));
            src.push_str(&format!(
                "void kernel{i}() {{ int j; for (j = 1; j < 63; j++) {{ \
                 B{i}[j] = (A{i}[j-1] + A{i}[j+1]) * {c:?}; }} }}\n"
            ));
        }
        let prog = parse_program(&src).unwrap();
        let mut m = lower_program(&prog, "sess", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        parallelize_module(&mut m, &ParallelizeOptions::default());
        module_str(&m)
    }

    #[test]
    fn update_diffs_only_edited_functions() {
        let scheduler = Scheduler::new(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        let base = module_text(&[0.25, 0.5, 0.75]);
        let mut session = Session::open(1, "t".into(), Variant::Full, &base).unwrap();
        assert_eq!(session.functions(), 3);

        let first = session.decompile(&scheduler).unwrap();
        assert_eq!(first.dirty, 3);
        assert!(!first.fast_path);

        // Edit only the middle kernel's constant.
        let edited = module_text(&[0.25, 0.625, 0.75]);
        let u = session.update(&edited);
        assert_eq!((u.dirty, u.total), (1, 3), "exactly one function is dirty");

        let second = session.decompile(&scheduler).unwrap();
        assert_eq!(second.dirty, 1);
        assert_eq!(
            second.cached, 2,
            "unchanged functions come from the serve cache"
        );
        assert_ne!(first.source, second.source);

        // Identical text: nothing dirty, fast path answers in-session.
        let u = session.update(&edited);
        assert_eq!(u.dirty, 0);
        let third = session.decompile(&scheduler).unwrap();
        assert!(third.fast_path);
        assert_eq!(third.source, second.source);
    }

    #[test]
    fn incremental_output_matches_full_reprepare() {
        // The decompiled source after an incremental re-prepare must be
        // byte-identical to what a fresh session over the same text
        // produces — the transplant path must never change the output.
        let scheduler = Scheduler::new(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        let base = module_text(&[0.25, 0.5, 0.75]);
        let edited = module_text(&[0.25, 0.625, 0.75]);

        let mut session = Session::open(1, "t".into(), Variant::Full, &base).unwrap();
        session.decompile(&scheduler).unwrap();
        session.update(&edited);
        let incremental = session.decompile(&scheduler).unwrap();

        let mut fresh = Session::open(2, "t".into(), Variant::Full, &edited).unwrap();
        let full = fresh.decompile(&scheduler).unwrap();
        assert_eq!(incremental.source, full.source);
    }

    #[test]
    fn preamble_edits_dirty_everything() {
        let scheduler = Scheduler::new(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        let base = module_text(&[0.25, 0.5]);
        let mut session = Session::open(1, "t".into(), Variant::Full, &base).unwrap();
        session.decompile(&scheduler).unwrap();

        // Rename a global: the preamble hash shifts, so every function's
        // context — and hence every cache key — is suspect.
        let edited = base.replace("@A0", "@Z0");
        let u = session.update(&edited);
        assert_eq!(u.dirty, u.total, "preamble edits must dirty everything");
    }

    #[test]
    fn update_reports_timing_split() {
        let base = module_text(&[0.25]);
        let mut session = Session::open(1, "t".into(), Variant::Full, &base).unwrap();
        let u = session.update(&module_text(&[0.375]));
        assert_eq!(u.dirty, 1);
        assert!(u.fingerprint_nanos > 0, "scan+hash time must be measured");
    }

    #[test]
    fn garbage_update_fails_at_decompile_not_update() {
        let scheduler = Scheduler::new(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let base = module_text(&[0.25]);
        let mut session = Session::open(1, "t".into(), Variant::Full, &base).unwrap();
        session.decompile(&scheduler).unwrap();
        // UPDATE is validation-free by design (it never parses); the
        // error surfaces at the next DECOMPILE, and a corrective UPDATE
        // heals the session.
        session.update("this is not ir");
        let err = session.decompile(&scheduler).unwrap_err();
        assert!(matches!(err, JobError::Parse(_)), "{err:?}");
        session.update(&base);
        assert!(session.decompile(&scheduler).is_ok());
    }

    #[test]
    fn open_rejects_garbage_text() {
        assert!(Session::open(1, "g".into(), Variant::Full, "not ir at all").is_err());
    }
}
