//! Interactive decompilation sessions: a parsed module, its per-function
//! content fingerprints, and the incremental re-decompilation logic.
//!
//! Invalidation rules (see DESIGN.md, "Interactive daemon & wire
//! protocol"):
//!
//! * OPEN parses the module and fingerprints every function
//!   ([`splendid_core::module_fingerprints`], FNV-64 over canonical
//!   printed IR); everything starts dirty.
//! * UPDATE re-parses and re-fingerprints; a function is **dirty** when
//!   its digest changed or its name is new. A whole-module digest equality
//!   additionally catches global/debug-metadata changes: if it is
//!   unchanged, the update is a no-op (dirty = 0).
//! * DECOMPILE with nothing dirty and a retained last result answers from
//!   the session without touching the scheduler (the fast path). Otherwise
//!   the module is submitted to the shared [`Scheduler`]; unchanged
//!   functions come back from the content-addressed serve cache (their
//!   cache keys are built from the very same fingerprints), and only dirty
//!   functions re-run `decompile_function`.

use splendid_core::{prepare_module, PreparedModule, SplendidOptions, StageTimings, Variant};
use splendid_ir::{parser::parse_module, printer::module_str};
use splendid_serve::{JobError, JobInput, JobRequest, Scheduler, ServeStats};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Decode the wire variant byte; `None` for out-of-range values.
pub fn variant_from_wire(v: u8) -> Option<Variant> {
    match v {
        1 => Some(Variant::V1),
        2 => Some(Variant::Portable),
        3 => Some(Variant::Full),
        _ => None,
    }
}

/// What a session's DECOMPILE returns to the connection handler.
#[derive(Debug, Clone)]
pub struct DecompileReply {
    /// The decompiled C translation unit.
    pub source: String,
    /// Functions in the module.
    pub functions: u32,
    /// Functions answered from the shared serve cache.
    pub cached: u32,
    /// Functions emitted below the `Natural` tier.
    pub degraded: u32,
    /// Functions that were dirty going into this request.
    pub dirty: u32,
    /// Whole request answered from the session's retained result.
    pub fast_path: bool,
}

/// Retained result of the last successful decompile.
struct LastResult {
    source: String,
    functions: u32,
    degraded: u32,
}

/// One client's interactive session: module state + incremental bookkeeping.
pub struct Session {
    /// Daemon-wide session id (assigned by the server).
    pub id: u32,
    /// Caller-chosen module label.
    pub name: String,
    options: SplendidOptions,
    /// Per-session serve counters, teed from the shared scheduler.
    pub stats: Arc<ServeStats>,
    /// The prepared (parsed + detransformed) module. Preparing happens
    /// once per OPEN/UPDATE — the fingerprints need it anyway — and is
    /// submitted as [`JobInput::Prepared`] behind an `Arc`, so DECOMPILE
    /// skips straight to the per-function fan-out without copying the
    /// module.
    prepared: Arc<PreparedModule>,
    /// name → content fingerprint of the current module's *prepared*
    /// functions (outlined parallel regions inlined back into their
    /// callers, exactly the functions the scheduler fans out — so an
    /// edit inside an outlined region body dirties the kernel it is
    /// inlined into, matching the serve cache's keying).
    fingerprints: HashMap<String, u64>,
    /// Digest over the whole printed module (globals included).
    module_digest: u64,
    /// Functions changed since the last successful decompile.
    dirty: u32,
    last: Option<LastResult>,
    /// Request counters for the stats surface.
    opens: u64,
    updates: u64,
    decompiles: u64,
    fast_path_decompiles: u64,
    /// Creation time, for the stats dump.
    started: Instant,
}

/// What [`digest_module`] produces: the shared prepared module, the
/// prepared-function fingerprints, and the raw-module digest.
type DigestedModule = (Arc<PreparedModule>, HashMap<String, u64>, u64);

/// Parse and prepare module text, returning the prepared module, the
/// prepared-function fingerprints (so dirty tracking agrees with the
/// scheduler's cache keys by construction), and a digest over the raw
/// printed module for no-op detection.
fn digest_module(text: &str, opts: &SplendidOptions) -> Result<DigestedModule, String> {
    let module = parse_module(text).map_err(|e| e.to_string())?;
    let digest = splendid_core::fingerprint::fnv64(module_str(&module).as_bytes());
    let mut timings = StageTimings::default();
    let prepared = prepare_module(&module, opts, &mut timings).map_err(|e| e.to_string())?;
    // Populate the memoized digests before sharing: every later consumer
    // (cache keys, dirty diffs) reads the same computed-once values.
    let fingerprints = prepared.function_fingerprints().into_iter().collect();
    Ok((Arc::new(prepared), fingerprints, digest))
}

impl Session {
    /// Open a session over parsed module text. Every function starts dirty.
    pub fn open(id: u32, name: String, variant: Variant, text: &str) -> Result<Session, String> {
        let options = SplendidOptions {
            variant,
            ..SplendidOptions::default()
        };
        let (prepared, fingerprints, module_digest) = digest_module(text, &options)?;
        let dirty = fingerprints.len() as u32;
        Ok(Session {
            id,
            name,
            options,
            stats: Arc::new(ServeStats::default()),
            prepared,
            fingerprints,
            module_digest,
            dirty,
            last: None,
            opens: 1,
            updates: 0,
            decompiles: 0,
            fast_path_decompiles: 0,
            started: Instant::now(),
        })
    }

    /// Functions in the current module after preparation (outlined
    /// parallel regions are inlined away) — the unit of incremental
    /// re-decompilation, and the count every RESULT frame reports.
    pub fn functions(&self) -> u32 {
        self.fingerprints.len() as u32
    }

    /// Replace the module, dirty-diffing against the previous
    /// fingerprints. Returns `(dirty, total)`.
    pub fn update(&mut self, text: &str) -> Result<(u32, u32), String> {
        let (prepared, fingerprints, module_digest) = digest_module(text, &self.options)?;
        self.updates += 1;
        if module_digest == self.module_digest {
            // Byte-identical module: nothing to do, previous dirt stands.
            return Ok((self.dirty, self.functions()));
        }
        let mut newly_dirty = 0u32;
        for (name, fp) in &fingerprints {
            if self.fingerprints.get(name) != Some(fp) {
                newly_dirty += 1;
            }
        }
        // A non-function change (globals, debug vars) shifts the module
        // context every cache key includes; treat everything as dirty.
        if newly_dirty == 0 {
            newly_dirty = fingerprints.len() as u32;
        }
        self.prepared = prepared;
        self.fingerprints = fingerprints;
        self.module_digest = module_digest;
        // The retained result no longer matches the module text.
        self.last = None;
        self.dirty = self.dirty.saturating_add(newly_dirty).min(self.functions());
        Ok((self.dirty, self.functions()))
    }

    /// Decompile the current module incrementally through the shared
    /// scheduler (or from the retained result when nothing is dirty).
    pub fn decompile(&mut self, scheduler: &Scheduler) -> Result<DecompileReply, JobError> {
        self.decompiles += 1;
        let dirty = self.dirty;
        if dirty == 0 {
            if let Some(last) = &self.last {
                self.fast_path_decompiles += 1;
                return Ok(DecompileReply {
                    source: last.source.clone(),
                    functions: last.functions,
                    cached: last.functions,
                    degraded: last.degraded,
                    dirty: 0,
                    fast_path: true,
                });
            }
        }
        let request = JobRequest {
            name: self.name.clone(),
            input: JobInput::Prepared(Arc::clone(&self.prepared)),
            options: self.options.clone(),
        };
        let result = scheduler
            .submit_with_stats(request, Some(Arc::clone(&self.stats)))
            .wait()?;
        self.dirty = 0;
        let reply = DecompileReply {
            source: result.output.source.clone(),
            functions: result.functions as u32,
            cached: result.cached_functions as u32,
            degraded: result.degraded_functions as u32,
            dirty,
            fast_path: false,
        };
        self.last = Some(LastResult {
            source: result.output.source,
            functions: reply.functions,
            degraded: reply.degraded,
        });
        Ok(reply)
    }

    /// Stable, line-oriented session stats: request counters plus the
    /// session-scoped serve counters teed by `submit_with_stats`.
    pub fn stats_text(&self) -> String {
        let get = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!(
            "session {} ({}): up {}s, {} function(s), {} dirty\n",
            self.id,
            self.name,
            self.started.elapsed().as_secs(),
            self.functions(),
            self.dirty
        ));
        out.push_str(&format!(
            "  requests   {} open / {} update / {} decompile ({} fast-path)\n",
            self.opens, self.updates, self.decompiles, self.fast_path_decompiles
        ));
        out.push_str(&format!(
            "  jobs       {} submitted / {} completed / {} failed / {} timed out\n",
            get(&s.jobs_submitted),
            get(&s.jobs_completed),
            get(&s.jobs_failed),
            get(&s.jobs_timed_out)
        ));
        out.push_str(&format!(
            "  functions  {} decompiled, {} from cache\n",
            get(&s.functions_decompiled),
            get(&s.functions_from_cache)
        ));
        out.push_str(&format!(
            "  fidelity   {} degraded ({} structured, {} literal), {} retried, {} quarantined\n",
            get(&s.functions_degraded_structured) + get(&s.functions_degraded_literal),
            get(&s.functions_degraded_structured),
            get(&s.functions_degraded_literal),
            get(&s.functions_retried),
            get(&s.functions_quarantined)
        ));
        out.push_str(&format!(
            "  stages     parse {:?}, detransform {:?}, naming {:?}, structure {:?}, emit {:?}\n",
            std::time::Duration::from_nanos(get(&s.ns_parse)),
            std::time::Duration::from_nanos(get(&s.ns_detransform)),
            std::time::Duration::from_nanos(get(&s.ns_naming)),
            std::time::Duration::from_nanos(get(&s.ns_structure)),
            std::time::Duration::from_nanos(get(&s.ns_emit)),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_cfront::{lower_program, parse_program, LowerOptions};
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_serve::ServeConfig;
    use splendid_transforms::{optimize_module, O2Options};

    fn module_text(consts: &[f64]) -> String {
        let mut src = String::new();
        for (i, c) in consts.iter().enumerate() {
            src.push_str(&format!("double A{i}[64];\ndouble B{i}[64];\n"));
            src.push_str(&format!(
                "void kernel{i}() {{ int j; for (j = 1; j < 63; j++) {{ \
                 B{i}[j] = (A{i}[j-1] + A{i}[j+1]) * {c:?}; }} }}\n"
            ));
        }
        let prog = parse_program(&src).unwrap();
        let mut m = lower_program(&prog, "sess", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        parallelize_module(&mut m, &ParallelizeOptions::default());
        module_str(&m)
    }

    #[test]
    fn update_diffs_only_edited_functions() {
        let scheduler = Scheduler::new(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        let base = module_text(&[0.25, 0.5, 0.75]);
        let mut session = Session::open(1, "t".into(), Variant::Full, &base).unwrap();
        assert_eq!(session.functions(), 3);

        let first = session.decompile(&scheduler).unwrap();
        assert_eq!(first.dirty, 3);
        assert!(!first.fast_path);

        // Edit only the middle kernel's constant.
        let edited = module_text(&[0.25, 0.625, 0.75]);
        let (dirty, total) = session.update(&edited).unwrap();
        assert_eq!((dirty, total), (1, 3), "exactly one function is dirty");

        let second = session.decompile(&scheduler).unwrap();
        assert_eq!(second.dirty, 1);
        assert_eq!(
            second.cached, 2,
            "unchanged functions come from the serve cache"
        );
        assert_ne!(first.source, second.source);

        // Identical text: nothing dirty, fast path answers in-session.
        let (dirty, _) = session.update(&edited).unwrap();
        assert_eq!(dirty, 0);
        let third = session.decompile(&scheduler).unwrap();
        assert!(third.fast_path);
        assert_eq!(third.source, second.source);
    }

    #[test]
    fn open_rejects_garbage_text() {
        assert!(Session::open(1, "g".into(), Variant::Full, "not ir at all").is_err());
    }
}
