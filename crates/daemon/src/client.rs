//! Blocking daemon client used by `splendid connect`, `splendid
//! bench-daemon`, and the integration tests.
//!
//! The client side of the protocol is strict: it trusts the daemon to
//! frame correctly, so a desync from the server is an I/O error rather
//! than something to survive. (The lenient direction — surviving garbage
//! from peers — lives in the server's
//! [`FrameAssembler`](crate::protocol::FrameAssembler).)

use crate::protocol::{self, DecodeError, Request, Response};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// The client's transport, either flavor.
enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to a running daemon.
pub struct DaemonClient {
    transport: Transport,
}

impl DaemonClient {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<DaemonClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(DaemonClient {
            transport: Transport::Tcp(stream),
        })
    }

    /// Connect over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<DaemonClient> {
        Ok(DaemonClient {
            transport: Transport::Unix(UnixStream::connect(path)?),
        })
    }

    /// Cap how long a single response read may block.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match &self.transport {
            Transport::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Transport::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Send raw bytes as-is — the fuzz tests' hatch for malformed input.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.transport.write_all(bytes)?;
        self.transport.flush()
    }

    /// Read the next response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let (_, kind_byte, payload) = protocol::read_frame(&mut self.transport)?;
        match Response::decode(kind_byte, &payload) {
            Some(Ok(resp)) => Ok(resp),
            Some(Err(DecodeError(e))) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response payload from daemon: {e}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown response kind 0x{kind_byte:02x} from daemon"),
            )),
        }
    }

    /// Send one request and read its (1:1) response.
    pub fn roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        protocol::write_frame(&mut self.transport, req.kind(), &req.encode_payload())?;
        self.read_response()
    }

    /// OPEN a session; returns `(session id, function count)`.
    pub fn open(&mut self, name: &str, variant: u8, module_text: &str) -> io::Result<(u32, u32)> {
        match self.roundtrip(&Request::Open {
            name: name.into(),
            variant,
            module_text: module_text.into(),
        })? {
            Response::Opened { session, functions } => Ok((session, functions)),
            other => Err(unexpected("OPENED", &other)),
        }
    }

    /// UPDATE the session module; returns the full UPDATED response
    /// (dirty/total counts plus the server's fingerprint-vs-bookkeeping
    /// timing split).
    pub fn update(&mut self, module_text: &str) -> io::Result<Response> {
        match self.roundtrip(&Request::Update {
            module_text: module_text.into(),
        })? {
            r @ Response::Updated { .. } => Ok(r),
            other => Err(unexpected("UPDATED", &other)),
        }
    }

    /// DECOMPILE the session module; returns the full RESULT response.
    pub fn decompile(&mut self) -> io::Result<Response> {
        match self.roundtrip(&Request::Decompile { budget_ms: 0 })? {
            r @ Response::Result { .. } => Ok(r),
            other => Err(unexpected("RESULT", &other)),
        }
    }

    /// DECOMPILE with a client budget. Unlike [`DaemonClient::decompile`]
    /// this surfaces admission refusals: the result is either the RESULT
    /// response or a BUSY response (anything else, including daemon
    /// errors, is an I/O error). Callers under load inspect
    /// [`Response::Busy`] for the `retry_after_ms` hint.
    pub fn decompile_with_budget(&mut self, budget_ms: u32) -> io::Result<Response> {
        match self.roundtrip(&Request::Decompile { budget_ms })? {
            r @ (Response::Result { .. } | Response::Busy { .. }) => Ok(r),
            other => Err(unexpected("RESULT or BUSY", &other)),
        }
    }

    /// Fetch the stats text (session-scoped or daemon-wide).
    pub fn stats(&mut self, daemon_wide: bool) -> io::Result<String> {
        match self.roundtrip(&Request::Stats { daemon_wide })? {
            Response::StatsText { text } => Ok(text),
            other => Err(unexpected("STATS_TEXT", &other)),
        }
    }

    /// CLOSE the session (the connection stays usable).
    pub fn close(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Close)? {
            Response::Closed => Ok(()),
            other => Err(unexpected("CLOSED", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("PONG", &other)),
        }
    }

    /// VALIDATE: stateless validated decompilation of the supplied
    /// module; returns the full VALIDATED response.
    pub fn validate(&mut self, name: &str, variant: u8, module_text: &str) -> io::Result<Response> {
        match self.roundtrip(&Request::Validate {
            name: name.into(),
            variant,
            module_text: module_text.into(),
        })? {
            r @ Response::Validated { .. } => Ok(r),
            other => Err(unexpected("VALIDATED", &other)),
        }
    }

    /// CACHE_GET: look up a blob in the daemon's persistent tier.
    pub fn cache_get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        match self.roundtrip(&Request::CacheGet { key })? {
            Response::CacheValue { blob } => Ok(blob),
            other => Err(unexpected("CACHE_VALUE", &other)),
        }
    }

    /// CACHE_PUT: offer a record to the daemon's persistent tier;
    /// returns whether the daemon accepted it.
    pub fn cache_put(&mut self, key: u64, blob: &[u8]) -> io::Result<bool> {
        match self.roundtrip(&Request::CachePut {
            key,
            blob: blob.to_vec(),
        })? {
            Response::CacheStored { stored } => Ok(stored),
            other => Err(unexpected("CACHE_STORED", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> io::Error {
    let detail = match got {
        Response::Error { code, message } => format!("daemon error [{code}]: {message}"),
        Response::Busy { retry_after_ms } => {
            format!("daemon busy: retry in {retry_after_ms} ms")
        }
        other => format!("expected {wanted}, got {other:?}"),
    };
    io::Error::other(detail)
}
