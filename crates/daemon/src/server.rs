//! The daemon server: accept loops (TCP, and a Unix socket on Unix),
//! per-connection handler threads, the session registry, connection
//! capping with accept-queue backpressure, idle-session eviction, and
//! graceful drain.
//!
//! Concurrency model: one OS thread per connection (connections are
//! capped, so this is bounded), all decompilation work funneled through
//! one shared [`Scheduler`] so every session competes for the same
//! worker pool and shares the same content-addressed function cache.
//! While the configured cap is reached the accept loops simply stop
//! accepting — pending connections queue in the OS accept backlog, which
//! is the backpressure: clients block in `connect`/first read instead of
//! being torn down.

use crate::peer::{PeerTier, DEFAULT_PEER_TIMEOUT};
use crate::protocol::{self, kind, ErrorCode, FrameAssembler, FrameEvent, Request, Response};
use crate::session::{variant_from_wire, Session, SessionError};
use splendid_cachestore::StoreConfig;
use splendid_serve::{
    codec, BlobTiers, CacheTier, DiskTier, JobError, JobRequest, Scheduler, ServeConfig,
    StatsSnapshot,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// TCP listen address, e.g. `127.0.0.1:7777` (port 0 picks one).
    pub addr: String,
    /// Optional Unix-socket path to also listen on (Unix targets only;
    /// ignored with a warning elsewhere).
    pub unix_path: Option<PathBuf>,
    /// Concurrent-connection cap; further connections wait in the OS
    /// accept backlog.
    pub max_connections: usize,
    /// Evict sessions (and their connections) idle longer than this.
    pub idle_timeout: Option<Duration>,
    /// How long [`Daemon::drain`] waits for in-flight work.
    pub drain_timeout: Duration,
    /// Scheduler configuration (workers, cache, per-request deadline —
    /// `job_timeout` is the per-request deadline, enforced by the serve
    /// watchdog).
    pub serve: ServeConfig,
    /// Directory for the persistent on-disk cache tier. `None` runs
    /// memory-only, exactly as before the tier existed.
    pub cache_dir: Option<PathBuf>,
    /// Size budget for the disk tier in bytes (default 256 MiB).
    pub cache_budget_bytes: Option<u64>,
    /// TCP address of a peer daemon whose persistent tier is consulted
    /// (via `CACHE_GET`) behind the local tiers.
    pub peer: Option<String>,
    /// Per-operation socket timeout for the peer tier (connect, send,
    /// receive each get this budget). The circuit breaker keys off
    /// operations that exhaust it.
    pub peer_timeout: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            unix_path: None,
            max_connections: 32,
            idle_timeout: Some(Duration::from_secs(300)),
            drain_timeout: Duration::from_secs(30),
            serve: ServeConfig::default(),
            cache_dir: None,
            cache_budget_bytes: None,
            peer: None,
            peer_timeout: DEFAULT_PEER_TIMEOUT,
        }
    }
}

/// Daemon-wide counters (relaxed atomics; diagnostic, not transactional).
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Connections accepted (TCP + Unix).
    pub connections_accepted: AtomicU64,
    /// Connections fully torn down.
    pub connections_closed: AtomicU64,
    /// Sessions opened.
    pub sessions_opened: AtomicU64,
    /// Sessions closed by a CLOSE request.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted for sitting idle past the timeout.
    pub sessions_evicted: AtomicU64,
    /// Well-framed request frames received.
    pub frames_received: AtomicU64,
    /// Response frames sent.
    pub frames_sent: AtomicU64,
    /// Stream desyncs survived (bad magic runs).
    pub desyncs: AtomicU64,
    /// Oversized frames skipped.
    pub oversized_frames: AtomicU64,
    /// ERROR responses sent, all causes.
    pub errors_sent: AtomicU64,
    /// Requests refused because the daemon was draining.
    pub rejected_draining: AtomicU64,
    /// Requests answered with BUSY by admission control.
    pub requests_shed: AtomicU64,
}

/// State shared between accept loops, connection handlers, and the
/// [`Daemon`] front object.
struct Shared {
    config: DaemonConfig,
    scheduler: Scheduler,
    stats: DaemonStats,
    draining: AtomicBool,
    /// Live connection-handler threads (the cap gauge).
    active: AtomicUsize,
    next_session: AtomicU32,
    /// Open sessions, for the daemon-wide stats dump.
    sessions: Mutex<HashMap<u32, Arc<Mutex<Session>>>>,
}

impl Shared {
    fn register(&self, session: &Arc<Mutex<Session>>, id: u32) {
        if let Ok(mut map) = self.sessions.lock() {
            map.insert(id, Arc::clone(session));
        }
    }

    fn unregister(&self, id: u32) {
        if let Ok(mut map) = self.sessions.lock() {
            map.remove(&id);
        }
    }

    /// Stable, line-oriented daemon-wide stats dump.
    fn stats_text(&self) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let s = &self.stats;
        let mut out = String::new();
        out.push_str("daemon stats\n");
        out.push_str(&format!(
            "  connections  {} accepted / {} closed / {} active (cap {})\n",
            get(&s.connections_accepted),
            get(&s.connections_closed),
            self.active.load(Ordering::Relaxed),
            self.config.max_connections
        ));
        out.push_str(&format!(
            "  sessions     {} opened / {} closed / {} evicted idle\n",
            get(&s.sessions_opened),
            get(&s.sessions_closed),
            get(&s.sessions_evicted)
        ));
        out.push_str(&format!(
            "  frames       {} received / {} sent / {} errors sent\n",
            get(&s.frames_received),
            get(&s.frames_sent),
            get(&s.errors_sent)
        ));
        out.push_str(&format!(
            "  protocol     {} desyncs survived / {} oversized skipped / {} refused draining / {} shed busy\n",
            get(&s.desyncs),
            get(&s.oversized_frames),
            get(&s.rejected_draining),
            get(&s.requests_shed)
        ));
        out.push_str(&self.scheduler.stats().to_string());
        let sessions = match self.sessions.lock() {
            Ok(map) => {
                let mut v: Vec<_> = map.iter().map(|(id, s)| (*id, Arc::clone(s))).collect();
                v.sort_by_key(|(id, _)| *id);
                v
            }
            Err(_) => Vec::new(),
        };
        for (_, session) in sessions {
            if let Ok(session) = session.lock() {
                out.push_str(&session.stats_text());
            }
        }
        out
    }
}

/// A running daemon. Dropping it does NOT stop the accept loops — call
/// [`Daemon::drain`] for an orderly shutdown.
pub struct Daemon {
    shared: Arc<Shared>,
    tcp_addr: SocketAddr,
    accept_threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Bind the listeners and start the accept loops.
    pub fn start(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = listener.local_addr()?;

        #[cfg(unix)]
        let unix_listener = match &config.unix_path {
            Some(path) => {
                // A dead daemon leaves its socket file behind; rebinding
                // over it is the expected restart path.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };

        // Tier chain: local LRU (inside the scheduler) → disk → peer.
        // The disk tier failing to open is a startup error; the peer
        // tier never is (it dials lazily and degrades to misses).
        let mut tiers: Vec<Arc<dyn CacheTier>> = Vec::new();
        if let Some(dir) = &config.cache_dir {
            let mut store_config = StoreConfig::default();
            if let Some(budget) = config.cache_budget_bytes {
                store_config.budget_bytes = budget;
            }
            tiers.push(Arc::new(DiskTier::open(dir, store_config)?));
        }
        if let Some(peer) = &config.peer {
            tiers.push(Arc::new(PeerTier::with_timeout(
                peer.clone(),
                config.peer_timeout,
            )));
        }

        let shared = Arc::new(Shared {
            scheduler: Scheduler::new_with_tiers(config.serve.clone(), BlobTiers::new(tiers)),
            config,
            stats: DaemonStats::default(),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_session: AtomicU32::new(1),
            sessions: Mutex::new(HashMap::new()),
        });

        let mut accept_threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            accept_threads.push(thread::spawn(move || accept_loop_tcp(listener, shared)));
        }
        #[cfg(unix)]
        if let Some(l) = unix_listener {
            let shared = Arc::clone(&shared);
            accept_threads.push(thread::spawn(move || accept_loop_unix(l, shared)));
        }

        Ok(Daemon {
            shared,
            tcp_addr,
            accept_threads,
        })
    }

    /// The bound TCP address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Shared daemon counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.shared.stats
    }

    /// Live connection count.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Open session count (leak check for tests).
    pub fn open_sessions(&self) -> usize {
        self.shared.sessions.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// The daemon-wide stats dump, as served to STATS requests.
    pub fn stats_text(&self) -> String {
        self.shared.stats_text()
    }

    /// Snapshot of the shared scheduler's serve-layer counters (shed /
    /// degraded / timed-out breakdown for the overload bench and tests).
    pub fn serve_stats(&self) -> StatsSnapshot {
        self.shared.scheduler.stats()
    }

    /// Graceful drain: stop accepting, let in-flight requests complete,
    /// then join the accept loops. Returns `true` when every connection
    /// wound down within the configured drain timeout.
    pub fn drain(mut self) -> bool {
        self.shared.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        let clean = self.shared.active.load(Ordering::Relaxed) == 0;
        // Make the persistent tier durable (and its index clean) so the
        // next process warm-starts without a segment rescan.
        self.shared.scheduler.flush_cache();
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        #[cfg(unix)]
        if let Some(path) = &self.shared.config.unix_path {
            let _ = std::fs::remove_file(path);
        }
        clean
    }
}

/// Poll-accept loop over the TCP listener. Nonblocking + sleep so the
/// loop can observe drain; stops accepting (leaving connections in the
/// OS backlog) while the connection cap is reached.
fn accept_loop_tcp(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        if shared.active.load(Ordering::Relaxed) >= shared.config.max_connections {
            thread::sleep(Duration::from_millis(5));
            continue;
        }
        match listener.accept() {
            Ok((stream, _)) => spawn_handler(Conn::Tcp(stream), &shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[cfg(unix)]
fn accept_loop_unix(listener: UnixListener, shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        if shared.active.load(Ordering::Relaxed) >= shared.config.max_connections {
            thread::sleep(Duration::from_millis(5));
            continue;
        }
        match listener.accept() {
            Ok((stream, _)) => spawn_handler(Conn::Unix(stream), &shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// A connection of either flavor; both are `Read + Write` byte streams
/// with a read timeout.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(d)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

fn spawn_handler(conn: Conn, shared: &Arc<Shared>) {
    shared.active.fetch_add(1, Ordering::SeqCst);
    shared
        .stats
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);
    let shared = Arc::clone(shared);
    thread::spawn(move || {
        handle_connection(conn, &shared);
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared
            .stats
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
    });
}

/// Per-connection state threaded through the dispatcher.
struct ConnState {
    session: Option<Arc<Mutex<Session>>>,
    session_id: u32,
    last_activity: Instant,
}

/// Send one response frame, folding the bookkeeping.
fn send(conn: &mut Conn, shared: &Shared, resp: &Response) -> std::io::Result<()> {
    shared.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
    if matches!(resp, Response::Error { .. }) {
        shared.stats.errors_sent.fetch_add(1, Ordering::Relaxed);
    }
    protocol::write_frame(conn, resp.kind(), &resp.encode_payload())
}

fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// The connection loop: 100ms read ticks (so drain and idle eviction are
/// observed promptly), a [`FrameAssembler`] for robust framing, and a
/// strictly 1:1 request→response dispatch.
fn handle_connection(mut conn: Conn, shared: &Arc<Shared>) {
    if conn.set_read_timeout(Duration::from_millis(100)).is_err() {
        return;
    }
    let mut assembler = FrameAssembler::new();
    let mut buf = [0u8; 64 * 1024];
    let mut state = ConnState {
        session: None,
        session_id: 0,
        last_activity: Instant::now(),
    };

    'conn: loop {
        match conn.read(&mut buf) {
            Ok(0) => break 'conn, // peer hung up
            Ok(n) => {
                state.last_activity = Instant::now();
                assembler.push(&buf[..n]);
                while let Some(event) = assembler.next_event() {
                    if !handle_event(&mut conn, shared, &mut state, event) {
                        break 'conn;
                    }
                }
                // Refresh again after dispatch: a request that takes
                // longer than the idle timeout to serve must not count
                // its own service time as idleness (the session would
                // be evicted the instant its response went out).
                state.last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle tick: observe drain and the idle timeout.
                if shared.draining.load(Ordering::Relaxed) {
                    break 'conn;
                }
                if let Some(idle) = shared.config.idle_timeout {
                    if state.last_activity.elapsed() >= idle {
                        let _ = send(
                            &mut conn,
                            shared,
                            &error(
                                ErrorCode::IdleTimeout,
                                format!("session idle for {:?}, evicting", idle),
                            ),
                        );
                        if state.session.take().is_some() {
                            shared.unregister(state.session_id);
                            shared
                                .stats
                                .sessions_evicted
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        break 'conn;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break 'conn,
        }
    }

    if state.session.take().is_some() {
        shared.unregister(state.session_id);
    }
}

/// Handle one assembler event. Returns `false` when the connection
/// should wind down (drain).
fn handle_event(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    state: &mut ConnState,
    event: FrameEvent,
) -> bool {
    let resp = match event {
        FrameEvent::Desync => {
            shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
            error(
                ErrorCode::Desync,
                "bad frame magic; scanning for next frame boundary",
            )
        }
        FrameEvent::Oversized { declared } => {
            shared
                .stats
                .oversized_frames
                .fetch_add(1, Ordering::Relaxed);
            error(
                ErrorCode::Oversized,
                format!(
                    "declared payload of {declared} bytes exceeds the {} byte cap; skipped",
                    protocol::MAX_PAYLOAD
                ),
            )
        }
        FrameEvent::Frame {
            version,
            kind: kind_byte,
            payload,
        } => {
            shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
            if version != protocol::VERSION {
                error(
                    ErrorCode::BadVersion,
                    format!(
                        "protocol version {version} not supported (this daemon speaks {})",
                        protocol::VERSION
                    ),
                )
            } else {
                match Request::decode(kind_byte, &payload) {
                    None => error(
                        ErrorCode::UnknownKind,
                        format!("0x{kind_byte:02x} is not a request kind"),
                    ),
                    Some(Err(e)) => error(
                        ErrorCode::BadPayload,
                        format!("{} frame: {e}", kind_label(kind_byte)),
                    ),
                    Some(Ok(req)) => dispatch(shared, state, req),
                }
            }
        }
    };
    if send(conn, shared, &resp).is_err() {
        return false;
    }
    // After answering, a draining daemon winds the connection down.
    !shared.draining.load(Ordering::Relaxed)
}

fn kind_label(kind_byte: u8) -> &'static str {
    match kind_byte {
        kind::OPEN => "OPEN",
        kind::UPDATE => "UPDATE",
        kind::DECOMPILE => "DECOMPILE",
        kind::STATS => "STATS",
        kind::CLOSE => "CLOSE",
        kind::PING => "PING",
        kind::CACHE_GET => "CACHE_GET",
        kind::CACHE_PUT => "CACHE_PUT",
        kind::VALIDATE => "VALIDATE",
        _ => "unknown",
    }
}

/// Dispatch one decoded request to exactly one response.
fn dispatch(shared: &Arc<Shared>, state: &mut ConnState, req: Request) -> Response {
    let draining = shared.draining.load(Ordering::Relaxed);
    match req {
        Request::Ping => Response::Pong,
        // Cache-tier wire service. GETs answer exclusively from the
        // *disk* tier (never this daemon's own peer tier — two daemons
        // pointed at each other must not loop). PUTs validate the record
        // envelope before anything touches the store; a bad record is a
        // polite `stored: false`, not a wire error, because the sender
        // may simply be newer than us.
        Request::CacheGet { key } => {
            if shared.scheduler.tiers().disk().is_none() {
                return error(
                    ErrorCode::NoCache,
                    "this daemon has no persistent cache tier (start it with --cache-dir)",
                );
            }
            Response::CacheValue {
                blob: shared.scheduler.cache_blob_get(key),
            }
        }
        Request::CachePut { key, blob } => {
            if shared.scheduler.tiers().disk().is_none() {
                return error(
                    ErrorCode::NoCache,
                    "this daemon has no persistent cache tier (start it with --cache-dir)",
                );
            }
            let stored = codec::validate_record(&blob).is_ok()
                && shared.scheduler.cache_blob_put(key, &blob);
            Response::CacheStored { stored }
        }
        Request::Stats { daemon_wide: true } => Response::StatsText {
            text: shared.stats_text(),
        },
        Request::Stats { daemon_wide: false } => match &state.session {
            Some(session) => match session.lock() {
                Ok(session) => Response::StatsText {
                    text: session.stats_text(),
                },
                Err(_) => error(ErrorCode::DecompileFailed, "session poisoned"),
            },
            None => error(ErrorCode::NoSession, "no open session; send OPEN first"),
        },
        Request::Close => {
            if state.session.take().is_some() {
                shared.unregister(state.session_id);
                shared.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
                Response::Closed
            } else {
                error(ErrorCode::NoSession, "no open session to close")
            }
        }
        Request::Open {
            name,
            variant,
            module_text,
        } => {
            if draining {
                shared
                    .stats
                    .rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                return error(ErrorCode::Draining, "daemon is draining; not opening");
            }
            let Some(variant) = variant_from_wire(variant) else {
                return error(
                    ErrorCode::BadPayload,
                    format!("variant byte {variant} (want 1=v1, 2=portable, 3=full)"),
                );
            };
            match Session::open(
                shared.next_session.fetch_add(1, Ordering::Relaxed),
                name,
                variant,
                &module_text,
            ) {
                Ok(session) => {
                    // Re-OPEN replaces the previous session on this
                    // connection.
                    if state.session.take().is_some() {
                        shared.unregister(state.session_id);
                        shared.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
                    }
                    let functions = session.functions();
                    state.session_id = session.id;
                    let session = Arc::new(Mutex::new(session));
                    shared.register(&session, state.session_id);
                    shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    state.session = Some(session);
                    Response::Opened {
                        session: state.session_id,
                        functions,
                    }
                }
                Err(e) => error(ErrorCode::ModuleParse, e),
            }
        }
        Request::Update { module_text } => match &state.session {
            Some(session) => match session.lock() {
                Ok(mut session) => {
                    // UPDATE never parses (and so never fails): it hashes
                    // function spans and diffs. A syntax error in the new
                    // text surfaces at the next DECOMPILE.
                    let u = session.update(&module_text);
                    Response::Updated {
                        dirty: u.dirty,
                        total: u.total,
                        fingerprint_nanos: u.fingerprint_nanos,
                        bookkeeping_nanos: u.bookkeeping_nanos,
                    }
                }
                Err(_) => error(ErrorCode::DecompileFailed, "session poisoned"),
            },
            None => error(ErrorCode::NoSession, "no open session; send OPEN first"),
        },
        Request::Decompile { budget_ms } => {
            if draining {
                shared
                    .stats
                    .rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                return error(ErrorCode::Draining, "daemon is draining; not decompiling");
            }
            match &state.session {
                Some(session) => match session.lock() {
                    Ok(mut session) => {
                        let started = Instant::now();
                        // The wire carries a *relative* budget (immune to
                        // clock skew); it becomes an absolute deadline the
                        // moment we pick the request up, so queueing time
                        // counts against it too.
                        let deadline = (budget_ms > 0)
                            .then(|| started + Duration::from_millis(u64::from(budget_ms)));
                        match session.decompile_with(&shared.scheduler, deadline) {
                            Ok(reply) => Response::Result {
                                functions: reply.functions,
                                cached: reply.cached,
                                degraded: reply.degraded,
                                dirty: reply.dirty,
                                wall_micros: u64::try_from(started.elapsed().as_micros())
                                    .unwrap_or(u64::MAX),
                                fast_path: reply.fast_path,
                                source: reply.source,
                            },
                            Err(SessionError::Busy(busy)) => {
                                shared.stats.requests_shed.fetch_add(1, Ordering::Relaxed);
                                Response::Busy {
                                    retry_after_ms: u32::try_from(busy.retry_after_ms)
                                        .unwrap_or(u32::MAX),
                                }
                            }
                            Err(SessionError::Job(JobError::TimedOut { stage })) => error(
                                ErrorCode::Deadline,
                                format!("request deadline expired during {stage}"),
                            ),
                            Err(SessionError::Job(e)) => {
                                error(ErrorCode::DecompileFailed, format!("{e}"))
                            }
                        }
                    }
                    Err(_) => error(ErrorCode::DecompileFailed, "session poisoned"),
                },
                None => error(ErrorCode::NoSession, "no open session; send OPEN first"),
            }
        }
        Request::Validate {
            name,
            variant,
            module_text,
        } => {
            if draining {
                shared
                    .stats
                    .rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                return error(ErrorCode::Draining, "daemon is draining; not validating");
            }
            let Some(variant) = variant_from_wire(variant) else {
                return error(
                    ErrorCode::BadPayload,
                    format!("variant byte {variant} (want 1=v1, 2=portable, 3=full)"),
                );
            };
            let mut request = JobRequest::from_text(&name, &module_text);
            request.options = splendid_core::SplendidOptions {
                variant,
                validate: true,
                ..Default::default()
            };
            // VALIDATE is stateless (no session, no tenant fingerprint
            // yet) but still holds a worker, so it goes through the same
            // admission gate as DECOMPILE.
            let ticket = match shared.scheduler.admit(None, None) {
                Ok(t) => t,
                Err(busy) => {
                    shared.stats.requests_shed.fetch_add(1, Ordering::Relaxed);
                    return Response::Busy {
                        retry_after_ms: u32::try_from(busy.retry_after_ms).unwrap_or(u32::MAX),
                    };
                }
            };
            let started = Instant::now();
            match shared
                .scheduler
                .submit_ticketed(ticket, request, None)
                .wait()
            {
                Ok(result) => Response::Validated {
                    functions: result.functions as u32,
                    verified: result.verified_functions as u32,
                    unverified: result.unverified_functions as u32,
                    wall_micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                    source: result.output.source,
                },
                Err(JobError::Parse(e)) => error(ErrorCode::ModuleParse, e),
                Err(JobError::TimedOut { stage }) => error(
                    ErrorCode::Deadline,
                    format!("request deadline expired during {stage}"),
                ),
                Err(e) => error(ErrorCode::DecompileFailed, format!("{e}")),
            }
        }
    }
}
