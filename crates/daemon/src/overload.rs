//! `bench-overload`: measures how the daemon behaves *past* saturation —
//! the regime `bench-daemon` deliberately avoids.
//!
//! Three phases:
//!
//! * **peer** — an in-process blackhole TCP listener (accepts, never
//!   answers) stands in for a dead peer daemon. The phase trips the
//!   peer tier's circuit breaker, then measures the per-miss cost of a
//!   tripped breaker: it must be *sub-millisecond*, not the 2-second
//!   socket timeout every miss paid before the breaker existed.
//! * **baseline** — closed-loop throughput with exactly as many clients
//!   as workers (no queueing to speak of): the un-overloaded goodput
//!   that the overload phase is graded against.
//! * **overload** — `overload_factor`× as many clients as workers, each
//!   carrying a request budget, against a daemon with a small admission
//!   queue. Records goodput (completed results/s), shed rate (BUSY
//!   responses), degraded-result count, and p99 of *completed* requests.
//!
//! Gates (owned-daemon mode): goodput under overload within 20% of the
//! baseline, zero watchdog-attributed timeouts for admitted requests,
//! nonzero sheds, and tripped-breaker misses under 1 ms. In attach mode
//! (`--addr`) the daemon's serve counters are out of reach, so only the
//! peer gate is evaluated and the load phases are reported unscored —
//! that is what `scripts/overload_smoke.sh` uses, asserting sheds out
//! of the daemon's own STATS text instead.

use crate::bench::{percentiles, synthetic_module_tagged, Percentiles};
use crate::client::DaemonClient;
use crate::peer::PeerTier;
use crate::protocol::Response;
use crate::server::{Daemon, DaemonConfig};
use splendid_serve::CacheTier;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Overload-benchmark configuration.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Scheduler workers for the in-process daemon (and the baseline
    /// client count).
    pub workers: usize,
    /// Client multiplier for the overload phase (the paper point is 4×).
    pub overload_factor: usize,
    /// Edit/decompile rounds per client in each load phase.
    pub rounds: usize,
    /// Functions per synthetic module (small: the point is queueing, not
    /// per-job weight).
    pub functions: usize,
    /// Request budget carried by overload-phase DECOMPILEs, in ms.
    pub budget_ms: u32,
    /// Per-operation timeout for the dead-peer phase. Kept well under
    /// the 2 s default so the phase runs in CI time; the *ratio* between
    /// this and the tripped fast-fail is what the gate is about.
    pub peer_timeout: Duration,
    /// Attach to a daemon at this TCP address instead of starting an
    /// in-process one (gates on serve counters are skipped).
    pub addr: Option<String>,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            workers: 2,
            overload_factor: 4,
            rounds: 8,
            functions: 4,
            budget_ms: 10_000,
            peer_timeout: Duration::from_millis(120),
            addr: None,
        }
    }
}

/// One load phase's outcome.
#[derive(Debug, Clone)]
pub struct LoadPhase {
    /// Clients driven.
    pub clients: usize,
    /// RESULT responses received.
    pub completed: u64,
    /// BUSY responses received.
    pub busy: u64,
    /// RESULT responses with at least one below-Natural function.
    pub degraded_results: u64,
    /// Completed results per second of phase wall time.
    pub jobs_per_sec: f64,
    /// Latency percentiles over *completed* requests only.
    pub latency: Percentiles,
}

impl LoadPhase {
    fn json(&self) -> String {
        format!(
            "{{ \"clients\": {}, \"completed\": {}, \"busy\": {}, \"degraded_results\": {}, \
             \"jobs_per_sec\": {:.3}, \"latency\": {} }}",
            self.clients,
            self.completed,
            self.busy,
            self.degraded_results,
            self.jobs_per_sec,
            self.latency.json()
        )
    }
}

/// Dead-peer phase outcome.
#[derive(Debug, Clone)]
pub struct PeerPhase {
    /// Configured per-operation timeout, ms.
    pub timeout_ms: f64,
    /// Misses paid in full (socket timeouts) before the breaker tripped.
    pub misses_to_trip: u64,
    /// Mean per-miss cost while tripping (should be ≈ the timeout).
    pub tripping_avg_ms: f64,
    /// Gets issued against the open breaker.
    pub fast_fails: u64,
    /// Mean per-miss cost with the breaker open — the headline number.
    pub fast_fail_avg_ms: f64,
    /// Breaker state at the end of the phase.
    pub breaker_open: bool,
}

impl PeerPhase {
    fn json(&self) -> String {
        format!(
            "{{ \"timeout_ms\": {:.1}, \"misses_to_trip\": {}, \"tripping_avg_ms\": {:.3}, \
             \"fast_fails\": {}, \"fast_fail_avg_ms\": {:.4}, \"breaker_open\": {} }}",
            self.timeout_ms,
            self.misses_to_trip,
            self.tripping_avg_ms,
            self.fast_fails,
            self.fast_fail_avg_ms,
            self.breaker_open
        )
    }
}

/// Gate verdicts. `evaluated == false` (attach mode) leaves the load
/// gates vacuously true.
#[derive(Debug, Clone)]
pub struct Gates {
    /// Whether the serve-counter gates were evaluated (owned daemon).
    pub evaluated: bool,
    /// Goodput under overload ≥ 0.8× baseline throughput.
    pub goodput_ok: bool,
    /// No admitted request was killed by the watchdog or a deadline.
    pub no_watchdog_timeouts: bool,
    /// Admission control actually shed something under 4× load.
    pub sheds_nonzero: bool,
    /// Tripped-breaker misses averaged under 1 ms.
    pub peer_fast_fail_ok: bool,
}

impl Gates {
    /// All gates green.
    pub fn passed(&self) -> bool {
        self.goodput_ok && self.no_watchdog_timeouts && self.sheds_nonzero && self.peer_fast_fail_ok
    }

    fn json(&self) -> String {
        format!(
            "{{ \"evaluated\": {}, \"goodput_ok\": {}, \"no_watchdog_timeouts\": {}, \
             \"sheds_nonzero\": {}, \"peer_fast_fail_ok\": {}, \"passed\": {} }}",
            self.evaluated,
            self.goodput_ok,
            self.no_watchdog_timeouts,
            self.sheds_nonzero,
            self.peer_fast_fail_ok,
            self.passed()
        )
    }
}

/// The full overload report.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Echo of the configuration.
    pub workers: usize,
    /// Echo of the configuration.
    pub rounds: usize,
    /// Echo of the configuration.
    pub functions: usize,
    /// Dead-peer / circuit-breaker phase.
    pub peer: PeerPhase,
    /// Un-overloaded closed loop (clients == workers).
    pub baseline: LoadPhase,
    /// Saturated closed loop (clients == workers × overload_factor).
    pub overload: LoadPhase,
    /// overload goodput ÷ baseline throughput.
    pub goodput_ratio: f64,
    /// busy ÷ (busy + completed) in the overload phase.
    pub shed_rate: f64,
    /// Scheduler counter: admission sheds (owned mode; 0 in attach mode).
    pub serve_sheds: u64,
    /// Scheduler counter: deadline/watchdog kills of admitted jobs.
    pub serve_timed_out: u64,
    /// Scheduler counter: requests admitted at `Quick` under pressure.
    pub serve_degraded: u64,
    /// Gate verdicts.
    pub gates: Gates,
}

impl OverloadReport {
    /// Render as pretty-printed JSON (hand-rolled; no serde offline).
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"bench-overload\",\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!(
            "  \"functions_per_module\": {},\n",
            self.functions
        ));
        out.push_str(&format!("  \"peer\": {},\n", self.peer.json()));
        out.push_str(&format!("  \"baseline\": {},\n", self.baseline.json()));
        out.push_str(&format!("  \"overload\": {},\n", self.overload.json()));
        out.push_str(&format!(
            "  \"goodput_ratio\": {:.3},\n",
            self.goodput_ratio
        ));
        out.push_str(&format!("  \"shed_rate\": {:.3},\n", self.shed_rate));
        out.push_str(&format!("  \"serve_sheds\": {},\n", self.serve_sheds));
        out.push_str(&format!(
            "  \"serve_timed_out\": {},\n",
            self.serve_timed_out
        ));
        out.push_str(&format!("  \"serve_degraded\": {},\n", self.serve_degraded));
        out.push_str(&format!("  \"gates\": {}\n", self.gates.json()));
        out.push_str("}\n");
        out
    }

    /// Render as human-oriented text.
    pub fn text(&self) -> String {
        let mut out = format!(
            "bench-overload: {} worker(s), {}x overload, {} round(s), {}-function modules\n",
            self.workers,
            self.overload
                .clients
                .checked_div(self.baseline.clients)
                .unwrap_or(0),
            self.rounds,
            self.functions
        );
        out.push_str(&format!(
            "  peer       {:.0}ms timeout; {} misses to trip (avg {:.1}ms), then {} fast-fails avg {:.4}ms\n",
            self.peer.timeout_ms,
            self.peer.misses_to_trip,
            self.peer.tripping_avg_ms,
            self.peer.fast_fails,
            self.peer.fast_fail_avg_ms
        ));
        let load = |label: &str, p: &LoadPhase| {
            format!(
                "  {label:<10} {} clients: {:.1} jobs/s, {} ok / {} busy / {} degraded, p99 {:.1}ms\n",
                p.clients, p.jobs_per_sec, p.completed, p.busy, p.degraded_results, p.latency.p99_ms
            )
        };
        out.push_str(&load("baseline", &self.baseline));
        out.push_str(&load("overload", &self.overload));
        out.push_str(&format!(
            "  goodput    {:.1}% of baseline; shed rate {:.1}%\n",
            self.goodput_ratio * 100.0,
            self.shed_rate * 100.0
        ));
        out.push_str(&format!(
            "  serve      {} shed / {} degraded / {} timed out\n",
            self.serve_sheds, self.serve_degraded, self.serve_timed_out
        ));
        out.push_str(&format!(
            "  gates      {}\n",
            if !self.gates.evaluated {
                "not evaluated (attached to an external daemon)"
            } else if self.gates.passed() {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        out
    }
}

/// A TCP listener that accepts connections and never answers — the
/// worst kind of dead peer, because every operation against it runs the
/// full socket timeout. Returns `(addr, stop flag, join handle)`.
fn blackhole() -> std::io::Result<(String, Arc<AtomicBool>, JoinHandle<()>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?.to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = thread::spawn(move || {
        // Hold accepted sockets open (dropping them would fast-fail the
        // client with a reset instead of a timeout).
        let mut held = Vec::new();
        while !stop2.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((s, _)) => held.push(s),
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        drop(held);
    });
    Ok((addr, stop, handle))
}

/// Phase 1: trip the breaker against a blackhole peer, then measure the
/// per-miss cost of the open breaker.
fn run_peer_phase(cfg: &OverloadConfig) -> Result<PeerPhase, String> {
    let (addr, stop, handle) = blackhole().map_err(|e| e.to_string())?;
    let tier = PeerTier::with_timeout(addr, cfg.peer_timeout);

    // Trip: every get times out until the breaker opens. Bound the loop
    // hard — if the breaker never opens that is itself the failure.
    let tripping = Instant::now();
    let mut misses_to_trip = 0u64;
    while !tier.counters().breaker_open {
        if misses_to_trip >= 16 {
            stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
            return Err("peer breaker failed to open after 16 timed-out misses".into());
        }
        let _ = tier.get(misses_to_trip);
        misses_to_trip += 1;
    }
    let tripping_avg_ms = tripping.elapsed().as_secs_f64() * 1e3 / (misses_to_trip.max(1)) as f64;

    // Measure: with the breaker open every get must fail without
    // touching the socket.
    const FAST_FAILS: u64 = 200;
    let t = Instant::now();
    for key in 0..FAST_FAILS {
        let _ = tier.get(1_000_000 + key);
    }
    let fast_fail_avg_ms = t.elapsed().as_secs_f64() * 1e3 / FAST_FAILS as f64;
    let counters = tier.counters();

    stop.store(true, Ordering::Relaxed);
    let _ = handle.join();

    Ok(PeerPhase {
        timeout_ms: cfg.peer_timeout.as_secs_f64() * 1e3,
        misses_to_trip,
        tripping_avg_ms,
        fast_fails: counters.breaker_fast_fails,
        fast_fail_avg_ms,
        breaker_open: counters.breaker_open,
    })
}

/// Constant for (client, round, function), distinct across all axes and
/// disjoint from `bench-daemon`'s constants.
fn overload_const(client: usize, round: usize, func: usize) -> f64 {
    3.0 + client as f64 * 0.001 + round as f64 * 0.01 + func as f64 * 0.1
}

/// Connect, open, warm up (untimed), and pre-build every round's
/// module text. Split out of [`run_client`] so a setup failure can
/// still honour the barrier schedule.
fn setup_client(
    addr: &str,
    client_id: usize,
    cfg: &OverloadConfig,
) -> Result<(DaemonClient, Vec<String>), String> {
    let mut client = DaemonClient::connect_tcp(addr).map_err(|e| e.to_string())?;
    let mut consts: Vec<f64> = (0..cfg.functions)
        .map(|f| overload_const(client_id, 0, f))
        .collect();
    client
        .open(
            &format!("overload-c{client_id}"),
            3,
            &synthetic_module_tagged(&format!("t{client_id}_"), &consts)?,
        )
        .map_err(|e| e.to_string())?;
    // Cold warmup, untimed: every subsequent round is a 1-dirty edit.
    // Under saturation even the warmup can be shed — retry with the
    // server's backoff hint until admitted (bounded so a wedged daemon
    // fails the bench instead of hanging it).
    let mut warmed = false;
    for _ in 0..1000 {
        match client.decompile_with_budget(0).map_err(|e| e.to_string())? {
            Response::Result { .. } => {
                warmed = true;
                break;
            }
            Response::Busy { retry_after_ms } => {
                thread::sleep(Duration::from_millis(
                    u64::from(retry_after_ms).clamp(5, 100),
                ));
            }
            other => return Err(format!("warmup: expected RESULT or BUSY, got {other:?}")),
        }
    }
    if !warmed {
        return Err("warmup decompile was shed 1000 times in a row".into());
    }

    // Pre-build every round's module text: the C-pipeline run inside
    // `synthetic_module` is client-side work that would otherwise gap
    // the closed loop and let the server queue drain between rounds.
    let texts: Vec<String> = (1..=cfg.rounds)
        .map(|round| {
            consts[0] = overload_const(client_id, round, 0);
            synthetic_module_tagged(&format!("t{client_id}_"), &consts)
        })
        .collect::<Result<_, _>>()?;
    Ok((client, texts))
}

/// One round: UPDATE then retry DECOMPILE until it lands. A shed is
/// counted (and backed off, capped — the bench wants sustained
/// pressure, not politeness) but the edit still has to be decompiled,
/// exactly like an editor under load.
fn run_round(
    client: &mut DaemonClient,
    text: &str,
    budget_ms: u32,
) -> Result<(Duration, u64, u64), String> {
    client.update(text).map_err(|e| e.to_string())?;
    let (mut busy, mut degraded) = (0u64, 0u64);
    let mut attempts = 0u32;
    loop {
        let t = Instant::now();
        match client
            .decompile_with_budget(budget_ms)
            .map_err(|e| e.to_string())?
        {
            Response::Result { degraded: d, .. } => {
                if d > 0 {
                    degraded += 1;
                }
                return Ok((t.elapsed(), busy, degraded));
            }
            Response::Busy { retry_after_ms } => {
                busy += 1;
                attempts += 1;
                if attempts >= 100 {
                    return Err("one round was shed 100 times in a row".into());
                }
                thread::sleep(Duration::from_millis(u64::from(retry_after_ms).min(20)));
            }
            other => return Err(format!("expected RESULT or BUSY, got {other:?}")),
        }
    }
}

/// One client's closed loop: setup, then `rounds` barrier-aligned
/// one-function edits, each followed by a DECOMPILE carrying
/// `budget_ms`.
///
/// The barrier makes every round a simultaneous burst of `clients`
/// requests against the bounded queue, so queue-full sheds are a
/// structural property of the overload phase rather than a scheduling
/// coincidence. Every thread executes the identical barrier schedule
/// even after a failure (flagging `failed` and idling through the
/// remaining waits) so the others never deadlock.
#[allow(clippy::type_complexity)]
fn run_client(
    addr: &str,
    client_id: usize,
    cfg: &OverloadConfig,
    budget_ms: u32,
    barrier: &Barrier,
    failed: &AtomicBool,
) -> Result<(Vec<Duration>, u64, u64, u64), String> {
    let mut err: Option<String> = None;
    let mut state = match setup_client(addr, client_id, cfg) {
        Ok(s) => Some(s),
        Err(e) => {
            failed.store(true, Ordering::Relaxed);
            err = Some(e);
            None
        }
    };

    let mut latencies = Vec::with_capacity(cfg.rounds);
    let (mut completed, mut busy, mut degraded) = (0u64, 0u64, 0u64);
    for round in 0..cfg.rounds {
        barrier.wait();
        if failed.load(Ordering::Relaxed) {
            continue;
        }
        if let Some((client, texts)) = state.as_mut() {
            match run_round(client, &texts[round], budget_ms) {
                Ok((latency, b, d)) => {
                    latencies.push(latency);
                    completed += 1;
                    busy += b;
                    degraded += d;
                }
                Err(e) => {
                    failed.store(true, Ordering::Relaxed);
                    err = Some(e);
                    state = None;
                }
            }
        }
    }
    if let Some(e) = err {
        return Err(e);
    }
    if failed.load(Ordering::Relaxed) {
        return Err("aborted: another overload client failed".into());
    }
    if let Some((mut client, _)) = state {
        client.close().map_err(|e| e.to_string())?;
    }
    Ok((latencies, completed, busy, degraded))
}

/// Drive `clients` concurrent closed loops and aggregate.
fn run_load_phase(
    addr: &str,
    clients: usize,
    id_base: usize,
    cfg: &OverloadConfig,
    budget_ms: u32,
) -> Result<LoadPhase, String> {
    let started = Instant::now();
    let barrier = Arc::new(Barrier::new(clients));
    let failed = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.to_string();
            let cfg = cfg.clone();
            let barrier = Arc::clone(&barrier);
            let failed = Arc::clone(&failed);
            thread::spawn(move || {
                run_client(&addr, id_base + i, &cfg, budget_ms, &barrier, &failed)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut completed, mut busy, mut degraded) = (0u64, 0u64, 0u64);
    for h in handles {
        let (l, c, b, d) = h
            .join()
            .map_err(|_| "overload client thread panicked".to_string())??;
        latencies.extend(l);
        completed += c;
        busy += b;
        degraded += d;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    Ok(LoadPhase {
        clients,
        completed,
        busy,
        degraded_results: degraded,
        jobs_per_sec: completed as f64 / elapsed,
        latency: percentiles(&latencies),
    })
}

/// Run the overload benchmark. With `cfg.addr == None` an in-process
/// daemon is started with a deliberately small admission queue
/// (`max_pending = 2×workers`, degrade at `workers`) and drained
/// afterwards.
pub fn run_overload_bench(cfg: &OverloadConfig) -> Result<OverloadReport, String> {
    let peer = run_peer_phase(cfg)?;

    let owned_daemon = match cfg.addr {
        Some(_) => None,
        None => {
            let mut config = DaemonConfig {
                max_connections: cfg.workers * cfg.overload_factor + 2,
                ..Default::default()
            };
            config.serve.workers = cfg.workers;
            // Small queue so 4× load actually sheds: up to 2 jobs
            // pending per worker (half the overload client count),
            // degrading to Quick once one whole worker's worth is
            // already waiting.
            config.serve.max_pending_jobs = cfg.workers * 2;
            config.serve.degrade_pending_jobs = cfg.workers;
            Some(Daemon::start(config).map_err(|e| e.to_string())?)
        }
    };
    let addr = match (&cfg.addr, &owned_daemon) {
        (Some(a), _) => a.clone(),
        (None, Some(d)) => d.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    // Baseline: clients == workers, no budget (plain DECOMPILE).
    let baseline = run_load_phase(&addr, cfg.workers, 0, cfg, 0)?;
    // Overload: factor× clients, each carrying a budget.
    let overload = run_load_phase(
        &addr,
        cfg.workers * cfg.overload_factor,
        1000,
        cfg,
        cfg.budget_ms,
    )?;

    let (serve_sheds, serve_timed_out, serve_degraded, evaluated) = match &owned_daemon {
        Some(d) => {
            let s = d.serve_stats();
            (
                s.jobs_shed_queue + s.jobs_shed_quota + s.jobs_shed_deadline,
                s.jobs_timed_out,
                s.jobs_degraded_admission,
                true,
            )
        }
        None => (0, 0, 0, false),
    };

    if let Some(daemon) = owned_daemon {
        if !daemon.drain() {
            return Err("daemon failed to drain cleanly after the overload bench".into());
        }
    }

    let goodput_ratio = overload.jobs_per_sec / baseline.jobs_per_sec.max(1e-9);
    let shed_rate = overload.busy as f64 / (overload.busy + overload.completed).max(1) as f64;
    let gates = Gates {
        evaluated,
        goodput_ok: !evaluated || goodput_ratio >= 0.8,
        no_watchdog_timeouts: !evaluated || serve_timed_out == 0,
        sheds_nonzero: !evaluated || serve_sheds > 0,
        peer_fast_fail_ok: peer.fast_fail_avg_ms < 1.0 && peer.breaker_open,
    };

    Ok(OverloadReport {
        workers: cfg.workers,
        rounds: cfg.rounds,
        functions: cfg.functions,
        peer,
        baseline,
        overload,
        goodput_ratio,
        shed_rate,
        serve_sheds,
        serve_timed_out,
        serve_degraded,
        gates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The blackhole helper really does hold connections open without
    /// answering (a closed port would reset instead).
    #[test]
    fn blackhole_accepts_and_stays_silent() {
        let (addr, stop, handle) = blackhole().unwrap();
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        use std::io::{Read, Write};
        s.write_all(b"hello?").unwrap();
        let mut buf = [0u8; 8];
        let err = s.read(&mut buf).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a read timeout, got {err:?}"
        );
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    /// End-to-end peer phase against a fast timeout: trips, then
    /// fast-fails in well under a millisecond per miss.
    #[test]
    fn peer_phase_trips_and_fast_fails() {
        let cfg = OverloadConfig {
            peer_timeout: Duration::from_millis(40),
            ..Default::default()
        };
        let phase = run_peer_phase(&cfg).unwrap();
        assert!(phase.breaker_open, "{phase:?}");
        assert!(phase.misses_to_trip >= 3, "{phase:?}");
        assert!(phase.fast_fail_avg_ms < 1.0, "{phase:?}");
        assert_eq!(phase.fast_fails, 200, "{phase:?}");
    }
}
