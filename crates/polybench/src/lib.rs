//! PolyBench benchmarks and the end-to-end evaluation harness.
//!
//! The 16 benchmarks of the paper's evaluation (§5.1.1), written in the
//! supported C subset at laptop-scale problem sizes (DESIGN.md documents
//! the substitution). Each benchmark carries:
//!
//! * the **sequential** source (pipeline input),
//! * the **reference** source — the sequential code with OpenMP pragmas
//!   added exactly where the Polly-sim parallelizes, in SPLENDID's pragma
//!   style (the paper's §5.1.2 reference-code construction),
//! * manual-parallelization data (how many loops a programmer annotates
//!   and how many overlap with the compiler — Table 3),
//! * for the Figure-9 subset: a runnable **manual** variant and the
//!   **collaborative** variant (SPLENDID output + a few hand lines).
//!
//! [`harness`] drives the full pipeline: C → IR → `-O2` → Polly-sim →
//! {execute, decompile, recompile, re-execute, measure}.

pub mod harness;
pub mod kernels;

pub use harness::{Harness, PipelineArtifacts};
pub use kernels::{benchmarks, Benchmark};
