//! The 16 PolyBench benchmarks (paper Table 3 / Figure 6), in the
//! supported C subset at laptop-scale problem sizes.
//!
//! Every benchmark has an `init` function (untimed, kept sequential, as in
//! PolyBench's methodology) and a `kernel` function (the timed region the
//! parallelizer targets). References follow the paper's §5.1.2
//! construction: sequential code plus pragmas exactly where the Polly-sim
//! parallelizes, written in SPLENDID's pragma style.

/// A benchmark: sources, parallelization specs, and harness metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (paper's spelling).
    pub name: &'static str,
    /// Sequential source — the pipeline input.
    pub sequential: &'static str,
    /// Reference code for naturalness metrics (§5.1.2).
    pub reference: &'static str,
    /// Runnable hand-parallelized variant (`None` outside the Figure-9
    /// subset; Table 3 then uses `manual_loops` only).
    pub manual: Option<&'static str>,
    /// Collaborative variant: SPLENDID output + a few manual lines
    /// (Figure-9 subset only).
    pub collab: Option<&'static str>,
    /// Lines the programmer changes on top of SPLENDID output (Figure 9
    /// annotations).
    pub collab_loc_changed: usize,
    /// Loops the programmer parallelizes on their own (Table 3).
    pub manual_loops: usize,
    /// Of those, how many the compiler also parallelizes (Table 3's
    /// "Eliminated Manual Parallelization").
    pub overlap_loops: usize,
    /// Globals to checksum for semantic comparison.
    pub check_globals: &'static [&'static str],
}

macro_rules! bench {
    ($name:literal, seq: $seq:expr, ref_: $refr:expr, manual: $manual:expr,
     collab: $collab:expr, collab_loc: $cloc:expr, manual_loops: $ml:expr,
     overlap: $ov:expr, check: $check:expr) => {
        Benchmark {
            name: $name,
            sequential: $seq,
            reference: $refr,
            manual: $manual,
            collab: $collab,
            collab_loc_changed: $cloc,
            manual_loops: $ml,
            overlap_loops: $ov,
            check_globals: $check,
        }
    };
}

// ---------------------------------------------------------------- 2mm ----

const SEQ_2MM: &str = r#"
#define NI 48
double A[48][48];
double B[48][48];
double C[48][48];
double D[48][48];
double tmp[48][48];

void init() {
  int i;
  int j;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = (i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * j % 11 + 1) * 0.5;
      D[i][j] = (i * (j + 2) % 5 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  int j;
  int k;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < NI; k++) {
        tmp[i][j] = tmp[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      D[i][j] = D[i][j] * 1.2;
      for (k = 0; k < NI; k++) {
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
      }
    }
  }
}
"#;

const REF_2MM: &str = r#"
#define NI 48
double A[48][48];
double B[48][48];
double C[48][48];
double D[48][48];
double tmp[48][48];

void init() {
  int i;
  int j;
  for (int i = 0; i < NI; i++) {
    for (int j = 0; j < NI; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = (i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * j % 11 + 1) * 0.5;
      D[i][j] = (i * (j + 2) % 5 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int j;
  int k;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 47; i = i + 1) {
      for (int j = 0; j < NI; j++) {
        tmp[i][j] = 0.0;
        for (int k = 0; k < NI; k++) {
          tmp[i][j] = tmp[i][j] + 1.5 * A[i][k] * B[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 47; i = i + 1) {
      for (int j = 0; j < NI; j++) {
        D[i][j] = D[i][j] * 1.2;
        for (int k = 0; k < NI; k++) {
          D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
        }
      }
    }
  }
}
"#;

// ---------------------------------------------------------------- 3mm ----

const SEQ_3MM: &str = r#"
#define NI 40
double A[40][40];
double B[40][40];
double C[40][40];
double D[40][40];
double E[40][40];
double F[40][40];
double G[40][40];

void init() {
  int i;
  int j;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = (i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * j % 11 + 1) * 0.5;
      D[i][j] = (i * (j + 2) % 5 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  int j;
  int k;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      E[i][j] = 0.0;
      for (k = 0; k < NI; k++) {
        E[i][j] = E[i][j] + A[i][k] * B[k][j];
      }
    }
  }
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      F[i][j] = 0.0;
      for (k = 0; k < NI; k++) {
        F[i][j] = F[i][j] + C[i][k] * D[k][j];
      }
    }
  }
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      G[i][j] = 0.0;
      for (k = 0; k < NI; k++) {
        G[i][j] = G[i][j] + E[i][k] * F[k][j];
      }
    }
  }
}
"#;

const REF_3MM: &str = r#"
#define NI 40
double A[40][40];
double B[40][40];
double C[40][40];
double D[40][40];
double E[40][40];
double F[40][40];
double G[40][40];

void init() {
  int i;
  int j;
  for (int i = 0; i < NI; i++) {
    for (int j = 0; j < NI; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = (i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * j % 11 + 1) * 0.5;
      D[i][j] = (i * (j + 2) % 5 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int j;
  int k;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 39; i = i + 1) {
      for (int j = 0; j < NI; j++) {
        E[i][j] = 0.0;
        for (int k = 0; k < NI; k++) {
          E[i][j] = E[i][j] + A[i][k] * B[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 39; i = i + 1) {
      for (int j = 0; j < NI; j++) {
        F[i][j] = 0.0;
        for (int k = 0; k < NI; k++) {
          F[i][j] = F[i][j] + C[i][k] * D[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 39; i = i + 1) {
      for (int j = 0; j < NI; j++) {
        G[i][j] = 0.0;
        for (int k = 0; k < NI; k++) {
          G[i][j] = G[i][j] + E[i][k] * F[k][j];
        }
      }
    }
  }
}
"#;

// ---------------------------------------------------------------- adi ----

const SEQ_ADI: &str = r#"
#define N 80
#define TSTEPS 2
double X[80][80];
double A[80][80];
double B[80][80];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      X[i][j] = (i * (j + 1) % 13 + 1) * 0.25;
      A[i][j] = (i * (j + 2) % 11 + 1) * 0.03125;
      B[i][j] = ((i + 1) * j % 7 + 2) * 1.0;
    }
  }
}

void kernel() {
  int t;
  int i;
  int j;
  for (t = 0; t < TSTEPS; t++) {
    for (i = 0; i < N; i++) {
      for (j = 1; j < N; j++) {
        X[i][j] = X[i][j] - X[i][j-1] * A[i][j] / B[i][j-1];
        B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i][j-1];
      }
    }
    for (j = 0; j < N; j++) {
      for (i = 1; i < N; i++) {
        X[i][j] = X[i][j] - X[i-1][j] * A[i][j] / B[i-1][j];
        B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i-1][j];
      }
    }
  }
}
"#;

const REF_ADI: &str = r#"
#define N 80
#define TSTEPS 2
double X[80][80];
double A[80][80];
double B[80][80];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      X[i][j] = (i * (j + 1) % 13 + 1) * 0.25;
      A[i][j] = (i * (j + 2) % 11 + 1) * 0.03125;
      B[i][j] = ((i + 1) * j % 7 + 2) * 1.0;
    }
  }
}

void kernel() {
  int t;
  int i;
  int j;
  for (int t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 0; i <= 79; i = i + 1) {
        for (int j = 1; j < N; j++) {
          X[i][j] = X[i][j] - X[i][j-1] * A[i][j] / B[i][j-1];
          B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i][j-1];
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t j = 0; j <= 79; j = j + 1) {
        for (int i = 1; i < N; i++) {
          X[i][j] = X[i][j] - X[i-1][j] * A[i][j] / B[i-1][j];
          B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i-1][j];
        }
      }
    }
  }
}
"#;

// --------------------------------------------------------------- atax ----

const SEQ_ATAX: &str = r#"
#define N 120
double A[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    x[i] = 1.0 + i * 0.015625;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      A[i][j] = ((i + j) % 17 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] = tmp[i] + A[i][j] * x[j];
    }
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
"#;

const REF_ATAX: &str = r#"
#define N 120
double A[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    x[i] = 1.0 + i * 0.015625;
    y[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i + j) % 17 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  int j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      tmp[i] = 0.0;
      for (int j = 0; j < N; j++) {
        tmp[i] = tmp[i] + A[i][j] * x[j];
      }
    }
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
"#;

/// Manual: the programmer annotated the easy first nest only.
const MAN_ATAX: &str = r#"
#define N 120
double A[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    x[i] = 1.0 + i * 0.015625;
    y[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i + j) % 17 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  int j;
  #pragma omp parallel for schedule(static)
  for (int i2 = 0; i2 < N; i2++) {
    tmp[i2] = 0.0;
    for (int j2 = 0; j2 < N; j2++) {
      tmp[i2] = tmp[i2] + A[i2][j2] * x[j2];
    }
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
"#;

/// Collaborative: on top of SPLENDID's output (first nest already
/// parallel), the programmer interchanges the second nest and adds one
/// pragma — 3 changed lines.
const COLLAB_ATAX: &str = r#"
#define N 120
double A[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    x[i] = 1.0 + i * 0.015625;
    y[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i + j) % 17 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i2 = 0; i2 <= 119; i2 = i2 + 1) {
      tmp[i2] = 0.0;
      for (int j2 = 0; j2 < N; j2++) {
        tmp[i2] = tmp[i2] + A[i2][j2] * x[j2];
      }
    }
  }
  #pragma omp parallel for schedule(static)
  for (int j = 0; j < N; j++) {
    for (int i = 0; i < N; i++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
"#;

// --------------------------------------------------------------- bicg ----

const SEQ_BICG: &str = r#"
#define N 120
double A[120][120];
double s[120];
double q[120];
double p[120];
double r[120];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    p[i] = (i % 11 + 1) * 0.0625;
    r[i] = (i % 7 + 1) * 0.125;
    s[i] = 0.0;
    q[i] = 0.0;
    for (j = 0; j < N; j++) {
      A[i][j] = ((i * 3 + j) % 13 + 1) * 0.03125;
    }
  }
}

void kernel() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
"#;

const REF_BICG: &str = SEQ_BICG; // the Polly-sim parallelizes nothing here

/// Manual: the programmer distributed by hand and annotated the q part.
const MAN_BICG: &str = r#"
#define N 120
double A[120][120];
double s[120];
double q[120];
double p[120];
double r[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    p[i] = (i % 11 + 1) * 0.0625;
    r[i] = (i % 7 + 1) * 0.125;
    s[i] = 0.0;
    q[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i * 3 + j) % 13 + 1) * 0.03125;
    }
  }
}

void kernel() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
    }
  }
  #pragma omp parallel for schedule(static)
  for (int i2 = 0; i2 < N; i2++) {
    q[i2] = 0.0;
    for (int j2 = 0; j2 < N; j2++) {
      q[i2] = q[i2] + A[i2][j2] * p[j2];
    }
  }
}
"#;

/// Collaborative: distribution + interchange of the s part + two pragmas
/// on SPLENDID output — 4 changed lines.
const COLLAB_BICG: &str = r#"
#define N 120
double A[120][120];
double s[120];
double q[120];
double p[120];
double r[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    p[i] = (i % 11 + 1) * 0.0625;
    r[i] = (i % 7 + 1) * 0.125;
    s[i] = 0.0;
    q[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i * 3 + j) % 13 + 1) * 0.03125;
    }
  }
}

void kernel() {
  #pragma omp parallel for schedule(static)
  for (int j = 0; j < N; j++) {
    for (int i = 0; i < N; i++) {
      s[j] = s[j] + r[i] * A[i][j];
    }
  }
  #pragma omp parallel for schedule(static)
  for (int i2 = 0; i2 < N; i2++) {
    q[i2] = 0.0;
    for (int j2 = 0; j2 < N; j2++) {
      q[i2] = q[i2] + A[i2][j2] * p[j2];
    }
  }
}
"#;

// ------------------------------------------------------------ doitgen ----

const SEQ_DOITGEN: &str = r#"
#define NQ 24
double A[24][24][24];
double Anew[24][24][24];
double C4[24][24];

void init() {
  int r;
  int q;
  int p;
  for (r = 0; r < NQ; r++) {
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NQ; p++) {
        A[r][q][p] = ((r * q + p) % 9 + 1) * 0.0625;
      }
    }
  }
  for (q = 0; q < NQ; q++) {
    for (p = 0; p < NQ; p++) {
      C4[q][p] = ((q + p * 2) % 7 + 1) * 0.125;
    }
  }
}

void kernel() {
  int r;
  int q;
  int p;
  int S;
  for (r = 0; r < NQ; r++) {
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NQ; p++) {
        Anew[r][q][p] = 0.0;
        for (S = 0; S < NQ; S++) {
          Anew[r][q][p] = Anew[r][q][p] + A[r][q][S] * C4[S][p];
        }
      }
    }
  }
  for (r = 0; r < NQ; r++) {
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NQ; p++) {
        A[r][q][p] = Anew[r][q][p];
      }
    }
  }
}
"#;

const REF_DOITGEN: &str = r#"
#define NQ 24
double A[24][24][24];
double Anew[24][24][24];
double C4[24][24];

void init() {
  int r;
  int q;
  int p;
  for (int r = 0; r < NQ; r++) {
    for (int q = 0; q < NQ; q++) {
      for (int p = 0; p < NQ; p++) {
        A[r][q][p] = ((r * q + p) % 9 + 1) * 0.0625;
      }
    }
  }
  for (int q = 0; q < NQ; q++) {
    for (int p = 0; p < NQ; p++) {
      C4[q][p] = ((q + p * 2) % 7 + 1) * 0.125;
    }
  }
}

void kernel() {
  int q;
  int p;
  int S;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t r = 0; r <= 23; r = r + 1) {
      for (int q = 0; q < NQ; q++) {
        for (int p = 0; p < NQ; p++) {
          Anew[r][q][p] = 0.0;
          for (int S = 0; S < NQ; S++) {
            Anew[r][q][p] = Anew[r][q][p] + A[r][q][S] * C4[S][p];
          }
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t r = 0; r <= 23; r = r + 1) {
      for (int q = 0; q < NQ; q++) {
        for (int p = 0; p < NQ; p++) {
          A[r][q][p] = Anew[r][q][p];
        }
      }
    }
  }
}
"#;

// ------------------------------------------------------------ fdtd-2d ----

const SEQ_FDTD: &str = r#"
#define N 80
#define TSTEPS 4
double ex[80][80];
double ey[80][80];
double hz[80][80];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      ex[i][j] = (i * (j + 1) % 11 + 1) * 0.125;
      ey[i][j] = (i * (j + 2) % 7 + 1) * 0.25;
      hz[i][j] = ((i + 3) * j % 13 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int t;
  int i;
  int j;
  for (t = 0; t < TSTEPS; t++) {
    for (j = 0; j < N; j++) {
      ey[0][j] = t * 0.1;
    }
    for (i = 1; i < N; i++) {
      for (j = 0; j < N; j++) {
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
      }
    }
    for (i = 0; i < N; i++) {
      for (j = 1; j < N; j++) {
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
      }
    }
    for (i = 0; i < N - 1; i++) {
      for (j = 0; j < N - 1; j++) {
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
      }
    }
  }
}
"#;

const REF_FDTD: &str = r#"
#define N 80
#define TSTEPS 4
double ex[80][80];
double ey[80][80];
double hz[80][80];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      ex[i][j] = (i * (j + 1) % 11 + 1) * 0.125;
      ey[i][j] = (i * (j + 2) % 7 + 1) * 0.25;
      hz[i][j] = ((i + 3) * j % 13 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int t;
  int i;
  int j;
  for (int t = 0; t < TSTEPS; t++) {
    for (int j = 0; j < N; j++) {
      ey[0][j] = t * 0.1;
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 79; i = i + 1) {
        for (int j = 0; j < N; j++) {
          ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 0; i <= 79; i = i + 1) {
        for (int j = 1; j < N; j++) {
          ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 0; i <= 78; i = i + 1) {
        for (int j = 0; j < N - 1; j++) {
          hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
        }
      }
    }
  }
}
"#;

/// Manual: the programmer annotated the ey and hz nests (missed ex).
const MAN_FDTD: &str = r#"
#define N 80
#define TSTEPS 4
double ex[80][80];
double ey[80][80];
double hz[80][80];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      ex[i][j] = (i * (j + 1) % 11 + 1) * 0.125;
      ey[i][j] = (i * (j + 2) % 7 + 1) * 0.25;
      hz[i][j] = ((i + 3) * j % 13 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int t;
  int i;
  int j;
  for (int t = 0; t < TSTEPS; t++) {
    for (int j = 0; j < N; j++) {
      ey[0][j] = t * 0.1;
    }
    #pragma omp parallel for schedule(static)
    for (int i1 = 1; i1 < N; i1++) {
      for (int j1 = 0; j1 < N; j1++) {
        ey[i1][j1] = ey[i1][j1] - 0.5 * (hz[i1][j1] - hz[i1-1][j1]);
      }
    }
    for (int i = 0; i < N; i++) {
      for (int j = 1; j < N; j++) {
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
      }
    }
    #pragma omp parallel for schedule(static)
    for (int i2 = 0; i2 < N - 1; i2++) {
      for (int j2 = 0; j2 < N - 1; j2++) {
        hz[i2][j2] = hz[i2][j2] - 0.7 * (ex[i2][j2+1] - ex[i2][j2] + ey[i2+1][j2] - ey[i2][j2]);
      }
    }
  }
}
"#;

// ----------------------------------------------------- floyd-warshall ----

const SEQ_FLOYD: &str = r#"
#define N 60
double path[60][60];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      path[i][j] = (i * j % 7 + 1) * 1.0 + (i + j) % 13;
    }
  }
}

void kernel() {
  int k;
  int i;
  int j;
  for (k = 0; k < N; k++) {
    for (i = 0; i < N; i++) {
      for (j = 0; j < N; j++) {
        if (path[i][k] + path[k][j] < path[i][j]) {
          path[i][j] = path[i][k] + path[k][j];
        }
      }
    }
  }
}
"#;

const REF_FLOYD: &str = SEQ_FLOYD; // dependences defeat the Polly-sim here

// --------------------------------------------------------------- gemm ----

const SEQ_GEMM: &str = r#"
#define NI 48
double A[48][48];
double B[48][48];
double C[48][48];

void init() {
  int i;
  int j;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = (i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * j % 11 + 1) * 0.5;
    }
  }
}

void kernel() {
  int i;
  int j;
  int k;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NI; j++) {
      C[i][j] = C[i][j] * 1.2;
      for (k = 0; k < NI; k++) {
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
}
"#;

const REF_GEMM: &str = r#"
#define NI 48
double A[48][48];
double B[48][48];
double C[48][48];

void init() {
  int i;
  int j;
  for (int i = 0; i < NI; i++) {
    for (int j = 0; j < NI; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = (i * (j + 1) % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * j % 11 + 1) * 0.5;
    }
  }
}

void kernel() {
  int j;
  int k;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 47; i = i + 1) {
      for (int j = 0; j < NI; j++) {
        C[i][j] = C[i][j] * 1.2;
        for (int k = 0; k < NI; k++) {
          C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
        }
      }
    }
  }
}
"#;

// ------------------------------------------------------------- gemver ----

const SEQ_GEMVER: &str = r#"
#define N 120
double A[120][120];
double u1[120];
double v1[120];
double u2[120];
double v2[120];
double w[120];
double x[120];
double y[120];
double z[120];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    u1[i] = (i % 9 + 1) * 0.125;
    v1[i] = ((i + 1) % 7 + 1) * 0.0625;
    u2[i] = ((i + 2) % 11 + 1) * 0.03125;
    v2[i] = ((i + 3) % 5 + 1) * 0.25;
    y[i] = (i % 13 + 1) * 0.015625;
    z[i] = (i % 17 + 1) * 0.0078125;
    x[i] = 0.0;
    w[i] = 0.0;
    for (j = 0; j < N; j++) {
      A[i][j] = ((i * 2 + j) % 19 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      x[j] = x[j] + 1.1 * A[i][j] * y[i];
    }
  }
  for (i = 0; i < N; i++) {
    x[i] = x[i] + z[i];
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      w[i] = w[i] + 1.3 * A[i][j] * x[j];
    }
  }
}
"#;

const REF_GEMVER: &str = r#"
#define N 120
double A[120][120];
double u1[120];
double v1[120];
double u2[120];
double v2[120];
double w[120];
double x[120];
double y[120];
double z[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    u1[i] = (i % 9 + 1) * 0.125;
    v1[i] = ((i + 1) % 7 + 1) * 0.0625;
    u2[i] = ((i + 2) % 11 + 1) * 0.03125;
    v2[i] = ((i + 3) % 5 + 1) * 0.25;
    y[i] = (i % 13 + 1) * 0.015625;
    z[i] = (i % 17 + 1) * 0.0078125;
    x[i] = 0.0;
    w[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i * 2 + j) % 19 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int i;
  int j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      for (int j = 0; j < N; j++) {
        A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
      }
    }
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      x[j] = x[j] + 1.1 * A[i][j] * y[i];
    }
  }
  for (int i = 0; i < N; i++) {
    x[i] = x[i] + z[i];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      for (int j = 0; j < N; j++) {
        w[i] = w[i] + 1.3 * A[i][j] * x[j];
      }
    }
  }
}
"#;

/// Manual: the programmer annotated the first and last nests.
const MAN_GEMVER: &str = r#"
#define N 120
double A[120][120];
double u1[120];
double v1[120];
double u2[120];
double v2[120];
double w[120];
double x[120];
double y[120];
double z[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    u1[i] = (i % 9 + 1) * 0.125;
    v1[i] = ((i + 1) % 7 + 1) * 0.0625;
    u2[i] = ((i + 2) % 11 + 1) * 0.03125;
    v2[i] = ((i + 3) % 5 + 1) * 0.25;
    y[i] = (i % 13 + 1) * 0.015625;
    z[i] = (i % 17 + 1) * 0.0078125;
    x[i] = 0.0;
    w[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i * 2 + j) % 19 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int i;
  int j;
  #pragma omp parallel for schedule(static)
  for (int i1 = 0; i1 < N; i1++) {
    for (int j1 = 0; j1 < N; j1++) {
      A[i1][j1] = A[i1][j1] + u1[i1] * v1[j1] + u2[i1] * v2[j1];
    }
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      x[j] = x[j] + 1.1 * A[i][j] * y[i];
    }
  }
  for (int i = 0; i < N; i++) {
    x[i] = x[i] + z[i];
  }
  #pragma omp parallel for schedule(static)
  for (int i4 = 0; i4 < N; i4++) {
    for (int j4 = 0; j4 < N; j4++) {
      w[i4] = w[i4] + 1.3 * A[i4][j4] * x[j4];
    }
  }
}
"#;

/// Collaborative: SPLENDID has nests 1 and 4 parallel; the programmer
/// interchanges nest 2 and adds a pragma — 3 changed lines.
const COLLAB_GEMVER: &str = r#"
#define N 120
double A[120][120];
double u1[120];
double v1[120];
double u2[120];
double v2[120];
double w[120];
double x[120];
double y[120];
double z[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    u1[i] = (i % 9 + 1) * 0.125;
    v1[i] = ((i + 1) % 7 + 1) * 0.0625;
    u2[i] = ((i + 2) % 11 + 1) * 0.03125;
    v2[i] = ((i + 3) % 5 + 1) * 0.25;
    y[i] = (i % 13 + 1) * 0.015625;
    z[i] = (i % 17 + 1) * 0.0078125;
    x[i] = 0.0;
    w[i] = 0.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i * 2 + j) % 19 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int i;
  int j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i1 = 0; i1 <= 119; i1 = i1 + 1) {
      for (int j = 0; j < N; j++) {
        A[i1][j] = A[i1][j] + u1[i1] * v1[j] + u2[i1] * v2[j];
      }
    }
  }
  #pragma omp parallel for schedule(static)
  for (int j2 = 0; j2 < N; j2++) {
    for (int i = 0; i < N; i++) {
      x[j2] = x[j2] + 1.1 * A[i][j2] * y[i];
    }
  }
  for (int i = 0; i < N; i++) {
    x[i] = x[i] + z[i];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i4 = 0; i4 <= 119; i4 = i4 + 1) {
      for (int j = 0; j < N; j++) {
        w[i4] = w[i4] + 1.3 * A[i4][j] * x[j];
      }
    }
  }
}
"#;

// ------------------------------------------------------------ gesummv ----

const SEQ_GESUMMV: &str = r#"
#define N 120
double A[120][120];
double B[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    x[i] = (i % 9 + 1) * 0.0625;
    for (j = 0; j < N; j++) {
      A[i][j] = ((i + j * 2) % 11 + 1) * 0.03125;
      B[i][j] = ((i * 2 + j) % 13 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = 1.25 * tmp[i] + 1.75 * y[i];
  }
}
"#;

const REF_GESUMMV: &str = r#"
#define N 120
double A[120][120];
double B[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    x[i] = (i % 9 + 1) * 0.0625;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i + j * 2) % 11 + 1) * 0.03125;
      B[i][j] = ((i * 2 + j) % 13 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      tmp[i] = 0.0;
      y[i] = 0.0;
      for (int j = 0; j < N; j++) {
        tmp[i] = A[i][j] * x[j] + tmp[i];
        y[i] = B[i][j] * x[j] + y[i];
      }
      y[i] = 1.25 * tmp[i] + 1.75 * y[i];
    }
  }
}
"#;

// ---------------------------------------------------- jacobi-1d-imper ----

const SEQ_JAC1D: &str = r#"
#define N 2000
#define TSTEPS 6
double A[2000];
double B[2000];

void init() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = (i % 17 + 2) * 0.25;
    B[i] = 0.0;
  }
}

void kernel() {
  int t;
  int i;
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++) {
      B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
    }
    for (i = 1; i < N - 1; i++) {
      A[i] = B[i];
    }
  }
}
"#;

const REF_JAC1D: &str = r#"
#define N 2000
#define TSTEPS 6
double A[2000];
double B[2000];

void init() {
  int i;
  for (int i = 0; i < N; i++) {
    A[i] = (i % 17 + 2) * 0.25;
    B[i] = 0.0;
  }
}

void kernel() {
  int t;
  int i;
  for (int t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 1998; i = i + 1) {
        B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
      }
    }
    for (int i = 1; i < N - 1; i++) {
      A[i] = B[i];
    }
  }
}
"#;

/// Manual: the programmer annotated the stencil loop only.
const MAN_JAC1D: &str = r#"
#define N 2000
#define TSTEPS 6
double A[2000];
double B[2000];

void init() {
  int i;
  for (int i = 0; i < N; i++) {
    A[i] = (i % 17 + 2) * 0.25;
    B[i] = 0.0;
  }
}

void kernel() {
  int t;
  int i;
  for (int t = 0; t < TSTEPS; t++) {
    #pragma omp parallel for schedule(static)
    for (int i1 = 1; i1 < N - 1; i1++) {
      B[i1] = (A[i1-1] + A[i1] + A[i1+1]) / 3.0;
    }
    for (int i = 1; i < N - 1; i++) {
      A[i] = B[i];
    }
  }
}
"#;

/// Collaborative: SPLENDID parallelized the stencil; the programmer adds a
/// pragma to the copy-back loop the compiler's profitability heuristic
/// skipped — 2 changed lines.
const COLLAB_JAC1D: &str = r#"
#define N 2000
#define TSTEPS 6
double A[2000];
double B[2000];

void init() {
  int i;
  for (int i = 0; i < N; i++) {
    A[i] = (i % 17 + 2) * 0.25;
    B[i] = 0.0;
  }
}

void kernel() {
  int t;
  for (int t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 1998; i = i + 1) {
        B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
      }
    }
    #pragma omp parallel for schedule(static)
    for (int i2 = 1; i2 < N - 1; i2++) {
      A[i2] = B[i2];
    }
  }
}
"#;

// ---------------------------------------------------- jacobi-2d-imper ----

const SEQ_JAC2D: &str = r#"
#define N 100
#define TSTEPS 4
double A[100][100];
double B[100][100];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = ((i + 1) * (j + 2) % 19 + 1) * 0.125;
      B[i][j] = 0.0;
    }
  }
}

void kernel() {
  int t;
  int i;
  int j;
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++) {
      for (j = 1; j < N - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
      }
    }
    for (i = 1; i < N - 1; i++) {
      for (j = 1; j < N - 1; j++) {
        A[i][j] = B[i][j];
      }
    }
  }
}
"#;

const REF_JAC2D: &str = r#"
#define N 100
#define TSTEPS 4
double A[100][100];
double B[100][100];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i + 1) * (j + 2) % 19 + 1) * 0.125;
      B[i][j] = 0.0;
    }
  }
}

void kernel() {
  int t;
  int j;
  for (int t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 98; i = i + 1) {
        for (int j = 1; j < N - 1; j++) {
          B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (uint64_t i = 1; i <= 98; i = i + 1) {
        for (int j = 1; j < N - 1; j++) {
          A[i][j] = B[i][j];
        }
      }
    }
  }
}
"#;

// ---------------------------------------------------------------- mvt ----

const SEQ_MVT: &str = r#"
#define N 120
double A[120][120];
double x1[120];
double x2[120];
double y1[120];
double y2[120];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    x1[i] = (i % 9 + 1) * 0.0625;
    x2[i] = ((i + 4) % 7 + 1) * 0.03125;
    y1[i] = (i % 11 + 1) * 0.125;
    y2[i] = ((i + 2) % 13 + 1) * 0.25;
    for (j = 0; j < N; j++) {
      A[i][j] = ((i * 2 + j * 3) % 17 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      x1[i] = x1[i] + A[i][j] * y1[j];
    }
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      x2[i] = x2[i] + A[j][i] * y2[j];
    }
  }
}
"#;

const REF_MVT: &str = r#"
#define N 120
double A[120][120];
double x1[120];
double x2[120];
double y1[120];
double y2[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    x1[i] = (i % 9 + 1) * 0.0625;
    x2[i] = ((i + 4) % 7 + 1) * 0.03125;
    y1[i] = (i % 11 + 1) * 0.125;
    y2[i] = ((i + 2) % 13 + 1) * 0.25;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i * 2 + j * 3) % 17 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      for (int j = 0; j < N; j++) {
        x1[i] = x1[i] + A[i][j] * y1[j];
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 119; i = i + 1) {
      for (int j = 0; j < N; j++) {
        x2[i] = x2[i] + A[j][i] * y2[j];
      }
    }
  }
}
"#;

// -------------------------------------------------------------- syr2k ----

const SEQ_SYR2K: &str = r#"
#define N 48
double A[48][48];
double B[48][48];
double C[48][48];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = ((i + 2) * j % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * (j + 1) % 11 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  int j;
  int k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 1.3;
      for (k = 0; k < N; k++) {
        C[i][j] = C[i][j] + 1.1 * A[i][k] * B[j][k] + 1.1 * B[i][k] * A[j][k];
      }
    }
  }
}
"#;

const REF_SYR2K: &str = r#"
#define N 48
double A[48][48];
double B[48][48];
double C[48][48];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      B[i][j] = ((i + 2) * j % 7 + 1) * 0.25;
      C[i][j] = ((i + 3) * (j + 1) % 11 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int j;
  int k;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 47; i = i + 1) {
      for (int j = 0; j < N; j++) {
        C[i][j] = C[i][j] * 1.3;
        for (int k = 0; k < N; k++) {
          C[i][j] = C[i][j] + 1.1 * A[i][k] * B[j][k] + 1.1 * B[i][k] * A[j][k];
        }
      }
    }
  }
}
"#;

// --------------------------------------------------------------- syrk ----

const SEQ_SYRK: &str = r#"
#define N 48
double A[48][48];
double C[48][48];

void init() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      C[i][j] = ((i + 3) * (j + 1) % 11 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int i;
  int j;
  int k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 1.3;
      for (k = 0; k < N; k++) {
        C[i][j] = C[i][j] + 1.1 * A[i][k] * A[j][k];
      }
    }
  }
}
"#;

const REF_SYRK: &str = r#"
#define N 48
double A[48][48];
double C[48][48];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (i * j % 9 + 1) * 0.125;
      C[i][j] = ((i + 3) * (j + 1) % 11 + 1) * 0.0625;
    }
  }
}

void kernel() {
  int j;
  int k;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (uint64_t i = 0; i <= 47; i = i + 1) {
      for (int j = 0; j < N; j++) {
        C[i][j] = C[i][j] * 1.3;
        for (int k = 0; k < N; k++) {
          C[i][j] = C[i][j] + 1.1 * A[i][k] * A[j][k];
        }
      }
    }
  }
}
"#;

/// Manual: the programmer annotated the first product only.
const MAN_MVT: &str = r#"
#define N 120
double A[120][120];
double x1[120];
double x2[120];
double y1[120];
double y2[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    x1[i] = (i % 9 + 1) * 0.0625;
    x2[i] = ((i + 4) % 7 + 1) * 0.03125;
    y1[i] = (i % 11 + 1) * 0.125;
    y2[i] = ((i + 2) % 13 + 1) * 0.25;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i * 2 + j * 3) % 17 + 1) * 0.015625;
    }
  }
}

void kernel() {
  int i;
  int j;
  #pragma omp parallel for schedule(static)
  for (int i1 = 0; i1 < N; i1++) {
    for (int j1 = 0; j1 < N; j1++) {
      x1[i1] = x1[i1] + A[i1][j1] * y1[j1];
    }
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      x2[i] = x2[i] + A[j][i] * y2[j];
    }
  }
}
"#;

/// Manual gesummv: the programmer annotated the (only) nest, same loop the
/// compiler finds.
const MAN_GESUMMV: &str = r#"
#define N 120
double A[120][120];
double B[120][120];
double x[120];
double y[120];
double tmp[120];

void init() {
  int i;
  int j;
  for (int i = 0; i < N; i++) {
    x[i] = (i % 9 + 1) * 0.0625;
    for (int j = 0; j < N; j++) {
      A[i][j] = ((i + j * 2) % 11 + 1) * 0.03125;
      B[i][j] = ((i * 2 + j) % 13 + 1) * 0.015625;
    }
  }
}

void kernel() {
  #pragma omp parallel for schedule(static)
  for (int i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = 1.25 * tmp[i] + 1.75 * y[i];
  }
}
"#;

/// The 16 benchmarks in the paper's Table 3 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench!("2mm", seq: SEQ_2MM, ref_: REF_2MM, manual: None, collab: None,
               collab_loc: 0, manual_loops: 2, overlap: 2,
               check: &["D", "tmp"]),
        bench!("3mm", seq: SEQ_3MM, ref_: REF_3MM, manual: None, collab: None,
               collab_loc: 0, manual_loops: 3, overlap: 3,
               check: &["G"]),
        bench!("adi", seq: SEQ_ADI, ref_: REF_ADI, manual: None, collab: None,
               collab_loc: 0, manual_loops: 1, overlap: 1,
               check: &["X", "B"]),
        bench!("atax", seq: SEQ_ATAX, ref_: REF_ATAX, manual: Some(MAN_ATAX),
               collab: Some(COLLAB_ATAX), collab_loc: 3, manual_loops: 1, overlap: 1,
               check: &["y"]),
        bench!("bicg", seq: SEQ_BICG, ref_: REF_BICG, manual: Some(MAN_BICG),
               collab: Some(COLLAB_BICG), collab_loc: 4, manual_loops: 1, overlap: 0,
               check: &["s", "q"]),
        bench!("doitgen", seq: SEQ_DOITGEN, ref_: REF_DOITGEN, manual: None,
               collab: None, collab_loc: 0, manual_loops: 2, overlap: 2,
               check: &["A"]),
        bench!("fdtd-2d", seq: SEQ_FDTD, ref_: REF_FDTD, manual: Some(MAN_FDTD),
               collab: Some(REF_FDTD), collab_loc: 0, manual_loops: 2, overlap: 2,
               check: &["ex", "ey", "hz"]),
        bench!("floyd-warshall", seq: SEQ_FLOYD, ref_: REF_FLOYD, manual: None,
               collab: None, collab_loc: 0, manual_loops: 1, overlap: 0,
               check: &["path"]),
        bench!("gemm", seq: SEQ_GEMM, ref_: REF_GEMM, manual: None, collab: None,
               collab_loc: 0, manual_loops: 1, overlap: 1,
               check: &["C"]),
        bench!("gemver", seq: SEQ_GEMVER, ref_: REF_GEMVER, manual: Some(MAN_GEMVER),
               collab: Some(COLLAB_GEMVER), collab_loc: 3, manual_loops: 2, overlap: 2,
               check: &["A", "w", "x"]),
        bench!("gesummv", seq: SEQ_GESUMMV, ref_: REF_GESUMMV,
               manual: Some(MAN_GESUMMV), collab: Some(REF_GESUMMV),
               collab_loc: 0, manual_loops: 1, overlap: 1,
               check: &["y"]),
        bench!("jacobi-1d-imper", seq: SEQ_JAC1D, ref_: REF_JAC1D,
               manual: Some(MAN_JAC1D), collab: Some(COLLAB_JAC1D), collab_loc: 2,
               manual_loops: 1, overlap: 1, check: &["A", "B"]),
        bench!("jacobi-2d-imper", seq: SEQ_JAC2D, ref_: REF_JAC2D, manual: None,
               collab: None, collab_loc: 0, manual_loops: 2, overlap: 2,
               check: &["A", "B"]),
        bench!("mvt", seq: SEQ_MVT, ref_: REF_MVT, manual: Some(MAN_MVT),
               collab: Some(REF_MVT), collab_loc: 0, manual_loops: 2, overlap: 2,
               check: &["x1", "x2"]),
        bench!("syr2k", seq: SEQ_SYR2K, ref_: REF_SYR2K, manual: None, collab: None,
               collab_loc: 0, manual_loops: 1, overlap: 1,
               check: &["C"]),
        bench!("syrk", seq: SEQ_SYRK, ref_: REF_SYRK, manual: None, collab: None,
               collab_loc: 0, manual_loops: 1, overlap: 1,
               check: &["C"]),
    ]
}

/// Look a benchmark up by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_benchmarks_in_table3_order() {
        let b = benchmarks();
        assert_eq!(b.len(), 16);
        assert_eq!(b[0].name, "2mm");
        assert_eq!(b[15].name, "syrk");
    }

    #[test]
    fn all_sources_parse_and_lower() {
        for b in benchmarks() {
            for (tag, src) in [
                ("seq", Some(b.sequential)),
                ("ref", Some(b.reference)),
                ("manual", b.manual),
                ("collab", b.collab),
            ] {
                let Some(src) = src else { continue };
                let prog = splendid_cfront::parse_program(src)
                    .unwrap_or_else(|e| panic!("{} {tag}: {e}", b.name));
                splendid_cfront::lower_program(
                    &prog,
                    b.name,
                    &splendid_cfront::LowerOptions::default(),
                )
                .unwrap_or_else(|e| panic!("{} {tag}: {e}", b.name));
            }
        }
    }

    #[test]
    fn fig9_subset_has_seven_entries() {
        let n = benchmarks().iter().filter(|b| b.collab.is_some()).count();
        assert_eq!(n, 7);
    }

    #[test]
    fn check_globals_exist() {
        for b in benchmarks() {
            let prog = splendid_cfront::parse_program(b.sequential).unwrap();
            for g in b.check_globals {
                assert!(
                    prog.globals.iter().any(|(n, _)| n == g),
                    "{}: missing global {g}",
                    b.name
                );
            }
        }
    }
}
