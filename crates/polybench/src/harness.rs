//! End-to-end pipeline harness driving every experiment.

use crate::kernels::Benchmark;
use splendid_baselines::{decompile_ghidra_like, decompile_rellic_like, BaselineOutput};
use splendid_cfront::{lower_program, parse_program, LowerOptions, OmpRuntime};
use splendid_core::{decompile, DecompileOutput, SplendidOptions};
use splendid_interp::{CompilerProfile, MachineConfig, Vm};
use splendid_ir::Module;
use splendid_parallel::{parallelize_module, ParallelizeOptions, ParallelizeReport};
use splendid_transforms::{optimize_module, O2Options};

/// Minimum estimated work for the Polly-sim profitability check (see
/// `ParallelizeOptions::min_work`).
pub const MIN_PARALLEL_WORK: u64 = 20_000;

/// Everything produced for one benchmark by the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineArtifacts {
    /// Parallel IR after `-O2` + Polly-sim.
    pub parallel_module: Module,
    /// What the parallelizer did per loop.
    pub report: ParallelizeReport,
    /// SPLENDID full-variant decompilation.
    pub splendid: DecompileOutput,
    /// Rellic-like baseline output.
    pub rellic: BaselineOutput,
    /// Ghidra-like baseline output.
    pub ghidra: BaselineOutput,
}

/// Which pipeline stage a [`HarnessError`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessStage {
    /// C parsing (cfront).
    Parse,
    /// C-to-IR lowering (cfront).
    Lower,
    /// Interpreting the `init` function.
    Init,
    /// Interpreting the `kernel` function.
    Kernel,
    /// Reading a checksum global after execution.
    Checksum,
    /// Anything else that names its own stage in the message.
    Other,
    /// A stage panicked; the payload is preserved in the message.
    Panic,
}

impl HarnessStage {
    fn label(&self) -> &'static str {
        match self {
            HarnessStage::Parse => "parse",
            HarnessStage::Lower => "lower",
            HarnessStage::Init => "init",
            HarnessStage::Kernel => "kernel",
            HarnessStage::Checksum => "checksum",
            HarnessStage::Other => "stage",
            HarnessStage::Panic => "panic",
        }
    }
}

/// Harness errors carry the failing stage plus a message, so callers (the
/// difftest oracle in particular) can report *where* a generated program
/// broke the pipeline instead of aborting the whole run.
#[derive(Debug, Clone)]
pub struct HarnessError {
    /// The stage that failed.
    pub stage: HarnessStage,
    /// Human-readable detail.
    pub message: String,
}

impl HarnessError {
    /// Error in a given stage.
    pub fn new(stage: HarnessStage, message: impl Into<String>) -> HarnessError {
        HarnessError {
            stage,
            message: message.into(),
        }
    }

    /// Error in an ad-hoc stage described by the message alone.
    pub fn other(message: impl Into<String>) -> HarnessError {
        HarnessError::new(HarnessStage::Other, message)
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "harness error [{}]: {}",
            self.stage.label(),
            self.message
        )
    }
}

impl std::error::Error for HarnessError {}

/// Run `f`, converting a panic into a structured [`HarnessError`].
///
/// cfront lowering and the interpreter have internal invariants that
/// machine-generated sources can violate in ways hand-written PolyBench
/// kernels never did; a differential-testing oracle must survive those as
/// reportable errors, not process aborts.
fn contain_panics<T>(f: impl FnOnce() -> Result<T, HarnessError>) -> Result<T, HarnessError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_string()
            };
            Err(HarnessError::new(HarnessStage::Panic, msg))
        }
    }
}

/// The pipeline harness.
pub struct Harness;

impl Harness {
    /// Compile C source to optimized IR with the given OpenMP runtime.
    pub fn compile(src: &str, runtime: OmpRuntime) -> Result<Module, HarnessError> {
        contain_panics(|| {
            let prog = parse_program(src)
                .map_err(|e| HarnessError::new(HarnessStage::Parse, e.to_string()))?;
            let mut m = lower_program(&prog, "bench", &LowerOptions { runtime })
                .map_err(|e| HarnessError::new(HarnessStage::Lower, e.to_string()))?;
            optimize_module(&mut m, &O2Options::default());
            Ok(m)
        })
    }

    /// [`Harness::compile`] without the `-O2` pass pipeline: the raw
    /// lowered IR, used as the differential-testing reference route.
    pub fn compile_o0(src: &str, runtime: OmpRuntime) -> Result<Module, HarnessError> {
        contain_panics(|| {
            let prog = parse_program(src)
                .map_err(|e| HarnessError::new(HarnessStage::Parse, e.to_string()))?;
            lower_program(&prog, "bench", &LowerOptions { runtime })
                .map_err(|e| HarnessError::new(HarnessStage::Lower, e.to_string()))
        })
    }

    /// Compile sequential source and run the Polly-sim parallelizer over
    /// its kernel function.
    pub fn polly(src: &str) -> Result<(Module, ParallelizeReport), HarnessError> {
        let mut m = Self::compile(src, OmpRuntime::LibOmp)?;
        let opts = ParallelizeOptions {
            version_aliasing: true,
            min_work: MIN_PARALLEL_WORK,
            only_functions: vec!["kernel".into()],
        };
        let report = parallelize_module(&mut m, &opts);
        Ok((m, report))
    }

    /// Run init + kernel; returns `(checksum over check_globals, kernel
    /// cycles)`.
    pub fn run(
        module: &Module,
        config: MachineConfig,
        check_globals: &[&str],
    ) -> Result<(f64, u64), HarnessError> {
        contain_panics(|| {
            let mut vm = Vm::new(module, config);
            if module.func_by_name("init").is_some() {
                vm.call_by_name("init", &[])
                    .map_err(|e| HarnessError::new(HarnessStage::Init, e.to_string()))?;
            }
            let before = vm.cycles();
            vm.call_by_name("kernel", &[])
                .map_err(|e| HarnessError::new(HarnessStage::Kernel, e.to_string()))?;
            let cycles = vm.cycles() - before;
            let mut sum = 0.0;
            for g in check_globals {
                sum += vm
                    .checksum_global(g)
                    .map_err(|e| HarnessError::new(HarnessStage::Checksum, format!("{g}: {e}")))?;
            }
            Ok((sum, cycles))
        })
    }

    /// Sequential-baseline cycles of a source under a profile.
    pub fn run_source(
        src: &str,
        runtime: OmpRuntime,
        profile: CompilerProfile,
        check_globals: &[&str],
    ) -> Result<(f64, u64), HarnessError> {
        let m = Self::compile(src, runtime)?;
        Self::run(&m, MachineConfig::xeon_28core(profile), check_globals)
    }

    /// Full pipeline for a benchmark: Polly-sim + SPLENDID + baselines.
    pub fn pipeline(bench: &Benchmark) -> Result<PipelineArtifacts, HarnessError> {
        let (parallel_module, report) = Self::polly(bench.sequential)?;
        let splendid = decompile(&parallel_module, &SplendidOptions::default())
            .map_err(|e| HarnessError::other(format!("splendid: {e}")))?;
        let rellic = decompile_rellic_like(&parallel_module);
        let ghidra = decompile_ghidra_like(&parallel_module);
        Ok(PipelineArtifacts {
            parallel_module,
            report,
            splendid,
            rellic,
            ghidra,
        })
    }

    /// Compile the whole suite to parallel IR: the batch workload the
    /// serve layer schedules (`splendid bench-serve` / `dump-polybench`).
    pub fn polly_suite() -> Result<Vec<(String, Module)>, HarnessError> {
        crate::kernels::benchmarks()
            .iter()
            .map(|b| {
                Self::polly(b.sequential)
                    .map(|(m, _)| (b.name.to_string(), m))
                    .map_err(|e| HarnessError::new(e.stage, format!("{}: {}", b.name, e.message)))
            })
            .collect()
    }

    /// Recompile decompiled source and execute it, returning the checksum
    /// and kernel cycles.
    ///
    /// Never panics on malformed input: parse, lowering, and execution
    /// failures — including panics from pipeline invariants violated by
    /// generator-shaped sources — come back as a stage-tagged
    /// [`HarnessError`], so a differential-testing oracle can record the
    /// case and keep going.
    pub fn recompile_and_run(
        source: &str,
        runtime: OmpRuntime,
        profile: CompilerProfile,
        check_globals: &[&str],
    ) -> Result<(f64, u64), HarnessError> {
        Self::run_source(source, runtime, profile, check_globals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{benchmark, benchmarks};

    #[test]
    fn recompile_and_run_reports_parse_failures_as_errors() {
        // Generator-shaped degenerate input: an unterminated block.
        let err = Harness::recompile_and_run(
            "void kernel() { for (;;) {",
            OmpRuntime::LibOmp,
            CompilerProfile::gcc(),
            &[],
        )
        .unwrap_err();
        assert_eq!(err.stage, HarnessStage::Parse, "{err}");
    }

    #[test]
    fn recompile_and_run_reports_missing_kernel_as_error() {
        let err = Harness::recompile_and_run(
            "double A[4];\nvoid init() { A[0] = 1.0; }\n",
            OmpRuntime::LibOmp,
            CompilerProfile::gcc(),
            &["A"],
        )
        .unwrap_err();
        assert_eq!(err.stage, HarnessStage::Kernel, "{err}");
    }

    #[test]
    fn recompile_and_run_reports_unknown_checksum_global_as_error() {
        let err = Harness::recompile_and_run(
            "void kernel() { int i; i = 0; }",
            OmpRuntime::LibOmp,
            CompilerProfile::gcc(),
            &["missing"],
        )
        .unwrap_err();
        assert_eq!(err.stage, HarnessStage::Checksum, "{err}");
    }

    #[test]
    fn harness_contains_panics_as_structured_errors() {
        let err =
            contain_panics::<()>(|| panic!("invariant violated by generated input")).unwrap_err();
        assert_eq!(err.stage, HarnessStage::Panic);
        assert!(err.message.contains("invariant violated"), "{err}");
    }

    #[test]
    fn empty_loop_bodies_round_trip_without_aborting() {
        // The canonical generator shape that must never abort the oracle:
        // a kernel whose loop body is empty.
        let src = "double A[8];\nvoid kernel() {\n  int i;\n  for (i = 0; i < 4; i++) {\n  }\n  A[0] = 1.0;\n}\n";
        let r =
            Harness::recompile_and_run(src, OmpRuntime::LibGomp, CompilerProfile::gcc(), &["A"]);
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn gemm_pipeline_end_to_end() {
        let b = benchmark("gemm").unwrap();
        let art = Harness::pipeline(&b).unwrap();
        assert_eq!(art.report.parallelized_count(), 1, "{:?}", art.report);
        let s = &art.splendid.source;
        assert!(s.contains("#pragma omp parallel"), "{s}");
        assert!(!s.contains("__kmpc"), "{s}");

        // Semantics: sequential == parallel == decompiled-and-recompiled.
        let seq = Harness::run_source(
            b.sequential,
            OmpRuntime::LibOmp,
            CompilerProfile::clang(),
            b.check_globals,
        )
        .unwrap();
        let par = Harness::run(
            &art.parallel_module,
            MachineConfig::default(),
            b.check_globals,
        )
        .unwrap();
        assert_eq!(seq.0, par.0, "parallelization must preserve semantics");
        for rt in [OmpRuntime::LibOmp, OmpRuntime::LibGomp] {
            let re = Harness::recompile_and_run(
                &art.splendid.source,
                rt,
                CompilerProfile::gcc(),
                b.check_globals,
            )
            .unwrap();
            assert_eq!(re.0, seq.0, "decompiled code must match under {rt:?}");
        }
        // Performance: the parallel version is much faster than sequential.
        let speedup = seq.1 as f64 / par.1 as f64;
        assert!(speedup > 4.0, "expected real speedup, got {speedup:.2}");
    }

    #[test]
    fn every_benchmark_parallelizes_like_its_reference() {
        for b in benchmarks() {
            let (_, report) = Harness::polly(b.sequential).unwrap();
            let expected = b.reference.matches("#pragma omp for").count();
            assert_eq!(
                report.parallelized_count(),
                expected,
                "{}: reference pragmas vs parallelizer disagree: {:?}",
                b.name,
                report
            );
        }
    }

    #[test]
    fn every_benchmark_semantics_preserved_through_decompilation() {
        for b in benchmarks() {
            let art = Harness::pipeline(&b).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let seq = Harness::run_source(
                b.sequential,
                OmpRuntime::LibOmp,
                CompilerProfile::clang(),
                b.check_globals,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let re = Harness::recompile_and_run(
                &art.splendid.source,
                OmpRuntime::LibGomp,
                CompilerProfile::gcc(),
                b.check_globals,
            )
            .unwrap_or_else(|e| panic!("{}: recompile: {e}\n{}", b.name, art.splendid.source));
            assert!(seq.0.is_finite(), "{}: non-finite checksum", b.name);
            assert_eq!(seq.0, re.0, "{}: checksum mismatch", b.name);
        }
    }
}
