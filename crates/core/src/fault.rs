//! Deterministic, seeded fault injection for the decompilation pipeline.
//!
//! A [`FaultPlan`] forces a named pass (a [`Stage`] site) to fail, time
//! out, or hit a simulated allocation cap at exactly the Nth invocation
//! of that site. Plans are threaded through the pipeline via
//! `SplendidOptions::faults` as an `Option<Arc<FaultPlan>>`; the hook is
//! zero-cost when empty (`None` short-circuits before any counter is
//! touched), so the happy path stays byte- and cycle-identical with the
//! machinery compiled in.
//!
//! Counters are per-plan, not global: two schedulers (or two tests)
//! running concurrently with different plans never interfere.

use crate::error::{SplendidError, Stage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The pass fails outright (fatal for the attempted tier; the
    /// ladder degrades the function, the module-level site fails the
    /// prepare step).
    Fail,
    /// The pass stalls for `millis`, then reports a transient timeout —
    /// the serve layer's bounded backoff will retry these.
    Timeout {
        /// Injected stall before the error is reported.
        millis: u64,
    },
    /// The pass reports exhausting its allocation budget. Recoverable
    /// but *not* transient: retrying the same input hits the same cap.
    AllocCap,
}

impl FaultKind {
    /// Stable label used in fault-campaign reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Fail => "fail",
            FaultKind::Timeout { .. } => "timeout",
            FaultKind::AllocCap => "alloc-cap",
        }
    }
}

/// One scheduled fault: fire `kind` at the `nth` invocation of `site`
/// (1-based) within the owning plan's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The instrumented pass to sabotage.
    pub site: Stage,
    /// Which invocation of the site trips the fault (1 = the first).
    pub nth: u64,
    /// Failure mode.
    pub kind: FaultKind,
}

/// A deterministic set of scheduled faults plus per-site invocation
/// counters. Cheap to share (`Arc`), safe to consult from many workers.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    counters: [AtomicU64; crate::error::STAGES.len()],
    fired: AtomicU64,
}

fn site_index(site: Stage) -> usize {
    crate::error::STAGES
        .iter()
        .position(|s| *s == site)
        .unwrap_or(0)
}

impl FaultPlan {
    /// A plan firing the given specs.
    pub fn new(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            specs,
            ..FaultPlan::default()
        }
    }

    /// A plan with a single scheduled fault.
    pub fn single(site: Stage, nth: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan::new(vec![FaultSpec { site, nth, kind }])
    }

    /// The instrumented sites consult this at every invocation. Returns
    /// `Err` exactly when a scheduled fault's invocation count is hit.
    pub fn check(&self, site: Stage) -> Result<(), SplendidError> {
        let n = self.counters[site_index(site)].fetch_add(1, Ordering::Relaxed) + 1;
        for spec in &self.specs {
            if spec.site != site || spec.nth != n {
                continue;
            }
            self.fired.fetch_add(1, Ordering::Relaxed);
            let detail = format!(
                "injected fault ({}) at {} invocation {n}",
                spec.kind.label(),
                site
            );
            return Err(match spec.kind {
                FaultKind::Fail => SplendidError::recoverable(site, detail),
                FaultKind::Timeout { millis } => {
                    std::thread::sleep(Duration::from_millis(millis));
                    SplendidError::transient(site, detail)
                }
                FaultKind::AllocCap => SplendidError::recoverable(site, detail),
            });
        }
        Ok(())
    }

    /// How many scheduled faults actually fired.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// How many times `site` has been consulted.
    pub fn invocations(&self, site: Stage) -> u64 {
        self.counters[site_index(site)].load(Ordering::Relaxed)
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }
}

/// Tiny deterministic generator (xorshift64*) for seeded fault
/// campaigns; good enough for coverage, fully reproducible.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Seeded generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform-ish value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Severity;

    #[test]
    fn fires_exactly_at_the_nth_invocation() {
        let plan = FaultPlan::single(Stage::Structure, 3, FaultKind::Fail);
        assert!(plan.check(Stage::Structure).is_ok());
        assert!(plan.check(Stage::Structure).is_ok());
        let err = plan.check(Stage::Structure).unwrap_err();
        assert_eq!(err.stage, Stage::Structure);
        assert_eq!(err.severity, Severity::Recoverable);
        assert!(plan.check(Stage::Structure).is_ok(), "fires only once");
        assert_eq!(plan.fired(), 1);
        assert_eq!(plan.invocations(Stage::Structure), 4);
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::single(Stage::Naming, 1, FaultKind::AllocCap);
        assert!(plan.check(Stage::Structure).is_ok());
        assert!(plan.check(Stage::Detransform).is_ok());
        let err = plan.check(Stage::Naming).unwrap_err();
        assert!(err.is_recoverable());
        assert!(!err.transient);
    }

    #[test]
    fn timeout_faults_are_transient() {
        let plan = FaultPlan::single(Stage::Detransform, 1, FaultKind::Timeout { millis: 0 });
        let err = plan.check(Stage::Detransform).unwrap_err();
        assert!(err.transient);
        assert!(err.is_recoverable());
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
