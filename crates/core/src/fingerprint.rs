//! Stable content fingerprints for functions and modules.
//!
//! The serve function cache, and the daemon's incremental dirty tracking,
//! both need to decide "is this function's IR the same bytes as before?"
//! across processes and releases. `DefaultHasher` is explicitly unstable,
//! so identity is defined here once: FNV-1a 64 over the canonical printed
//! form of the function (the printer is deterministic), producing digests
//! that are reproducible, loggable, and comparable over the wire.

use crate::pipeline::PreparedModule;
use splendid_ir::{printer::function_str, FuncId, Module};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte string (the same constants as the serve layer's
/// incremental hasher; kept in core so fingerprints don't depend on the
/// service being linked in).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content fingerprint of one function: FNV-1a 64 of its canonical
/// printed IR. Two functions fingerprint equal iff the printer emits
/// identical bytes for them.
pub fn function_fingerprint(module: &Module, fid: FuncId) -> u64 {
    fnv64(function_str(module, module.func(fid)).as_bytes())
}

/// `(name, fingerprint)` for every function of a module, in arena order.
///
/// This is the daemon's dirty-tracking input: an UPDATE diffs the new
/// module's fingerprint list against the previous one and re-decompiles
/// only functions whose digest changed (or whose name is new).
pub fn module_fingerprints(module: &Module) -> Vec<(String, u64)> {
    module
        .func_ids()
        .map(|fid| {
            (
                module.func(fid).name.clone(),
                function_fingerprint(module, fid),
            )
        })
        .collect()
}

/// Fold more bytes into a running FNV-1a 64 state.
fn mix(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of everything outside a function's own body that its
/// decompilation can read: global declarations and the debug-variable
/// arena (naming resolves `dbg !N` through it).
pub fn module_context_fingerprint(m: &Module) -> u64 {
    let mut h = FNV_OFFSET;
    for g in &m.globals {
        h = mix(h, g.name.as_bytes());
        h = mix(h, format!("{}|{:?};", g.mem, g.init).as_bytes());
    }
    for dv in &m.di_vars {
        h = mix(h, dv.name.as_bytes());
        h = mix(h, b"@");
        h = mix(h, dv.scope.as_bytes());
        h = mix(h, b";");
    }
    h
}

/// Memoized content digests of a [`PreparedModule`], computed once and
/// shared by every consumer (serve cache-key construction, daemon dirty
/// tracking).
#[derive(Debug, Clone)]
pub struct ModuleDigests {
    /// [`module_context_fingerprint`] of the prepared module.
    pub context: u64,
    /// `(name, fingerprint)` per function, in arena order.
    pub functions: Vec<(String, u64)>,
}

impl PreparedModule {
    /// The memoized digests, computing them on first use.
    pub fn digests(&self) -> &ModuleDigests {
        self.digests.get_or_init(|| ModuleDigests {
            context: module_context_fingerprint(&self.module),
            functions: module_fingerprints(&self.module),
        })
    }

    /// Memoized [`module_context_fingerprint`].
    pub fn context_fingerprint(&self) -> u64 {
        self.digests().context
    }

    /// Memoized per-function fingerprint (arena order matches
    /// [`Module::func_ids`](splendid_ir::Module::func_ids)).
    pub fn function_fingerprint(&self, fid: FuncId) -> u64 {
        self.digests().functions[fid.0 as usize].1
    }

    /// Stable per-function content fingerprints of the *prepared* module
    /// (post-detransform): the identity the serve function cache keys on.
    pub fn function_fingerprints(&self) -> Vec<(String, u64)> {
        self.digests().functions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprints_detect_single_function_edits() {
        use splendid_cfront::{lower_program, parse_program, LowerOptions};
        let src = "double A[8];\nvoid f() { int i; for (i = 0; i < 8; i++) { A[i] = 1.0; } }\n\
                   void g() { int i; for (i = 0; i < 8; i++) { A[i] = 2.0; } }";
        let edited = src.replace("2.0", "3.0");
        let lower = |s: &str| {
            let prog = parse_program(s).unwrap();
            lower_program(&prog, "fp", &LowerOptions::default()).unwrap()
        };
        let before = module_fingerprints(&lower(src));
        let after = module_fingerprints(&lower(&edited));
        assert_eq!(before.len(), 2);
        assert_eq!(before[0], after[0], "untouched function keeps its digest");
        assert_eq!(before[1].0, after[1].0);
        assert_ne!(before[1].1, after[1].1, "edited function must re-digest");
    }
}
