//! Stable content fingerprints for functions and modules.
//!
//! The serve function cache, and the daemon's incremental dirty tracking,
//! both need to decide "is this function's IR the same bytes as before?"
//! across processes and releases. `DefaultHasher` is explicitly unstable,
//! so identity is defined here once: FNV-1a 64 over the canonical printed
//! form of the function (the printer is deterministic), producing digests
//! that are reproducible, loggable, and comparable over the wire.
//!
//! Two granularities are provided:
//!
//! * **Semantic** fingerprints ([`function_fingerprint`],
//!   [`module_fingerprints`]) hash the canonical *printed* IR of a parsed
//!   module. They are insensitive to whitespace and comment differences in
//!   the input text and are what the serve cache keys on.
//! * **Span** fingerprints ([`span_fingerprints_into`]) hash the raw
//!   *source bytes* of each `func` definition located by
//!   [`splendid_ir::scan_spans_into`] — no tokenizing, no parsing, no
//!   per-function allocation once buffers are warm. They are the daemon's
//!   UPDATE fast path: an edit re-hashes only the module text (microseconds)
//!   and re-parses nothing until a DECOMPILE actually needs the IR.

use crate::pipeline::PreparedModule;
use splendid_ir::{printer::function_str, FuncId, Module, ModuleSpans};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte string (the same constants as the serve layer's
/// incremental hasher; kept in core so fingerprints don't depend on the
/// service being linked in).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content fingerprint of one function: FNV-1a 64 of its canonical
/// printed IR. Two functions fingerprint equal iff the printer emits
/// identical bytes for them.
pub fn function_fingerprint(module: &Module, fid: FuncId) -> u64 {
    fnv64(function_str(module, module.func(fid)).as_bytes())
}

/// `(name, fingerprint)` for every function of a module, in arena order.
///
/// This is the daemon's dirty-tracking input: an UPDATE diffs the new
/// module's fingerprint list against the previous one and re-decompiles
/// only functions whose digest changed (or whose name is new).
pub fn module_fingerprints(module: &Module) -> Vec<(String, u64)> {
    module
        .func_ids()
        .map(|fid| {
            (
                module.name_of(module.func(fid).name).to_string(),
                function_fingerprint(module, fid),
            )
        })
        .collect()
}

/// Fold more bytes into a running FNV-1a 64 state.
fn mix(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of everything outside a function's own body that its
/// decompilation can read: global declarations and the debug-variable
/// arena (naming resolves `dbg !N` through it).
pub fn module_context_fingerprint(m: &Module) -> u64 {
    let mut h = FNV_OFFSET;
    for g in &m.globals {
        h = mix(h, m.name_of(g.name).as_bytes());
        h = mix(h, format!("{}|{:?};", g.mem, g.init).as_bytes());
    }
    for dv in &m.di_vars {
        h = mix(h, m.name_of(dv.name).as_bytes());
        h = mix(h, b"@");
        h = mix(h, m.name_of(dv.scope).as_bytes());
        h = mix(h, b";");
    }
    h
}

/// Span fingerprint of one `func` definition in module *text*: the hash of
/// its name bytes and the hash of its full definition bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanFingerprint {
    /// FNV-1a 64 of the function name bytes (without the `@`).
    pub name_hash: u64,
    /// FNV-1a 64 of the whole `func ... { ... }` definition bytes.
    pub body_hash: u64,
}

/// Per-function span fingerprints of a module text plus the hash of the
/// preamble (module header, globals, debug variables).
///
/// Buffers are reusable across scans via [`SpanFingerprints::clear`]; in
/// steady state [`span_fingerprints_into`] performs zero heap allocations.
#[derive(Clone, Debug, Default)]
pub struct SpanFingerprints {
    /// Hash over all preamble bytes (everything outside `func` bodies).
    pub preamble: u64,
    /// Function span fingerprints in file order.
    pub funcs: Vec<SpanFingerprint>,
}

impl SpanFingerprints {
    /// Reset without releasing capacity.
    pub fn clear(&mut self) {
        self.preamble = 0;
        self.funcs.clear();
    }

    /// Position of the function whose name hashes to `name_hash`.
    pub fn position_of(&self, name_hash: u64) -> Option<usize> {
        self.funcs.iter().position(|f| f.name_hash == name_hash)
    }
}

/// Hash every function span of `text` into `out`, reusing `spans` as the
/// scan scratch buffer. This is the incremental UPDATE primitive: cost is
/// one linear pass over the text, with no parsing and no allocation once
/// `spans`/`out` have warmed to the module's function count.
pub fn span_fingerprints_into(text: &str, spans: &mut ModuleSpans, out: &mut SpanFingerprints) {
    splendid_ir::scan_spans_into(text, spans);
    out.clear();
    let mut pre = FNV_OFFSET;
    for &(a, b) in &spans.preamble {
        pre = mix(pre, &text.as_bytes()[a..b]);
    }
    out.preamble = pre;
    for f in &spans.funcs {
        out.funcs.push(SpanFingerprint {
            name_hash: fnv64(f.name_str(text).as_bytes()),
            body_hash: fnv64(f.body_str(text).as_bytes()),
        });
    }
}

/// Convenience wrapper allocating fresh buffers.
pub fn span_fingerprints(text: &str) -> SpanFingerprints {
    let mut spans = ModuleSpans::default();
    let mut out = SpanFingerprints::default();
    span_fingerprints_into(text, &mut spans, &mut out);
    out
}

/// Memoized content digests of a [`PreparedModule`], computed once and
/// shared by every consumer (serve cache-key construction, daemon dirty
/// tracking).
#[derive(Debug, Clone)]
pub struct ModuleDigests {
    /// [`module_context_fingerprint`] of the prepared module.
    pub context: u64,
    /// `(name, fingerprint)` per function, in arena order.
    pub functions: Vec<(String, u64)>,
}

impl PreparedModule {
    /// The memoized digests, computing them on first use.
    pub fn digests(&self) -> &ModuleDigests {
        self.digests.get_or_init(|| ModuleDigests {
            context: module_context_fingerprint(&self.module),
            functions: module_fingerprints(&self.module),
        })
    }

    /// Memoized [`module_context_fingerprint`].
    pub fn context_fingerprint(&self) -> u64 {
        self.digests().context
    }

    /// Memoized per-function fingerprint (arena order matches
    /// [`Module::func_ids`](splendid_ir::Module::func_ids)).
    pub fn function_fingerprint(&self, fid: FuncId) -> u64 {
        self.digests().functions[fid.0 as usize].1
    }

    /// Stable per-function content fingerprints of the *prepared* module
    /// (post-detransform): the identity the serve function cache keys on.
    pub fn function_fingerprints(&self) -> Vec<(String, u64)> {
        self.digests().functions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprints_detect_single_function_edits() {
        use splendid_cfront::{lower_program, parse_program, LowerOptions};
        let src = "double A[8];\nvoid f() { int i; for (i = 0; i < 8; i++) { A[i] = 1.0; } }\n\
                   void g() { int i; for (i = 0; i < 8; i++) { A[i] = 2.0; } }";
        let edited = src.replace("2.0", "3.0");
        let lower = |s: &str| {
            let prog = parse_program(s).unwrap();
            lower_program(&prog, "fp", &LowerOptions::default()).unwrap()
        };
        let before = module_fingerprints(&lower(src));
        let after = module_fingerprints(&lower(&edited));
        assert_eq!(before.len(), 2);
        assert_eq!(before[0], after[0], "untouched function keeps its digest");
        assert_eq!(before[1].0, after[1].0);
        assert_ne!(before[1].1, after[1].1, "edited function must re-digest");
    }

    #[test]
    fn span_fingerprints_localize_edits() {
        let src = "module \"m\"\nglobal @A : [8 x f64] = zero\nfunc @f() -> void {\nbb0 entry:\n  ret void\n}\nfunc @g() -> void {\nbb0 entry:\n  ret void\n}\n";
        let a = span_fingerprints(src);
        let b = span_fingerprints(src);
        assert_eq!(a.funcs, b.funcs, "fingerprints are deterministic");
        assert_eq!(a.preamble, b.preamble);

        // A real edit in @g touches only @g's span hash.
        let edited = src.replace(
            "func @g() -> void {\nbb0 entry:\n  ret void",
            "func @g() -> void {\nbb0 entry:\n  unreachable",
        );
        let c = span_fingerprints(&edited);
        assert_eq!(a.funcs.len(), 2);
        assert_eq!(c.funcs.len(), 2);
        assert_eq!(a.funcs[0], c.funcs[0], "edit to @g must not touch @f");
        assert_eq!(a.funcs[1].name_hash, c.funcs[1].name_hash);
        assert_ne!(a.funcs[1].body_hash, c.funcs[1].body_hash);
        assert_eq!(a.preamble, c.preamble);

        // A preamble edit touches only the preamble hash.
        let edited = src.replace("[8 x f64]", "[9 x f64]");
        let d = span_fingerprints(&edited);
        assert_eq!(a.funcs, d.funcs);
        assert_ne!(a.preamble, d.preamble);
    }

    #[test]
    fn span_fingerprint_buffers_are_reusable() {
        let mut spans = ModuleSpans::default();
        let mut out = SpanFingerprints::default();
        let one = "func @f() -> void {\nbb0 entry:\n  ret void\n}\n";
        span_fingerprints_into(one, &mut spans, &mut out);
        let first = out.funcs.clone();
        span_fingerprints_into("module \"empty\"\n", &mut spans, &mut out);
        assert!(out.funcs.is_empty());
        span_fingerprints_into(one, &mut spans, &mut out);
        assert_eq!(out.funcs, first, "reuse must be stateless");
    }
}
