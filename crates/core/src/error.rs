//! Workspace-wide error taxonomy for the decompilation pipeline.
//!
//! Every recoverable or fatal condition that used to surface as a
//! `panic!`/`unwrap` in the hot paths is funneled through
//! [`SplendidError`]: a stage tag (which pass failed), an optional
//! function attribution, a severity, and a `transient` marker that the
//! serve layer uses to decide whether bounded-backoff retry is worth
//! attempting. Errors are values, not control flow — the pipeline's
//! fidelity ladder (see `pipeline::decompile_function`) consumes
//! recoverable errors by degrading the affected function one tier.

use std::fmt;

/// The pipeline pass a [`SplendidError`] is attributed to. Doubles as
/// the set of named fault-injection sites (see `fault::FaultPlan`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Module-wide parallel-region detransformation + outline inlining.
    Detransform,
    /// Per-function variable-name restoration.
    Naming,
    /// Per-function control-flow structuring.
    Structure,
    /// Per-function OpenMP pragma re-synthesis.
    Pragma,
    /// C emission (including the literal-tier emitter).
    Emit,
}

/// All stages, in pipeline order. Used to enumerate fault sites.
pub const STAGES: [Stage; 5] = [
    Stage::Detransform,
    Stage::Naming,
    Stage::Structure,
    Stage::Pragma,
    Stage::Emit,
];

impl Stage {
    /// Stable lowercase label; also the fault-site name on the CLI.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Detransform => "detransform",
            Stage::Naming => "naming",
            Stage::Structure => "structure",
            Stage::Pragma => "pragma",
            Stage::Emit => "emit",
        }
    }

    /// Parse a fault-site name as printed by [`Stage::label`].
    pub fn from_label(s: &str) -> Option<Stage> {
        STAGES.into_iter().find(|st| st.label() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How bad a failure is for the *caller*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The pipeline can degrade to a lower fidelity tier and still
    /// produce semantics-preserving output.
    Recoverable,
    /// No tier can absorb this (e.g. the literal emitter itself failed
    /// on malformed IR); the function or module must be reported failed.
    Fatal,
}

/// Structured pipeline error: stage + optional function + severity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplendidError {
    /// Which pass failed.
    pub stage: Stage,
    /// The function being decompiled, when the failure is per-function.
    pub function: Option<String>,
    /// Whether a lower fidelity tier can absorb the failure.
    pub severity: Severity,
    /// Transient failures (timeouts, resource caps) are worth a bounded
    /// backoff-and-retry at the serve layer before degrading.
    pub transient: bool,
    /// Human-readable detail.
    pub message: String,
}

impl SplendidError {
    /// A recoverable, non-transient failure in `stage`.
    pub fn recoverable(stage: Stage, message: impl Into<String>) -> SplendidError {
        SplendidError {
            stage,
            function: None,
            severity: Severity::Recoverable,
            transient: false,
            message: message.into(),
        }
    }

    /// A fatal failure in `stage`.
    pub fn fatal(stage: Stage, message: impl Into<String>) -> SplendidError {
        SplendidError {
            stage,
            function: None,
            severity: Severity::Fatal,
            transient: false,
            message: message.into(),
        }
    }

    /// A transient (retry-worthy) recoverable failure in `stage`.
    pub fn transient(stage: Stage, message: impl Into<String>) -> SplendidError {
        SplendidError {
            stage,
            function: None,
            severity: Severity::Recoverable,
            transient: true,
            message: message.into(),
        }
    }

    /// Attribute the error to a function.
    pub fn in_function(mut self, name: impl Into<String>) -> SplendidError {
        self.function = Some(name.into());
        self
    }

    /// Whether a lower tier can absorb this failure.
    pub fn is_recoverable(&self) -> bool {
        self.severity == Severity::Recoverable
    }
}

impl fmt::Display for SplendidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.stage)?;
        if let Some(func) = &self.function {
            write!(f, " in {func}")?;
        }
        write!(f, "] {}", self.message)?;
        if self.transient {
            write!(f, " (transient)")?;
        }
        Ok(())
    }
}

impl std::error::Error for SplendidError {}

// Older call sites (difftest oracle, examples) treat pipeline errors as
// plain strings; keep `?` working across that boundary.
impl From<SplendidError> for String {
    fn from(e: SplendidError) -> String {
        e.to_string()
    }
}

/// Render a `catch_unwind` payload as a message. Shared by the pipeline
/// ladder and the serve scheduler.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_function_and_transient_marker() {
        let e = SplendidError::transient(Stage::Structure, "boom").in_function("kernel");
        assert_eq!(e.to_string(), "[structure in kernel] boom (transient)");
        let e = SplendidError::fatal(Stage::Detransform, "bad region");
        assert_eq!(e.to_string(), "[detransform] bad region");
        assert!(!e.is_recoverable());
    }

    #[test]
    fn stage_labels_round_trip() {
        for st in STAGES {
            assert_eq!(Stage::from_label(st.label()), Some(st));
        }
        assert_eq!(Stage::from_label("bogus"), None);
    }
}
