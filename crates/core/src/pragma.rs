//! Pragma Generator (paper §4.1.3): map recovered runtime facts to OpenMP
//! directives, choosing the most performing correct translation and
//! minimizing clauses.

use crate::detransform::MarkerInfo;
use splendid_cfront::ast::{OmpClauses, Schedule};

/// Build the `omp for` clauses for a recovered static-scheduled loop.
///
/// * `schedule(static)` (or `schedule(static, chunk)` when the runtime was
///   given an explicit chunk);
/// * `nowait` whenever the region contained no barrier after the loop —
///   the *most performing* of the two correct translations (§4.1.3);
/// * no `private` clause: the induction variable is declared inside the
///   loop header, which makes it private by default (clause minimization).
pub fn clauses_for(info: MarkerInfo) -> OmpClauses {
    OmpClauses {
        schedule: Some(if info.chunk > 0 {
            Schedule::StaticChunk(info.chunk as u32)
        } else {
            Schedule::Static
        }),
        nowait: info.nowait,
        ..OmpClauses::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_static_nowait() {
        let c = clauses_for(MarkerInfo {
            chunk: 0,
            nowait: true,
        });
        assert_eq!(c.schedule, Some(Schedule::Static));
        assert!(c.nowait);
        assert!(c.private.is_empty());
    }

    #[test]
    fn chunked_schedule() {
        let c = clauses_for(MarkerInfo {
            chunk: 8,
            nowait: false,
        });
        assert_eq!(c.schedule, Some(Schedule::StaticChunk(8)));
        assert!(!c.nowait);
    }
}
