//! Natural variable reconstruction (paper §4.3, Algorithms 1 and 2).
//!
//! * **Variable Proposer / Metadata Interpreter**: `dbg` intrinsics map SSA
//!   values to source variables; a phi with an unmapped result adopts the
//!   proposal of its incoming values (phi-web combination).
//! * **Algorithm 1 — Most Recent Variable Definitions**: a forward dataflow
//!   computing, at each instruction, which definition of each source
//!   variable is current (`OUT = GEN ∪ (IN − KILL)`, joined by union).
//! * **Algorithm 2 — Conflicting Definition Removal**: at every use of a
//!   value proposed to be variable `v`, if a *different* definition of `v`
//!   is the most recent one, that other mapping is removed — two SSA values
//!   with overlapping lifetimes can never share a source name. Removal
//!   changes the dataflow, so the pair of algorithms iterates to a
//!   fixpoint.
//!
//! Values that end up without a valid source mapping are named from their
//! register hint ("somewhat meaningful, e.g. `indvar`"), uniquified.

use splendid_ir::{FuncId, InstId, InstKind, Module, Value, VarId};
use std::collections::{HashMap, HashSet};

/// Where a generated variable name came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NameOrigin {
    /// Restored from debug metadata (possibly transferred through region
    /// inlining).
    SourceVariable,
    /// Fallback: virtual-register hint or synthesized name.
    Register,
}

/// Result of variable naming for one function.
#[derive(Debug, Clone, Default)]
pub struct Naming {
    /// Name assigned to each instruction that produces a nameable value.
    pub names: HashMap<InstId, (String, NameOrigin)>,
}

impl Naming {
    /// Name for an instruction result, if one was assigned.
    pub fn name_of(&self, id: InstId) -> Option<&str> {
        self.names.get(&id).map(|(n, _)| n.as_str())
    }

    /// Distinct variable names with their origin (for the Figure-8 metric).
    pub fn distinct_vars(&self) -> Vec<(String, NameOrigin)> {
        let mut seen = HashMap::new();
        for (name, origin) in self.names.values() {
            // SourceVariable wins if any instruction restored it.
            let e = seen.entry(name.clone()).or_insert(*origin);
            if *origin == NameOrigin::SourceVariable {
                *e = NameOrigin::SourceVariable;
            }
        }
        let mut v: Vec<_> = seen.into_iter().collect();
        v.sort();
        v
    }
}

type Defs = HashMap<VarId, HashSet<Value>>;

fn join(into: &mut Defs, from: &Defs) -> bool {
    let mut changed = false;
    for (var, defs) in from {
        let e = into.entry(*var).or_default();
        for d in defs {
            changed |= e.insert(*d);
        }
    }
    changed
}

/// Run the Variable Proposer + Algorithms 1 and 2 for `fid`.
pub fn assign_names(module: &Module, fid: FuncId) -> Naming {
    assign_names_with(module, fid, true)
}

/// Variant with metadata disabled: every value gets a register name (used
/// by the paper's SPLENDID-v1/Portable evaluation variants, which turn
/// variable renaming off).
pub fn assign_register_names(module: &Module, fid: FuncId) -> Naming {
    assign_names_with(module, fid, false)
}

fn assign_names_with(module: &Module, fid: FuncId, use_metadata: bool) -> Naming {
    let f = module.func(fid);
    let owners = f.inst_blocks();

    // --- Variable Proposer + Metadata Interpreter ----------------------
    // proposals: value -> source variable.
    let mut proposals: HashMap<Value, VarId> = HashMap::new();
    if use_metadata {
        for (idx, inst) in f.insts.iter().enumerate() {
            if owners[idx].is_none() {
                continue;
            }
            if let InstKind::DbgValue { val, var } = inst.kind {
                if matches!(val, Value::Inst(_)) {
                    proposals.entry(val).or_insert(var);
                }
            }
        }
    }
    // Phi-web combination: a phi adopts (and shares) the proposal of its
    // incomings; incomings without proposals adopt the phi's.
    let mut changed = true;
    while changed {
        changed = false;
        for (idx, inst) in f.insts.iter().enumerate() {
            if owners[idx].is_none() {
                continue;
            }
            let phi_val = Value::Inst(InstId(idx as u32));
            if let InstKind::Phi { incomings } = &inst.kind {
                let mut var = proposals.get(&phi_val).copied();
                if var.is_none() {
                    var = incomings
                        .iter()
                        .find_map(|(_, v)| proposals.get(v).copied());
                }
                let Some(var) = var else { continue };
                for v in std::iter::once(phi_val).chain(incomings.iter().map(|(_, v)| *v)) {
                    if matches!(v, Value::Inst(_)) && !proposals.contains_key(&v) {
                        proposals.insert(v, var);
                        changed = true;
                    }
                }
            }
        }
    }

    // --- Algorithms 1 + 2, iterated to a fixpoint -----------------------
    loop {
        // Algorithm 1: block-level IN/OUT of most-recent definitions.
        let nblocks = f.blocks.len();
        let mut block_in: Vec<Defs> = vec![Defs::new(); nblocks];
        let mut block_out: Vec<Defs> = vec![Defs::new(); nblocks];
        let rpo = f.reverse_post_order();
        let preds = f.predecessors();
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in &rpo {
                let mut inn = Defs::new();
                for &p in &preds[bb.index()] {
                    join(&mut inn, &block_out[p.index()]);
                }
                let mut out = inn.clone();
                apply_block_transfer(f, bb, &proposals, &mut out);
                if inn != block_in[bb.index()] || out != block_out[bb.index()] {
                    block_in[bb.index()] = inn;
                    block_out[bb.index()] = out;
                    changed = true;
                }
            }
        }

        // Algorithm 2: validate every use; collect conflicting mappings.
        let mut to_remove: HashSet<Value> = HashSet::new();
        for &bb in &rpo {
            let mut cur = block_in[bb.index()].clone();
            for &i in &f.block(bb).insts {
                let inst = f.inst(i);
                if !matches!(inst.kind, InstKind::DbgValue { .. }) {
                    inst.kind.for_each_operand(|op| {
                        if let Some(var) = proposals.get(&op) {
                            if let Some(defs) = cur.get(var) {
                                // The used definition must be the (only)
                                // most recent one; any other live
                                // definition of the same variable
                                // conflicts and loses its mapping.
                                for d in defs {
                                    if d != &op && proposals.get(d) == Some(var) {
                                        to_remove.insert(*d);
                                    }
                                }
                            }
                        }
                    });
                }
                transfer_inst(f, i, &proposals, &mut cur);
            }
        }
        if to_remove.is_empty() {
            break;
        }
        for v in to_remove {
            proposals.remove(&v);
        }
    }

    // --- Variable Generator ---------------------------------------------
    let mut naming = Naming::default();
    let mut used_names: HashSet<String> = HashSet::new();
    // Source-variable names are shared by design.
    for (v, var) in &proposals {
        if let Value::Inst(id) = v {
            let name = module.name_of(module.di_vars[var.index()].name).to_string();
            used_names.insert(name.clone());
            naming.names.insert(*id, (name, NameOrigin::SourceVariable));
        }
    }
    // Everything else falls back to its register hint, uniquified.
    for (idx, inst) in f.insts.iter().enumerate() {
        let id = InstId(idx as u32);
        if owners[idx].is_none() || !inst.has_result() || naming.names.contains_key(&id) {
            continue;
        }
        let base = inst
            .name
            .map(|n| module.name_of(n).to_string())
            .unwrap_or_else(|| format!("v{}", id.0))
            .replace('.', "_");
        let mut candidate = base.clone();
        let mut k = 1;
        while used_names.contains(&candidate) {
            candidate = format!("{base}{k}");
            k += 1;
        }
        used_names.insert(candidate.clone());
        naming.names.insert(id, (candidate, NameOrigin::Register));
    }
    naming
}

fn apply_block_transfer(
    f: &splendid_ir::Function,
    bb: splendid_ir::BlockId,
    proposals: &HashMap<Value, VarId>,
    state: &mut Defs,
) {
    for &i in &f.block(bb).insts {
        transfer_inst(f, i, proposals, state);
    }
}

/// GEN/KILL of one instruction for Algorithm 1: a `dbg` intrinsic whose
/// value still carries a valid proposal (re)defines its variable, and so
/// does the *definition* of any proposed value itself (phi-web members
/// inherit their def event from the web even when optimization dropped
/// their own `dbg` intrinsic).
fn transfer_inst(
    f: &splendid_ir::Function,
    i: InstId,
    proposals: &HashMap<Value, VarId>,
    state: &mut Defs,
) {
    let inst = f.inst(i);
    if let InstKind::DbgValue { val, var } = inst.kind {
        let proposed = proposals.get(&val) == Some(&var) || val.is_const();
        if proposed {
            let e = state.entry(var).or_default();
            e.clear(); // KILL the old definitions
            e.insert(val); // GEN the new one
        }
    } else if inst.has_result() {
        if let Some(var) = proposals.get(&Value::Inst(i)) {
            let e = state.entry(*var).or_default();
            e.clear();
            e.insert(Value::Inst(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_ir::builder::FuncBuilder;
    use splendid_ir::{BinOp, Type};

    /// The Figure-5 shape: %1 and %2 both dbg-mapped to `var`, with %1
    /// used after %2's definition — a conflict; %3 mapped later with no
    /// overlap.
    fn figure5() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let var = m.intern_di_var("var", "f");
        let mut b = FuncBuilder::new(&mut m, "f", &[("x", Type::I64)], Type::Void);
        // A: %1 = ...
        let v1 = b.bin(BinOp::Add, Type::I64, b.arg(0), Value::i64(1), "");
        b.dbg_value(v1, var); // B
                              // C: func(%1) — modeled as a pure use.
        let _use1 = b.bin(BinOp::Mul, Type::I64, v1, Value::i64(2), "");
        // D: %2 = ...
        let v2 = b.bin(BinOp::Add, Type::I64, b.arg(0), Value::i64(2), "");
        b.dbg_value(v2, var); // E
                              // F: func(%1) — %1 used after %2's def: conflict.
        let _use2 = b.bin(BinOp::Mul, Type::I64, v1, Value::i64(3), "");
        // G: %3 = ...; no more uses of %1/%2 afterwards.
        let v3 = b.bin(BinOp::Add, Type::I64, b.arg(0), Value::i64(3), "");
        b.dbg_value(v3, var); // H
        let _use3 = b.bin(BinOp::Mul, Type::I64, v3, Value::i64(4), "");
        b.ret(None);
        let fid = b.finish();
        (m, fid)
    }

    #[test]
    fn figure5_conflict_resolution() {
        let (m, fid) = figure5();
        let naming = assign_names(&m, fid);
        let f = m.func(fid);
        // Identify v1, v2, v3 by their constant operands.
        let find = |c: i64| -> InstId {
            f.insts
                .iter()
                .enumerate()
                .find(|(_, i)| match &i.kind {
                    InstKind::Bin {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => rhs.as_int() == Some(c),
                    _ => false,
                })
                .map(|(idx, _)| InstId(idx as u32))
                .unwrap()
        };
        let (v1, v2, v3) = (find(1), find(2), find(3));
        // %1 keeps the name (used at F where it must still be `var`).
        assert_eq!(naming.name_of(v1), Some("var"));
        // %2's mapping was removed: it gets a register name.
        assert_eq!(naming.names[&v2].1, NameOrigin::Register);
        assert_ne!(naming.name_of(v2), Some("var"));
        // %3 maps to var again (no conflict).
        assert_eq!(naming.name_of(v3), Some("var"));
    }

    #[test]
    fn no_conflict_all_restored() {
        let mut m = Module::new("m");
        let var = m.intern_di_var("x", "f");
        let mut b = FuncBuilder::new(&mut m, "f", &[("a", Type::I64)], Type::I64);
        let v1 = b.bin(BinOp::Add, Type::I64, b.arg(0), Value::i64(1), "");
        b.dbg_value(v1, var);
        let v2 = b.bin(BinOp::Mul, Type::I64, v1, Value::i64(2), "");
        b.dbg_value(v2, var);
        b.ret(Some(v2));
        let fid = b.finish();
        let naming = assign_names(&m, fid);
        // v1's last use (in v2's def) precedes v2's dbg event, so both may
        // be `x`.
        assert_eq!(naming.name_of(v1.as_inst().unwrap()), Some("x"));
        assert_eq!(naming.name_of(v2.as_inst().unwrap()), Some("x"));
    }

    #[test]
    fn phi_web_shares_name() {
        let mut m = Module::new("m");
        let var = m.intern_di_var("i", "f");
        let mut b = FuncBuilder::new(&mut m, "f", &[("n", Type::I64)], Type::Void);
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let entry = b.current_block();
        b.br(body);
        b.switch_to(body);
        let iv = b.phi(Type::I64, vec![(entry, Value::i64(0))], "");
        b.dbg_value(iv, var);
        let next = b.bin(BinOp::Add, Type::I64, iv, Value::i64(1), "");
        if let Value::Inst(p) = iv {
            if let InstKind::Phi { incomings } = &mut b.func_mut().inst_mut(p).kind {
                incomings.push((body, next));
            }
        }
        let c = b.icmp(splendid_ir::IPred::Slt, next, b.arg(0), "");
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        let fid = b.finish();
        let naming = assign_names(&m, fid);
        assert_eq!(naming.name_of(iv.as_inst().unwrap()), Some("i"));
        // next adopted the phi's variable through web combination.
        assert_eq!(naming.name_of(next.as_inst().unwrap()), Some("i"));
    }

    #[test]
    fn unmapped_values_get_unique_register_names() {
        let mut m = Module::new("m");
        let mut b = FuncBuilder::new(&mut m, "f", &[("a", Type::I64)], Type::I64);
        let v1 = b.bin(BinOp::Add, Type::I64, b.arg(0), Value::i64(1), "tmp");
        let v2 = b.bin(BinOp::Add, Type::I64, b.arg(0), Value::i64(2), "tmp");
        let v3 = b.bin(BinOp::Add, Type::I64, v1, v2, "");
        b.ret(Some(v3));
        let fid = b.finish();
        let naming = assign_names(&m, fid);
        let names: HashSet<&str> = [v1, v2, v3]
            .iter()
            .map(|v| naming.name_of(v.as_inst().unwrap()).unwrap())
            .collect();
        assert_eq!(names.len(), 3, "names must be unique: {names:?}");
        assert!(names.contains("tmp"));
        assert!(names.contains("tmp1"));
    }

    #[test]
    fn distinct_vars_metric() {
        let (m, fid) = figure5();
        let naming = assign_names(&m, fid);
        let vars = naming.distinct_vars();
        let restored = vars
            .iter()
            .filter(|(_, o)| *o == NameOrigin::SourceVariable)
            .count();
        assert_eq!(restored, 1, "only `var` is source-restored: {vars:?}");
        assert!(vars.len() > 1, "register-named values exist too");
    }
}
