//! Natural control-flow generation: IR → C statements.
//!
//! Includes the **Loop-Rotate Detransformer** (paper §4.2): a rotated
//! (bottom-tested, guarded) counted loop is rebuilt as a canonical `for`
//! loop, and the guard check is removed when it is provably equivalent to
//! the `for` loop's initial exit test. Expression reconstruction folds
//! single-use pure values into compound expressions (so `B[i] = (A[i-1] +
//! A[i] + A[i+1]) / 3.0;` comes back as one line), while multi-use values
//! and loop-carried variables materialize as named C variables using the
//! names chosen by [`crate::naming`].

use crate::detransform::{decode_marker, MarkerInfo};
use crate::devectorize::{decode_simd_marker, SimdMarkerInfo};
use crate::error::{SplendidError, Stage};
use crate::naming::{NameOrigin, Naming};
use splendid_analysis::domtree::{ipostdoms, DomTree};
use splendid_analysis::indvar::{recognize_counted_loop, CountedLoop};
use splendid_analysis::loops::{LoopId, LoopInfo};
use splendid_cfront::ast::*;
use splendid_ir::{
    BinOp, BlockId, Callee, CastOp, FPred, Function, IPred, InstId, InstKind, Module, Type, Value,
};
use std::collections::{HashMap, HashSet};

/// Options controlling the structurer (wired to the paper's variants and
/// the ablation benches).
#[derive(Debug, Clone)]
pub struct StructureOptions {
    /// De-transform rotated loops into `for` loops.
    pub detransform_rotation: bool,
    /// Remove guard checks proven equivalent to the initial exit test.
    pub guard_elimination: bool,
    /// Emit OpenMP pragmas from region markers.
    pub emit_pragmas: bool,
    /// Fold single-use pure values into compound expressions.
    pub inline_expressions: bool,
    /// Hoist every local declaration to the top of the function body,
    /// leaving plain assignments at the original sites. SSA dominance
    /// does not imply C block scoping, so a value first materialized
    /// inside braces can be live past them; hoisting makes the emitted C
    /// immune to that entire hazard class. The degraded fidelity tiers
    /// set this for safety; the natural tier keeps scoped declarations
    /// for readability.
    pub hoist_decls: bool,
}

impl Default for StructureOptions {
    fn default() -> StructureOptions {
        StructureOptions {
            detransform_rotation: true,
            guard_elimination: true,
            emit_pragmas: true,
            inline_expressions: true,
            hoist_decls: false,
        }
    }
}

/// Result of structuring one function.
#[derive(Debug, Clone)]
pub struct StructuredFunc {
    /// The reconstructed C function.
    pub cfunc: CFunc,
    /// Distinct local variables with their name origin (Figure-8 metric).
    pub variables: Vec<(String, NameOrigin)>,
    /// Number of `goto` statements the structurer had to emit.
    pub gotos: usize,
}

/// C scalar type used when declaring a value of IR type `t`.
fn ctype_of(t: Type) -> CType {
    match t {
        Type::Void => CType::Void,
        Type::F64 => CType::Double,
        Type::Ptr => CType::Ptr(Box::new(CType::Double)),
        Type::I1 => CType::Int,
        _ => CType::Long,
    }
}

struct Structurer<'a> {
    module: &'a Module,
    f: &'a Function,
    naming: &'a Naming,
    opts: &'a StructureOptions,
    li: LoopInfo,
    ipdom: Vec<Option<BlockId>>,
    owners: Vec<Option<BlockId>>,
    /// Position of each instruction within its block.
    pos_in_block: HashMap<InstId, usize>,
    use_counts: HashMap<InstId, usize>,
    counted: HashMap<BlockId, (LoopId, CountedLoop)>,
    /// Instructions absorbed into structured constructs (for-headers,
    /// conditions) — never emitted as statements.
    absorbed: HashSet<InstId>,
    /// Instructions materialized as named variables.
    materialized: HashSet<InstId>,
    declared: HashSet<String>,
    /// Declarations deferred to the function top under
    /// `StructureOptions::hoist_decls` (name, type), in first-seen order.
    hoisted: Vec<(String, CType)>,
    var_origins: HashMap<String, NameOrigin>,
    visited: HashSet<BlockId>,
    need_label: HashSet<BlockId>,
    gotos: usize,
    pending_pragma: Option<MarkerInfo>,
    pending_simd: Option<SimdMarkerInfo>,
    /// First structural defect encountered (IR shape the expression
    /// reconstructor has no rule for). Recorded instead of panicking;
    /// turns the whole structuring attempt into a recoverable error so
    /// the fidelity ladder can degrade the function.
    diag: std::cell::RefCell<Option<String>>,
}

/// Structure one function into a C function definition.
pub fn structure_function(
    module: &Module,
    f: &Function,
    naming: &Naming,
    opts: &StructureOptions,
) -> Result<StructuredFunc, SplendidError> {
    let dt = DomTree::compute(f);
    let li = LoopInfo::compute(f, &dt);
    let ipdom = ipostdoms(f);
    let owners = f.inst_blocks();

    let mut pos_in_block = HashMap::new();
    for bb in f.block_ids() {
        for (k, &i) in f.block(bb).insts.iter().enumerate() {
            pos_in_block.insert(i, k);
        }
    }
    let mut use_counts: HashMap<InstId, usize> = HashMap::new();
    for (idx, inst) in f.insts.iter().enumerate() {
        if owners[idx].is_none() || matches!(inst.kind, InstKind::DbgValue { .. }) {
            continue;
        }
        inst.kind.for_each_operand(|v| {
            if let Value::Inst(d) = v {
                *use_counts.entry(d).or_insert(0) += 1;
            }
        });
    }
    // Counted loops indexed by header.
    let mut counted = HashMap::new();
    for lid in li.ids() {
        if let Some(cl) = recognize_counted_loop(f, &li, lid) {
            counted.insert(li.get(lid).header, (lid, cl));
        }
    }

    let mut s = Structurer {
        module,
        f,
        naming,
        opts,
        li,
        ipdom,
        owners,
        pos_in_block,
        use_counts,
        counted,
        absorbed: HashSet::new(),
        materialized: HashSet::new(),
        declared: HashSet::new(),
        hoisted: Vec::new(),
        var_origins: HashMap::new(),
        visited: HashSet::new(),
        need_label: HashSet::new(),
        gotos: 0,
        pending_pragma: None,
        pending_simd: None,
        diag: std::cell::RefCell::new(None),
    };

    let mut body = Vec::new();
    s.emit_region(f.entry, None, None, &mut body);
    // Insert labels where gotos landed.
    if !s.need_label.is_empty() {
        // Labels are emitted inline during the walk; nothing to patch here
        // because emit_region pushes Label stmts on first visit of labeled
        // blocks. (Gotos to already-emitted blocks would need relocation;
        // we only ever goto forward in practice.)
    }

    if !s.hoisted.is_empty() {
        let decls: Vec<CStmt> = std::mem::take(&mut s.hoisted)
            .into_iter()
            .map(|(name, ty)| CStmt::Decl {
                name,
                ty,
                init: None,
            })
            .collect();
        body.splice(0..0, decls);
    }

    let params: Vec<(String, CType)> = f
        .params
        .iter()
        .map(|p| (module.name_of(p.name).to_string(), ctype_of(p.ty)))
        .collect();
    let mut variables: Vec<(String, NameOrigin)> =
        s.var_origins.iter().map(|(n, o)| (n.clone(), *o)).collect();
    variables.sort();
    if let Some(msg) = s.diag.borrow().clone() {
        return Err(
            SplendidError::recoverable(Stage::Structure, msg).in_function(module.name_of(f.name))
        );
    }
    Ok(StructuredFunc {
        cfunc: CFunc {
            name: module.name_of(f.name).to_string(),
            ret: ctype_of(f.ret_ty),
            params,
            body,
        },
        variables,
        gotos: s.gotos,
    })
}

/// Context while emitting inside a loop body.
#[derive(Clone, Copy, PartialEq, Eq)]
struct LoopCtx {
    header: BlockId,
    latch_test: Option<InstId>,
    exit: Option<BlockId>,
}

impl<'a> Structurer<'a> {
    // ---- expressions -----------------------------------------------------

    /// Record a structural defect (first one wins) instead of panicking.
    fn note(&self, msg: impl Into<String>) {
        let mut d = self.diag.borrow_mut();
        if d.is_none() {
            *d = Some(msg.into());
        }
    }

    fn name_of(&self, id: InstId) -> String {
        self.naming
            .name_of(id)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("v{}", id.0))
    }

    /// Whether `id` can be folded into its (single) use.
    fn inlinable(&self, id: InstId) -> bool {
        if !self.opts.inline_expressions {
            // Geps must still fold (there is no address-of in the AST).
            return matches!(self.f.inst(id).kind, InstKind::Gep { .. });
        }
        if self.absorbed.contains(&id) {
            return true; // absorbed IV increments/conditions fold freely
        }
        let inst = self.f.inst(id);
        match inst.kind {
            InstKind::Gep { .. } => return true, // always folded into Index
            InstKind::Phi { .. }
            | InstKind::Call { .. }
            | InstKind::Alloca { .. }
            | InstKind::Store { .. } => return false,
            _ => {}
        }
        if self.use_counts.get(&id).copied().unwrap_or(0) != 1 {
            return false;
        }
        // The single use must be later in the same block, with no pinning
        // instruction (store or call) in between when the value is a load.
        let def_bb = match self.owners[id.index()] {
            Some(b) => b,
            None => return false,
        };
        let def_pos = self.pos_in_block[&id];
        let mut user: Option<InstId> = None;
        for (uidx, uinst) in self.f.insts.iter().enumerate() {
            if self.owners[uidx].is_none() || matches!(uinst.kind, InstKind::DbgValue { .. }) {
                continue;
            }
            let mut uses_it = false;
            uinst.kind.for_each_operand(|v| {
                if v == Value::Inst(id) {
                    uses_it = true;
                }
            });
            if uses_it {
                user = Some(InstId(uidx as u32));
                break;
            }
        }
        let Some(user) = user else { return false };
        if self.owners[user.index()] != Some(def_bb) {
            return false;
        }
        let use_pos = self.pos_in_block[&user];
        if use_pos <= def_pos {
            return false;
        }
        if matches!(inst.kind, InstKind::Load { .. }) {
            for k in def_pos + 1..use_pos {
                let between = self.f.block(def_bb).insts[k];
                if matches!(
                    self.f.inst(between).kind,
                    InstKind::Store { .. } | InstKind::Call { .. }
                ) {
                    return false;
                }
            }
        }
        true
    }

    fn expr_of_value(&self, v: Value) -> CExpr {
        match v {
            Value::ConstInt { val, .. } => CExpr::Int(val),
            Value::ConstF64(bits) => CExpr::Float(f64::from_bits(bits)),
            Value::Arg(a) => CExpr::ident(self.module.name_of(self.f.params[a as usize].name)),
            Value::Global(g) => {
                CExpr::ident(self.module.name_of(self.module.globals[g.index()].name))
            }
            Value::Function(fid) => {
                CExpr::ident(self.module.name_of(self.module.functions[fid.index()].name))
            }
            Value::Undef(_) => CExpr::Int(0),
            Value::Inst(id) => {
                if self.materialized.contains(&id) || !self.inlinable(id) {
                    CExpr::ident(self.name_of(id))
                } else {
                    self.expr_of_inst(id)
                }
            }
        }
    }

    fn expr_of_inst(&self, id: InstId) -> CExpr {
        let inst = self.f.inst(id);
        match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => {
                let cop = match op {
                    BinOp::Add | BinOp::FAdd => CBinOp::Add,
                    BinOp::Sub | BinOp::FSub => CBinOp::Sub,
                    BinOp::Mul | BinOp::FMul => CBinOp::Mul,
                    BinOp::SDiv | BinOp::FDiv => CBinOp::Div,
                    BinOp::SRem => CBinOp::Rem,
                    BinOp::And => {
                        if inst.ty == Type::I1 {
                            CBinOp::LAnd
                        } else {
                            CBinOp::BAnd
                        }
                    }
                    BinOp::Or => {
                        if inst.ty == Type::I1 {
                            CBinOp::LOr
                        } else {
                            CBinOp::BOr
                        }
                    }
                    BinOp::Xor => CBinOp::BXor,
                    BinOp::Shl => CBinOp::Shl,
                    BinOp::AShr => CBinOp::Shr,
                };
                CExpr::bin(cop, self.expr_of_value(*lhs), self.expr_of_value(*rhs))
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let cop = match pred {
                    IPred::Eq => CBinOp::Eq,
                    IPred::Ne => CBinOp::Ne,
                    IPred::Slt => CBinOp::Lt,
                    IPred::Sle => CBinOp::Le,
                    IPred::Sgt => CBinOp::Gt,
                    IPred::Sge => CBinOp::Ge,
                };
                CExpr::bin(cop, self.expr_of_value(*lhs), self.expr_of_value(*rhs))
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                let cop = match pred {
                    FPred::Oeq => CBinOp::Eq,
                    FPred::One => CBinOp::Ne,
                    FPred::Olt => CBinOp::Lt,
                    FPred::Ole => CBinOp::Le,
                    FPred::Ogt => CBinOp::Gt,
                    FPred::Oge => CBinOp::Ge,
                };
                CExpr::bin(cop, self.expr_of_value(*lhs), self.expr_of_value(*rhs))
            }
            InstKind::Load { ptr } => self.lvalue_of(*ptr),
            InstKind::Gep { .. } => self.lvalue_of(Value::Inst(id)),
            InstKind::Cast { op, val } => {
                let e = self.expr_of_value(*val);
                match op {
                    CastOp::SiToFp => CExpr::Cast {
                        ty: CType::Double,
                        expr: Box::new(e),
                    },
                    CastOp::FpToSi => CExpr::Cast {
                        ty: CType::Long,
                        expr: Box::new(e),
                    },
                    // Width-only conversions are invisible in the 64-bit C
                    // subset.
                    _ => e,
                }
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => {
                // The subset has no ternary; encode as arithmetic select is
                // ugly — use a call-like helper only if ever needed. Our
                // pipelines do not produce selects that reach emission, but
                // fall back to a conditional expression via (cond ? a : b)
                // printed as a call.
                CExpr::Call {
                    name: "__select".into(),
                    args: vec![
                        self.expr_of_value(*cond),
                        self.expr_of_value(*then_val),
                        self.expr_of_value(*else_val),
                    ],
                }
            }
            InstKind::Call { callee, args } => {
                let name = match callee {
                    Callee::Func(fid) => self
                        .module
                        .name_of(self.module.functions[fid.index()].name)
                        .to_string(),
                    Callee::External(n) => self.module.name_of(*n).to_string(),
                };
                CExpr::Call {
                    name,
                    args: args.iter().map(|a| self.expr_of_value(*a)).collect(),
                }
            }
            InstKind::Phi { .. } => CExpr::ident(self.name_of(id)),
            other => {
                self.note(format!("no expression for {other:?}"));
                CExpr::Int(0)
            }
        }
    }

    /// Build the C lvalue an address computes: `A[i][j]`, `p[i]`, `x`.
    fn lvalue_of(&self, addr: Value) -> CExpr {
        match addr {
            Value::Global(g) => {
                let glob = &self.module.globals[g.index()];
                CExpr::ident(self.module.name_of(glob.name))
            }
            Value::Arg(a) => CExpr::Index {
                base: Box::new(CExpr::ident(
                    self.module.name_of(self.f.params[a as usize].name),
                )),
                indices: vec![CExpr::Int(0)],
            },
            Value::Inst(id) => match &self.f.inst(id).kind {
                InstKind::Gep {
                    elem,
                    base,
                    indices,
                } => {
                    let base_expr = match base {
                        Value::Global(g) => {
                            CExpr::ident(self.module.name_of(self.module.globals[g.index()].name))
                        }
                        Value::Arg(a) => {
                            CExpr::ident(self.module.name_of(self.f.params[*a as usize].name))
                        }
                        Value::Inst(b) => {
                            if matches!(self.f.inst(*b).kind, InstKind::Alloca { .. }) {
                                CExpr::ident(self.name_of(*b))
                            } else {
                                self.expr_of_value(*base)
                            }
                        }
                        other => self.expr_of_value(*other),
                    };
                    // For array geps the first index is the object index
                    // (almost always 0): drop it when zero.
                    let mut idx: Vec<CExpr> =
                        indices.iter().map(|i| self.expr_of_value(*i)).collect();
                    if matches!(elem, splendid_ir::MemType::Array { .. })
                        && idx.first() == Some(&CExpr::Int(0))
                    {
                        idx.remove(0);
                    }
                    if idx.is_empty() {
                        idx.push(CExpr::Int(0));
                    }
                    CExpr::Index {
                        base: Box::new(base_expr),
                        indices: idx,
                    }
                }
                _ => CExpr::Index {
                    base: Box::new(self.expr_of_value(addr)),
                    indices: vec![CExpr::Int(0)],
                },
            },
            other => CExpr::Index {
                base: Box::new(self.expr_of_value(other)),
                indices: vec![CExpr::Int(0)],
            },
        }
    }

    // ---- statements -------------------------------------------------------

    /// Emit a declaration for a name seen for the first time — in place,
    /// or (under `hoist_decls`) as a function-top declaration plus an
    /// in-place assignment when there is an initializer.
    fn declare(&mut self, name: String, ty: CType, init: Option<CExpr>, out: &mut Vec<CStmt>) {
        if self.opts.hoist_decls {
            self.hoisted.push((name.clone(), ty));
            if let Some(e) = init {
                out.push(CStmt::Expr(CExpr::Assign {
                    lhs: Box::new(CExpr::ident(name)),
                    op: None,
                    rhs: Box::new(e),
                }));
            }
        } else {
            out.push(CStmt::Decl { name, ty, init });
        }
    }

    /// Emit a materialized definition: `ty name = expr;` or `name = expr;`.
    fn materialize(&mut self, id: InstId, out: &mut Vec<CStmt>) {
        let name = self.name_of(id);
        let expr = self.expr_of_inst(id);
        self.materialized.insert(id);
        let origin = self
            .naming
            .names
            .get(&id)
            .map(|(_, o)| *o)
            .unwrap_or(NameOrigin::Register);
        self.var_origins.entry(name.clone()).or_insert(origin);
        if self.declared.insert(name.clone()) {
            let ty = ctype_of(self.f.inst(id).ty);
            self.declare(name, ty, Some(expr), out);
        } else {
            out.push(CStmt::Expr(CExpr::Assign {
                lhs: Box::new(CExpr::Ident(name)),
                op: None,
                rhs: Box::new(expr),
            }));
        }
    }

    /// Emit the non-terminator statements of one block.
    fn emit_block_stmts(&mut self, bb: BlockId, out: &mut Vec<CStmt>) {
        for &i in &self.f.block(bb).insts.clone() {
            let inst = self.f.inst(i);
            if inst.kind.is_terminator()
                || self.absorbed.contains(&i)
                || matches!(
                    inst.kind,
                    InstKind::DbgValue { .. } | InstKind::Nop | InstKind::Phi { .. }
                )
            {
                continue;
            }
            if let Some(info) = decode_marker(&self.module.symbols, &inst.kind) {
                if self.opts.emit_pragmas {
                    self.pending_pragma = Some(info);
                }
                continue;
            }
            if let Some(info) = decode_simd_marker(&self.module.symbols, &inst.kind) {
                // Markers never print; without pragma emission the
                // devectorized loop stays a plain `for`.
                if self.opts.emit_pragmas {
                    self.pending_simd = Some(info);
                }
                continue;
            }
            match &inst.kind {
                InstKind::Store { val, ptr } => {
                    let lhs = self.lvalue_of(*ptr);
                    let rhs = self.expr_of_value(*val);
                    out.push(CStmt::Expr(CExpr::Assign {
                        lhs: Box::new(lhs),
                        op: None,
                        rhs: Box::new(rhs),
                    }));
                }
                InstKind::Call { .. } => {
                    if inst.has_result() && self.use_counts.get(&i).copied().unwrap_or(0) > 0 {
                        self.materialize(i, out);
                    } else {
                        let e = self.expr_of_inst(i);
                        out.push(CStmt::Expr(e));
                    }
                }
                InstKind::Alloca { mem } => {
                    // Local (array) storage: declare it.
                    let name = self.name_of(i);
                    self.materialized.insert(i);
                    self.var_origins
                        .entry(name.clone())
                        .or_insert(NameOrigin::Register);
                    let ty = match mem {
                        splendid_ir::MemType::Array { elem, dims } => CType::Array(
                            Box::new(ctype_of(*elem)),
                            dims.iter().map(|d| *d as usize).collect(),
                        ),
                        splendid_ir::MemType::Scalar(t) => ctype_of(*t),
                    };
                    if self.declared.insert(name.clone()) {
                        self.declare(name, ty, None, out);
                    }
                }
                _ => {
                    // Pure value: emit only when not folded into a use.
                    if !self.inlinable(i) && self.use_counts.get(&i).copied().unwrap_or(0) > 0 {
                        self.materialize(i, out);
                    }
                }
            }
        }
    }

    /// Emit statements starting at `bb` until reaching `stop` (exclusive),
    /// within optional loop context `ctx`.
    fn emit_region(
        &mut self,
        mut bb: BlockId,
        stop: Option<BlockId>,
        ctx: Option<LoopCtx>,
        out: &mut Vec<CStmt>,
    ) {
        loop {
            if Some(bb) == stop {
                return;
            }
            if let Some(c) = ctx {
                if bb == c.header && self.visited.contains(&bb) {
                    return; // back edge: implicit continue
                }
            }
            if self.visited.contains(&bb) {
                // Irreducible or unstructured flow: fall back to goto.
                self.gotos += 1;
                self.need_label.insert(bb);
                out.push(CStmt::Goto(format!("bb{}", bb.0)));
                return;
            }

            // A loop header that is not the current context's header starts
            // a nested (or first) loop.
            if let Some(lid) = self.li.loop_of(bb) {
                let is_new_loop =
                    self.li.get(lid).header == bb && ctx.map(|c| c.header != bb).unwrap_or(true);
                if is_new_loop {
                    let next = self.emit_loop(lid, out);
                    match next {
                        Some(n) => {
                            bb = n;
                            continue;
                        }
                        None => return,
                    }
                }
            }

            self.visited.insert(bb);
            if self.need_label.contains(&bb) {
                out.push(CStmt::Label(format!("bb{}", bb.0)));
            }
            self.emit_block_stmts(bb, out);

            let Some(term) = self.f.terminator(bb) else {
                return;
            };
            match self.f.inst(term).kind.clone() {
                InstKind::Br { target } => {
                    bb = target;
                }
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    // The enclosing loop construct's own test (absorbed by
                    // the loop emitter): for bottom-tested loops this is
                    // the back edge (end of body); for top-tested loops
                    // continue into the in-loop side and ignore the exit.
                    if let Some(c) = ctx {
                        if cond.as_inst() == c.latch_test {
                            let continue_to = [then_bb, else_bb]
                                .into_iter()
                                .find(|t| Some(*t) != c.exit && *t != c.header);
                            match continue_to {
                                Some(t) => {
                                    bb = t;
                                    continue;
                                }
                                None => return,
                            }
                        }
                    }
                    // Guarded rotated loop? (Loop-Rotate Detransformer.)
                    if let Some(next) = self.try_emit_guarded_loop(bb, cond, then_bb, else_bb, out)
                    {
                        match next {
                            Some(n) => {
                                bb = n;
                                continue;
                            }
                            None => return,
                        }
                    }
                    // Plain if/else via the immediate post-dominator.
                    let join = self.ipdom[bb.index()];
                    let cond_expr = self.expr_of_value(cond);
                    let mut then_body = Vec::new();
                    let mut else_body = Vec::new();
                    if Some(then_bb) != join {
                        self.emit_region(then_bb, join, ctx, &mut then_body);
                    }
                    if Some(else_bb) != join {
                        self.emit_region(else_bb, join, ctx, &mut else_body);
                    }
                    out.push(CStmt::If {
                        cond: cond_expr,
                        then_body,
                        else_body,
                    });
                    match join {
                        Some(j) => bb = j,
                        None => return,
                    }
                }
                InstKind::Ret { val } => {
                    out.push(CStmt::Return(val.map(|v| self.expr_of_value(v))));
                    return;
                }
                InstKind::Unreachable => return,
                _ => return,
            }
        }
    }

    /// If `bb`'s conditional branch is the guard of a rotated counted loop,
    /// emit the de-rotated `for` (or guarded do-while when proof fails /
    /// disabled) and return `Some(continuation)`.
    fn try_emit_guarded_loop(
        &mut self,
        _bb: BlockId,
        cond: Value,
        then_bb: BlockId,
        else_bb: BlockId,
        out: &mut Vec<CStmt>,
    ) -> Option<Option<BlockId>> {
        if !self.opts.detransform_rotation {
            return None;
        }
        // One side enters a bottom-tested counted loop header; the other is
        // its exit.
        let (header, exit, loop_on_true) = if let Some((lid, _)) = self.counted.get(&then_bb) {
            let l = self.li.get(*lid);
            if l.header == then_bb && l.exits.contains(&else_bb) {
                (then_bb, else_bb, true)
            } else {
                return None;
            }
        } else if let Some((lid, _)) = self.counted.get(&else_bb) {
            let l = self.li.get(*lid);
            if l.header == else_bb && l.exits.contains(&then_bb) {
                (else_bb, then_bb, false)
            } else {
                return None;
            }
        } else {
            return None;
        };
        let (lid, cl) = self.counted[&header].clone();
        if !cl.bottom_tested {
            return None;
        }
        // The guard must compare the loop's initial value against its
        // bound with the matching predicate.
        let guard_ok = self.guard_equivalent(cond, &cl, loop_on_true);
        if guard_ok && self.opts.guard_elimination {
            if let Value::Inst(g) = cond {
                self.absorbed.insert(g);
            }
            self.emit_counted_loop(lid, &cl, out);
            Some(Some(exit))
        } else {
            // Keep the guard as an `if` around the do-while form.
            let cond_expr = self.expr_of_value(cond);
            let mut inner = Vec::new();
            self.emit_do_while(lid, &cl, &mut inner);
            let (then_body, else_body) = if loop_on_true {
                (inner, Vec::new())
            } else {
                (Vec::new(), inner)
            };
            out.push(CStmt::If {
                cond: cond_expr,
                then_body,
                else_body,
            });
            Some(Some(exit))
        }
    }

    /// Prove the guard equivalent to the initial exit condition of the
    /// transformed `for` loop: structurally, the guard must compare
    /// `cl.init` with `cl.bound` such that entering the loop corresponds to
    /// `init <continue-pred> bound`.
    fn guard_equivalent(&self, cond: Value, cl: &CountedLoop, loop_on_true: bool) -> bool {
        let Some(g) = cond.as_inst() else {
            return false;
        };
        let InstKind::ICmp { pred, lhs, rhs } = self.f.inst(g).kind else {
            return false;
        };
        // Normalize so init is on the left.
        let (pred, a, b) = if lhs == cl.init {
            (pred, lhs, rhs)
        } else if rhs == cl.init {
            (pred.swapped(), rhs, lhs)
        } else {
            return false;
        };
        if a != cl.init || b != cl.bound {
            return false;
        }
        // Entering the loop must mean `init cont_pred bound`.
        let cont_pred = if cl.continue_on_true {
            cl.pred
        } else {
            cl.pred.negated()
        };
        let enter_pred = if loop_on_true { pred } else { pred.negated() };
        enter_pred == cont_pred
    }

    /// Emit the canonical `for` reconstruction of a counted loop, wrapping
    /// it in pending OpenMP pragmas if any.
    fn emit_counted_loop(&mut self, lid: LoopId, cl: &CountedLoop, out: &mut Vec<CStmt>) {
        // The pragma pending at loop entry belongs to THIS loop; take it
        // now so inner loops cannot steal it during body emission.
        let pragma = self.pending_pragma.take();
        let simd = self.pending_simd.take();
        let l = self.li.get(lid).clone();
        // Absorb the loop plumbing.
        self.absorbed.insert(cl.iv);
        self.absorbed.insert(cl.next);
        self.absorbed.insert(cl.cmp);

        let iv_name = self.name_of(cl.iv);
        let iv_origin = self
            .naming
            .names
            .get(&cl.iv)
            .map(|(_, o)| *o)
            .unwrap_or(NameOrigin::Register);
        self.var_origins.entry(iv_name.clone()).or_insert(iv_origin);
        self.materialized.insert(cl.iv);
        // `iv.next` reads inside the body print as `iv + step`.
        self.materialized.remove(&cl.next);

        // Loop-carried (non-IV) phis materialize as variables around the
        // loop.
        let mut pre_stmts = Vec::new();
        let mut latch_assigns: Vec<(InstId, Value)> = Vec::new();
        for &i in &self.f.block(l.header).insts.clone() {
            if let InstKind::Phi { incomings } = self.f.inst(i).kind.clone() {
                if i == cl.iv {
                    continue;
                }
                let name = self.name_of(i);
                let origin = self
                    .naming
                    .names
                    .get(&i)
                    .map(|(_, o)| *o)
                    .unwrap_or(NameOrigin::Register);
                self.var_origins.entry(name.clone()).or_insert(origin);
                self.materialized.insert(i);
                for (from, v) in incomings {
                    if l.contains(from) {
                        latch_assigns.push((i, v));
                    } else {
                        let init = self.expr_of_value(v);
                        if self.declared.insert(name.clone()) {
                            let ty = ctype_of(self.f.inst(i).ty);
                            self.declare(name.clone(), ty, Some(init), &mut pre_stmts);
                        } else {
                            pre_stmts.push(CStmt::Expr(CExpr::Assign {
                                lhs: Box::new(CExpr::ident(name.clone())),
                                op: None,
                                rhs: Box::new(init),
                            }));
                        }
                    }
                }
            } else {
                break;
            }
        }
        out.extend(pre_stmts);

        // The for-header pieces.
        let cont_pred = if cl.continue_on_true {
            cl.pred
        } else {
            cl.pred.negated()
        };
        let cmp_op = match cont_pred {
            IPred::Slt => CBinOp::Lt,
            IPred::Sle => CBinOp::Le,
            IPred::Sgt => CBinOp::Gt,
            IPred::Sge => CBinOp::Ge,
            IPred::Ne => CBinOp::Ne,
            IPred::Eq => CBinOp::Eq,
        };
        let init_expr = self.expr_of_value(cl.init);
        let bound_expr = self.expr_of_value(cl.bound);
        let declare_in_header = !self.declared.contains(&iv_name);
        let init_stmt: CStmt = if declare_in_header && !self.opts.hoist_decls {
            CStmt::Decl {
                name: iv_name.clone(),
                ty: CType::UInt64,
                init: Some(init_expr),
            }
        } else {
            if declare_in_header {
                // Hoisted mode: the declaration goes to the function top;
                // the header keeps a plain assignment.
                self.declared.insert(iv_name.clone());
                self.hoisted.push((iv_name.clone(), CType::UInt64));
            }
            CStmt::Expr(CExpr::Assign {
                lhs: Box::new(CExpr::ident(iv_name.clone())),
                op: None,
                rhs: Box::new(init_expr),
            })
        };
        let cond_expr = CExpr::bin(cmp_op, CExpr::ident(iv_name.clone()), bound_expr);
        let step_expr = CExpr::Assign {
            lhs: Box::new(CExpr::ident(iv_name.clone())),
            op: None,
            rhs: Box::new(CExpr::bin(
                if cl.step >= 0 {
                    CBinOp::Add
                } else {
                    CBinOp::Sub
                },
                CExpr::ident(iv_name.clone()),
                CExpr::Int(cl.step.abs()),
            )),
        };

        // Body: a general region walk starting at the header (the walk
        // handles nested guarded loops, if/else, and the back-edge test).
        let ctx = LoopCtx {
            header: l.header,
            latch_test: Some(cl.cmp),
            exit: l.exits.first().copied(),
        };
        let mut body = Vec::new();
        self.emit_region(l.header, None, Some(ctx), &mut body);
        // Loop-carried variable updates at the end of the body.
        for (phi, v) in latch_assigns {
            let name = self.name_of(phi);
            let rhs = self.expr_of_value(v);
            // Skip the self-update when the value already materialized
            // under the same name (web-shared naming).
            if rhs == CExpr::ident(name.clone()) {
                continue;
            }
            if let Value::Inst(d) = v {
                if self.materialized.contains(&d) && self.name_of(d) == name {
                    continue;
                }
            }
            body.push(CStmt::Expr(CExpr::Assign {
                lhs: Box::new(CExpr::ident(name)),
                op: None,
                rhs: Box::new(rhs),
            }));
        }

        let for_stmt = CStmt::For {
            init: Some(Box::new(init_stmt)),
            cond: Some(cond_expr),
            step: Some(step_expr),
            body,
        };
        self.wrap_with_pragma(for_stmt, pragma, simd, out);
        // Mark all loop blocks visited.
        for b in l.blocks {
            self.visited.insert(b);
        }
    }

    /// Emit a do-while form of a counted loop (guard-elimination ablation
    /// path and non-detransformed mode).
    ///
    /// Mirrors `emit_counted_loop`: the IV phi, its increment, and the
    /// latch compare are absorbed; the increment becomes an explicit
    /// `iv = iv ± step` at the end of the body (after loop-carried phi
    /// updates), and the continue test is rebuilt against the updated IV.
    /// Declaring the increment inside the body — as a naive emission
    /// would — puts the `while` condition out of scope in C even though
    /// SSA dominance holds; the fault campaign caught exactly that.
    fn emit_do_while(&mut self, lid: LoopId, cl: &CountedLoop, out: &mut Vec<CStmt>) {
        let l = self.li.get(lid).clone();
        // Absorb the loop plumbing.
        self.absorbed.insert(cl.iv);
        self.absorbed.insert(cl.next);
        self.absorbed.insert(cl.cmp);

        let iv_name = self.name_of(cl.iv);
        let iv_origin = self
            .naming
            .names
            .get(&cl.iv)
            .map(|(_, o)| *o)
            .unwrap_or(NameOrigin::Register);
        self.var_origins.entry(iv_name.clone()).or_insert(iv_origin);
        self.materialized.insert(cl.iv);
        // `iv.next` reads inside the body print as `iv + step`.
        self.materialized.remove(&cl.next);

        // Loop-carried (non-IV) phis materialize as variables around the
        // loop, exactly as in the `for` reconstruction.
        let mut pre_stmts = Vec::new();
        let mut latch_assigns: Vec<(InstId, Value)> = Vec::new();
        for &i in &self.f.block(l.header).insts.clone() {
            if let InstKind::Phi { incomings } = self.f.inst(i).kind.clone() {
                if i == cl.iv {
                    continue;
                }
                let name = self.name_of(i);
                let origin = self
                    .naming
                    .names
                    .get(&i)
                    .map(|(_, o)| *o)
                    .unwrap_or(NameOrigin::Register);
                self.var_origins.entry(name.clone()).or_insert(origin);
                self.materialized.insert(i);
                for (from, v) in incomings {
                    if l.contains(from) {
                        latch_assigns.push((i, v));
                    } else {
                        let init = self.expr_of_value(v);
                        if self.declared.insert(name.clone()) {
                            let ty = ctype_of(self.f.inst(i).ty);
                            self.declare(name.clone(), ty, Some(init), &mut pre_stmts);
                        } else {
                            pre_stmts.push(CStmt::Expr(CExpr::Assign {
                                lhs: Box::new(CExpr::ident(name.clone())),
                                op: None,
                                rhs: Box::new(init),
                            }));
                        }
                    }
                }
            } else {
                break;
            }
        }
        out.extend(pre_stmts);

        // Initialize the IV before the loop.
        let init = self.expr_of_value(cl.init);
        if self.declared.insert(iv_name.clone()) {
            self.declare(iv_name.clone(), CType::UInt64, Some(init), out);
        } else {
            out.push(CStmt::Expr(CExpr::Assign {
                lhs: Box::new(CExpr::ident(iv_name.clone())),
                op: None,
                rhs: Box::new(init),
            }));
        }

        let ctx = LoopCtx {
            header: l.header,
            latch_test: Some(cl.cmp),
            exit: l.exits.first().copied(),
        };
        let mut body = Vec::new();
        self.emit_region(l.header, None, Some(ctx), &mut body);
        // Loop-carried variable updates at the end of the body (before the
        // IV step, which they may read).
        for (phi, v) in latch_assigns {
            let name = self.name_of(phi);
            let rhs = self.expr_of_value(v);
            if rhs == CExpr::ident(name.clone()) {
                continue;
            }
            if let Value::Inst(d) = v {
                if self.materialized.contains(&d) && self.name_of(d) == name {
                    continue;
                }
            }
            body.push(CStmt::Expr(CExpr::Assign {
                lhs: Box::new(CExpr::ident(name)),
                op: None,
                rhs: Box::new(rhs),
            }));
        }
        // The explicit IV step closes the body.
        body.push(CStmt::Expr(CExpr::Assign {
            lhs: Box::new(CExpr::ident(iv_name.clone())),
            op: None,
            rhs: Box::new(CExpr::bin(
                if cl.step >= 0 {
                    CBinOp::Add
                } else {
                    CBinOp::Sub
                },
                CExpr::ident(iv_name.clone()),
                CExpr::Int(cl.step.abs()),
            )),
        }));

        // Continue test against the updated IV. After the step, `iv` holds
        // what the latch compare called `next`; when the compare tested the
        // pre-increment value instead, undo the step in the test.
        let cont_pred = if cl.continue_on_true {
            cl.pred
        } else {
            cl.pred.negated()
        };
        let cmp_op = match cont_pred {
            IPred::Slt => CBinOp::Lt,
            IPred::Sle => CBinOp::Le,
            IPred::Sgt => CBinOp::Gt,
            IPred::Sge => CBinOp::Ge,
            IPred::Ne => CBinOp::Ne,
            IPred::Eq => CBinOp::Eq,
        };
        let tested = if cl.cmp_uses_next {
            CExpr::ident(iv_name.clone())
        } else {
            CExpr::bin(
                if cl.step >= 0 {
                    CBinOp::Sub
                } else {
                    CBinOp::Add
                },
                CExpr::ident(iv_name.clone()),
                CExpr::Int(cl.step.abs()),
            )
        };
        let cond = CExpr::bin(cmp_op, tested, self.expr_of_value(cl.bound));
        out.push(CStmt::DoWhile { body, cond });
        for b in l.blocks {
            self.visited.insert(b);
        }
    }

    /// Emit a loop whose header is reached without a recognizable guard:
    /// counted top-tested -> `for`; otherwise do-while/while fallback.
    /// Returns the continuation block.
    fn emit_loop(&mut self, lid: LoopId, out: &mut Vec<CStmt>) -> Option<BlockId> {
        let l = self.li.get(lid).clone();
        let exit = l.exits.first().copied();
        if let Some((_, cl)) = self.counted.get(&l.header).cloned() {
            if cl.bottom_tested && self.opts.detransform_rotation {
                // Rotated loop entered without a guard: the compiler proved
                // it non-empty; the for form is equivalent and natural.
                self.emit_counted_loop(lid, &cl, out);
                return exit;
            }
            if cl.bottom_tested {
                self.emit_do_while(lid, &cl, out);
                return exit;
            }
            // Top-tested counted loop (rotation did not fire).
            self.emit_counted_loop_top_tested(lid, &cl, out);
            return exit;
        }
        // Not counted: structure as a while(1)-free goto fallback.
        self.emit_unstructured_loop(lid, out);
        exit
    }

    fn emit_counted_loop_top_tested(
        &mut self,
        lid: LoopId,
        cl: &CountedLoop,
        out: &mut Vec<CStmt>,
    ) {
        // The header holds phi + cmp + condbr; the body hangs off it. The
        // canonical-for emission already handles exactly this shape.
        self.emit_counted_loop(lid, cl, out);
    }

    fn emit_unstructured_loop(&mut self, lid: LoopId, out: &mut Vec<CStmt>) {
        // Fallback: label + blocks + conditional gotos. Correct for any
        // shape; used only when loop recognition fails.
        let l = self.li.get(lid).clone();
        self.gotos += 1;
        self.need_label.insert(l.header);
        out.push(CStmt::Label(format!("bb{}", l.header.0)));
        let header = l.header;
        self.visited.insert(header);
        self.emit_block_stmts(header, out);
        if let Some(term) = self.f.terminator(header) {
            match self.f.inst(term).kind.clone() {
                InstKind::Br { target } => {
                    out.push(CStmt::Goto(format!("bb{}", target.0)));
                    self.need_label.insert(target);
                }
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.expr_of_value(cond);
                    out.push(CStmt::If {
                        cond: c,
                        then_body: vec![CStmt::Goto(format!("bb{}", then_bb.0))],
                        else_body: vec![CStmt::Goto(format!("bb{}", else_bb.0))],
                    });
                    self.need_label.insert(then_bb);
                    self.need_label.insert(else_bb);
                    self.gotos += 2;
                }
                _ => {}
            }
        }
        for b in l.blocks {
            if !self.visited.contains(&b) {
                self.visited.insert(b);
                out.push(CStmt::Label(format!("bb{}", b.0)));
                self.emit_block_stmts(b, out);
            }
        }
    }

    /// Wrap a loop statement in `#pragma omp parallel { #pragma omp for }`
    /// or `#pragma omp simd` when a marker was pending at loop entry.
    fn wrap_with_pragma(
        &mut self,
        loop_stmt: CStmt,
        pragma: Option<MarkerInfo>,
        simd: Option<SimdMarkerInfo>,
        out: &mut Vec<CStmt>,
    ) {
        match pragma {
            Some(info) if self.opts.emit_pragmas => {
                let clauses = crate::pragma::clauses_for(info);
                out.push(CStmt::OmpParallel {
                    clauses: OmpClauses::default(),
                    body: vec![CStmt::OmpFor {
                        clauses,
                        loop_stmt: Box::new(loop_stmt),
                    }],
                });
            }
            // A work-sharing pragma and a simd marker never land on the
            // same loop (the vectorize route runs on sequential modules),
            // so the simd wrap only applies when no omp pragma did.
            _ => match simd {
                Some(info) if self.opts.emit_pragmas => {
                    let mut clauses = OmpClauses::default();
                    for &(op, phi) in &info.reductions {
                        clauses
                            .reduction
                            .push((op.clause_name().to_string(), self.name_of(phi)));
                    }
                    out.push(CStmt::OmpSimd {
                        clauses,
                        loop_stmt: Box::new(loop_stmt),
                    });
                }
                _ => out.push(loop_stmt),
            },
        }
    }
}
