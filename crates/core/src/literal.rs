//! Literal fidelity tier: statement-per-instruction C emission.
//!
//! The bottom rung of the fidelity ladder (see `pipeline`). Every
//! result-bearing instruction becomes one C assignment to a numbered
//! variable, every basic block becomes a label, and every branch becomes
//! a `goto` — no loop reconstruction, no expression folding, no name
//! recovery. The output is ugly but mechanically derived from the IR,
//! which is what makes it *always available*: when the natural and
//! structured tiers fail (or are sabotaged by a fault plan), this tier
//! still emits semantics-preserving, recompilable C.
//!
//! Phi nodes are resolved with two-phase parallel copies on each
//! incoming edge (`t = src; ...; dst = t;`), which is immune to the
//! classic swap/lost-copy hazards. Gep address computations are never
//! materialized; they fold into `A[i][j]` index expressions at each use,
//! mirroring the structurer's lvalue rules.

use crate::detransform::decode_marker;
use crate::devectorize::decode_simd_marker;
use crate::error::{SplendidError, Stage};
use splendid_cfront::ast::{CBinOp, CExpr, CFunc, CStmt, CType};
use splendid_ir::{
    BinOp, BlockId, Callee, CastOp, FPred, Function, IPred, InstId, InstKind, MemType, Module,
    ReduceOp, Type, Value,
};
use std::collections::{HashMap, HashSet};

/// Result of literal-tier emission for one function.
#[derive(Debug, Clone)]
pub struct LiteralFunc {
    /// The emitted C function.
    pub cfunc: CFunc,
    /// `goto` statements emitted (every branch is one).
    pub gotos: usize,
    /// Local variables declared.
    pub vars: usize,
}

/// C scalar type used when declaring a value of IR type `t`.
fn ctype_of(t: Type) -> CType {
    match t {
        Type::Void => CType::Void,
        Type::F64 => CType::Double,
        Type::Ptr => CType::Ptr(Box::new(CType::Double)),
        Type::I1 => CType::Int,
        _ => CType::Long,
    }
}

fn scalar_ctype(t: Type) -> CType {
    match t {
        Type::F64 => CType::Double,
        _ => CType::Long,
    }
}

/// Phi copies scheduled on one CFG edge: (dst, temp, incoming value).
type EdgeCopies = HashMap<(BlockId, BlockId), Vec<(String, String, Value)>>;

struct LiteralEmitter<'a> {
    module: &'a Module,
    f: &'a Function,
    /// Variable name per result-bearing instruction (None for folded or
    /// skipped instructions).
    names: Vec<Option<String>>,
    /// Per-edge phi copies: (pred, succ) -> [(dst, temp, incoming)].
    edge_copies: EdgeCopies,
    gotos: usize,
}

fn err(module: &Module, f: &Function, msg: impl Into<String>) -> SplendidError {
    SplendidError::fatal(Stage::Emit, msg).in_function(module.name_of(f.name))
}

/// Emit `f` at the literal tier.
pub fn emit_literal(module: &Module, f: &Function) -> Result<LiteralFunc, SplendidError> {
    let owners = f.inst_blocks();

    // Reject out-of-arena or unplaced operand references up front so the
    // body emitters below can index freely.
    for bb in f.block_ids() {
        for &i in &f.block(bb).insts {
            if i.index() >= f.insts.len() {
                return Err(err(
                    module,
                    f,
                    format!("block references out-of-arena inst %{}", i.0),
                ));
            }
            let mut bad = None;
            f.inst(i).kind.for_each_operand(|v| {
                if let Value::Inst(d) = v {
                    if d.index() >= f.insts.len() {
                        bad = Some(format!("operand references out-of-arena inst %{}", d.0));
                    } else if owners[d.index()].is_none() {
                        bad = Some(format!("operand references unplaced inst %{}", d.0));
                    }
                }
            });
            if let Some(msg) = bad {
                return Err(err(module, f, msg));
            }
            let mut bad_target = None;
            for s in f.inst(i).kind.successors() {
                if s.index() >= f.blocks.len() {
                    bad_target = Some(format!("branch targets missing block bb{}", s.0));
                }
            }
            if let Some(msg) = bad_target {
                return Err(err(module, f, msg));
            }
        }
    }

    // Pick a variable prefix that cannot collide with params, globals,
    // or function names ("v12" is someone's parameter surprisingly often
    // in register-named modules).
    let mut taken: HashSet<&str> = f.params.iter().map(|p| module.name_of(p.name)).collect();
    taken.extend(module.globals.iter().map(|g| module.name_of(g.name)));
    taken.extend(module.functions.iter().map(|g| module.name_of(g.name)));
    let collides = |prefix: &str| {
        taken.iter().any(|t| {
            t.strip_prefix(prefix)
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
    };
    let (vp, tp) = [("v", "t"), ("lv", "lt"), ("zv", "zt")]
        .into_iter()
        .find(|(v, t)| !collides(v) && !collides(t))
        .unwrap_or(("zzv", "zzt"));

    let mut names: Vec<Option<String>> = vec![None; f.insts.len()];
    let mut temps = HashMap::new();
    let mut decls: Vec<CStmt> = Vec::new();
    for bb in f.block_ids() {
        for &i in &f.block(bb).insts {
            let inst = f.inst(i);
            if decode_marker(&module.symbols, &inst.kind).is_some()
                || decode_simd_marker(&module.symbols, &inst.kind).is_some()
            {
                continue;
            }
            match &inst.kind {
                InstKind::Alloca { mem } => {
                    let name = format!("{vp}{}", i.0);
                    let ty = match mem {
                        MemType::Scalar(t) => scalar_ctype(*t),
                        MemType::Array { elem, dims } => CType::Array(
                            Box::new(scalar_ctype(*elem)),
                            dims.iter().map(|&d| d as usize).collect(),
                        ),
                    };
                    decls.push(CStmt::Decl {
                        name: name.clone(),
                        ty,
                        init: None,
                    });
                    names[i.index()] = Some(name);
                }
                InstKind::Gep { .. } => {} // folded at each use
                // Vector values become one scalar variable per lane
                // (`v7_0 .. v7_3`): the lane-explicit bottom rung for IR
                // the devectorizer did not recognize.
                _ if inst.ty.is_vector() => {
                    if matches!(inst.kind, InstKind::Phi { .. }) {
                        return Err(err(
                            module,
                            f,
                            format!("vector phi %{} has no literal form", i.0),
                        ));
                    }
                    let name = format!("{vp}{}", i.0);
                    let (lanes, lane_ty) = match inst.ty.vec_ty() {
                        Some(vt) if vt.elem.is_float() => (vt.lanes, CType::Double),
                        Some(vt) => (vt.lanes, CType::Long),
                        None => unreachable!("is_vector implies vec_ty"),
                    };
                    for l in 0..lanes {
                        decls.push(CStmt::Decl {
                            name: format!("{name}_{l}"),
                            ty: lane_ty.clone(),
                            init: None,
                        });
                    }
                    names[i.index()] = Some(name);
                }
                _ if inst.has_result() => {
                    let name = format!("{vp}{}", i.0);
                    decls.push(CStmt::Decl {
                        name: name.clone(),
                        ty: ctype_of(inst.ty),
                        init: None,
                    });
                    names[i.index()] = Some(name.clone());
                    if matches!(inst.kind, InstKind::Phi { .. }) {
                        let t = format!("{tp}{}", i.0);
                        decls.push(CStmt::Decl {
                            name: t.clone(),
                            ty: ctype_of(inst.ty),
                            init: None,
                        });
                        temps.insert(i, t);
                    }
                }
                _ => {}
            }
        }
    }
    let vars = decls.len();

    // Phi copies, grouped per incoming edge.
    let mut edge_copies: EdgeCopies = HashMap::new();
    for bb in f.block_ids() {
        for &i in &f.block(bb).insts {
            if let InstKind::Phi { incomings } = &f.inst(i).kind {
                let dst = match &names[i.index()] {
                    Some(n) => n.clone(),
                    None => return Err(err(module, f, format!("void phi %{}", i.0))),
                };
                let tmp = temps
                    .get(&i)
                    .cloned()
                    .unwrap_or_else(|| format!("{tp}{}", i.0));
                for (pred, val) in incomings {
                    edge_copies.entry((*pred, bb)).or_default().push((
                        dst.clone(),
                        tmp.clone(),
                        *val,
                    ));
                }
            }
        }
    }

    let mut em = LiteralEmitter {
        module,
        f,
        names,
        edge_copies,
        gotos: 0,
    };

    let mut body = decls;
    body.push(CStmt::Goto(format!("L{}", f.entry.0)));
    em.gotos += 1;
    for bb in f.block_ids() {
        body.push(CStmt::Label(format!("L{}", bb.0)));
        em.emit_block(bb, &mut body)?;
    }

    let cfunc = CFunc {
        name: module.name_of(f.name).to_string(),
        ret: ctype_of(f.ret_ty),
        params: f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let pname = module.name_of(p.name);
                let name = if pname.is_empty() {
                    format!("{vp}arg{i}")
                } else {
                    pname.to_string()
                };
                (name, ctype_of(p.ty))
            })
            .collect(),
        body,
    };
    Ok(LiteralFunc {
        cfunc,
        gotos: em.gotos,
        vars,
    })
}

impl<'a> LiteralEmitter<'a> {
    fn name_of(&self, id: InstId) -> Result<String, SplendidError> {
        self.names[id.index()].clone().ok_or_else(|| {
            err(
                self.module,
                self.f,
                format!("no variable for inst %{}", id.0),
            )
        })
    }

    /// The C expression for a value used as an operand. Instruction
    /// results read their variable; geps fold into index expressions.
    fn operand(&self, v: Value) -> Result<CExpr, SplendidError> {
        match v {
            Value::ConstInt { val, .. } => Ok(CExpr::Int(val)),
            Value::ConstF64(bits) => Ok(CExpr::Float(f64::from_bits(bits))),
            Value::Arg(a) => {
                let p = self.f.params.get(a as usize).ok_or_else(|| {
                    err(
                        self.module,
                        self.f,
                        format!("operand references missing arg {a}"),
                    )
                })?;
                Ok(CExpr::ident(self.module.name_of(p.name)))
            }
            Value::Global(g) => {
                let glob = self.module.globals.get(g.index()).ok_or_else(|| {
                    err(
                        self.module,
                        self.f,
                        format!("missing global @{}", g.index()),
                    )
                })?;
                Ok(CExpr::ident(self.module.name_of(glob.name)))
            }
            Value::Function(fid) => {
                let func = self.module.functions.get(fid.index()).ok_or_else(|| {
                    err(
                        self.module,
                        self.f,
                        format!("missing function #{}", fid.index()),
                    )
                })?;
                Ok(CExpr::ident(self.module.name_of(func.name)))
            }
            Value::Undef(t) => Ok(match t {
                Type::F64 => CExpr::Float(0.0),
                _ => CExpr::Int(0),
            }),
            Value::Inst(id) => match &self.f.inst(id).kind {
                // An address used as a plain value prints as the indexed
                // element it denotes, mirroring the structurer.
                InstKind::Gep { .. } => self.lvalue(v),
                _ => Ok(CExpr::ident(self.name_of(id)?)),
            },
        }
    }

    /// The C lvalue an address computes: `A[i][j]`, `p[0]`, `x`.
    fn lvalue(&self, addr: Value) -> Result<CExpr, SplendidError> {
        match addr {
            Value::Global(_) => self.operand(addr),
            Value::Arg(_) => Ok(CExpr::Index {
                base: Box::new(self.operand(addr)?),
                indices: vec![CExpr::Int(0)],
            }),
            Value::Inst(id) => match &self.f.inst(id).kind {
                InstKind::Gep {
                    elem,
                    base,
                    indices,
                } => {
                    let base_expr = match base {
                        Value::Inst(b)
                            if matches!(self.f.inst(*b).kind, InstKind::Alloca { .. }) =>
                        {
                            CExpr::ident(self.name_of(*b)?)
                        }
                        other => self.operand(*other)?,
                    };
                    let mut idx = indices
                        .iter()
                        .map(|i| self.operand(*i))
                        .collect::<Result<Vec<_>, _>>()?;
                    if matches!(elem, MemType::Array { .. }) && idx.first() == Some(&CExpr::Int(0))
                    {
                        idx.remove(0);
                    }
                    if idx.is_empty() {
                        idx.push(CExpr::Int(0));
                    }
                    Ok(CExpr::Index {
                        base: Box::new(base_expr),
                        indices: idx,
                    })
                }
                InstKind::Alloca { mem } => {
                    let name = CExpr::ident(self.name_of(id)?);
                    Ok(match mem {
                        // A scalar alloca *is* the C variable.
                        MemType::Scalar(_) => name,
                        MemType::Array { .. } => CExpr::Index {
                            base: Box::new(name),
                            indices: vec![CExpr::Int(0)],
                        },
                    })
                }
                _ => Ok(CExpr::Index {
                    base: Box::new(self.operand(addr)?),
                    indices: vec![CExpr::Int(0)],
                }),
            },
            other => Ok(CExpr::Index {
                base: Box::new(self.operand(other)?),
                indices: vec![CExpr::Int(0)],
            }),
        }
    }

    /// True when a value is vector-typed (lane-split in this tier).
    fn is_vector_value(&self, v: Value) -> bool {
        match v {
            Value::Inst(id) => self.f.inst(id).ty.is_vector(),
            Value::Undef(t) => t.is_vector(),
            _ => false,
        }
    }

    /// Lane count of a vector-typed value.
    fn lanes_of(&self, v: Value) -> Result<u8, SplendidError> {
        let lanes = match v {
            Value::Inst(id) => self.f.inst(id).ty.lanes(),
            Value::Undef(t) => t.lanes(),
            _ => None,
        };
        lanes.ok_or_else(|| {
            err(
                self.module,
                self.f,
                format!("expected a vector value, got {v:?}"),
            )
        })
    }

    /// The per-lane variable of a vector-valued instruction.
    fn lane_name(&self, id: InstId, lane: u8) -> Result<String, SplendidError> {
        Ok(format!("{}_{lane}", self.name_of(id)?))
    }

    /// The C expression for one lane of a vector operand.
    fn lane_operand(&self, v: Value, lane: u8) -> Result<CExpr, SplendidError> {
        match v {
            Value::Inst(id) if self.f.inst(id).ty.is_vector() => {
                Ok(CExpr::ident(self.lane_name(id, lane)?))
            }
            Value::Undef(t) if t.is_vector() => Ok(match t.vec_ty() {
                Some(vt) if vt.elem.is_float() => CExpr::Float(0.0),
                _ => CExpr::Int(0),
            }),
            other => Err(err(
                self.module,
                self.f,
                format!("non-vector operand {other:?} in a vector context"),
            )),
        }
    }

    /// The element lvalue `lane` steps past a wide access's address:
    /// `A[i]` -> `A[i + lane]`.
    fn lane_lvalue(&self, ptr: Value, lane: u8) -> Result<CExpr, SplendidError> {
        let base = self.lvalue(ptr)?;
        if lane == 0 {
            return Ok(base);
        }
        match base {
            CExpr::Index { base, mut indices } => {
                if let Some(last) = indices.last_mut() {
                    *last = CExpr::bin(CBinOp::Add, last.clone(), CExpr::Int(lane as i64));
                }
                Ok(CExpr::Index { base, indices })
            }
            other => Err(err(
                self.module,
                self.f,
                format!("wide access through non-indexable address {other:?}"),
            )),
        }
    }

    fn rvalue(&self, id: InstId) -> Result<CExpr, SplendidError> {
        let inst = self.f.inst(id);
        match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => {
                let cop = match op {
                    BinOp::Add | BinOp::FAdd => CBinOp::Add,
                    BinOp::Sub | BinOp::FSub => CBinOp::Sub,
                    BinOp::Mul | BinOp::FMul => CBinOp::Mul,
                    BinOp::SDiv | BinOp::FDiv => CBinOp::Div,
                    BinOp::SRem => CBinOp::Rem,
                    BinOp::And => {
                        if inst.ty == Type::I1 {
                            CBinOp::LAnd
                        } else {
                            CBinOp::BAnd
                        }
                    }
                    BinOp::Or => {
                        if inst.ty == Type::I1 {
                            CBinOp::LOr
                        } else {
                            CBinOp::BOr
                        }
                    }
                    BinOp::Xor => CBinOp::BXor,
                    BinOp::Shl => CBinOp::Shl,
                    BinOp::AShr => CBinOp::Shr,
                };
                Ok(CExpr::bin(cop, self.operand(*lhs)?, self.operand(*rhs)?))
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let cop = match pred {
                    IPred::Eq => CBinOp::Eq,
                    IPred::Ne => CBinOp::Ne,
                    IPred::Slt => CBinOp::Lt,
                    IPred::Sle => CBinOp::Le,
                    IPred::Sgt => CBinOp::Gt,
                    IPred::Sge => CBinOp::Ge,
                };
                Ok(CExpr::bin(cop, self.operand(*lhs)?, self.operand(*rhs)?))
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                let cop = match pred {
                    FPred::Oeq => CBinOp::Eq,
                    FPred::One => CBinOp::Ne,
                    FPred::Olt => CBinOp::Lt,
                    FPred::Ole => CBinOp::Le,
                    FPred::Ogt => CBinOp::Gt,
                    FPred::Oge => CBinOp::Ge,
                };
                Ok(CExpr::bin(cop, self.operand(*lhs)?, self.operand(*rhs)?))
            }
            InstKind::Load { ptr } => self.lvalue(*ptr),
            InstKind::Cast { op, val } => {
                let e = self.operand(*val)?;
                Ok(match op {
                    CastOp::SiToFp => CExpr::Cast {
                        ty: CType::Double,
                        expr: Box::new(e),
                    },
                    CastOp::FpToSi => CExpr::Cast {
                        ty: CType::Long,
                        expr: Box::new(e),
                    },
                    // Width-only conversions are invisible in the 64-bit
                    // C subset.
                    _ => e,
                })
            }
            InstKind::Call { callee, args } => {
                let name = match callee {
                    Callee::Func(fid) => {
                        let callee_fn =
                            self.module.functions.get(fid.index()).ok_or_else(|| {
                                err(
                                    self.module,
                                    self.f,
                                    format!("call to missing function #{}", fid.index()),
                                )
                            })?;
                        self.module.name_of(callee_fn.name).to_string()
                    }
                    Callee::External(n) => self.module.name_of(*n).to_string(),
                };
                Ok(CExpr::Call {
                    name,
                    args: args
                        .iter()
                        .map(|a| self.operand(*a))
                        .collect::<Result<Vec<_>, _>>()?,
                })
            }
            other => Err(err(
                self.module,
                self.f,
                format!("no literal expression for {other:?}"),
            )),
        }
    }

    fn assign(&self, name: String, rhs: CExpr) -> CStmt {
        CStmt::Expr(CExpr::Assign {
            lhs: Box::new(CExpr::Ident(name)),
            op: None,
            rhs: Box::new(rhs),
        })
    }

    /// Phi parallel copies for the edge `from -> to`, then `goto L<to>`.
    fn emit_edge(&mut self, from: BlockId, to: BlockId) -> Result<Vec<CStmt>, SplendidError> {
        let mut out = Vec::new();
        if let Some(copies) = self.edge_copies.get(&(from, to)).cloned() {
            for (_, tmp, val) in &copies {
                let rhs = self.operand(*val)?;
                out.push(self.assign(tmp.clone(), rhs));
            }
            for (dst, tmp, _) in &copies {
                out.push(self.assign(dst.clone(), CExpr::ident(tmp.clone())));
            }
        }
        out.push(CStmt::Goto(format!("L{}", to.0)));
        self.gotos += 1;
        Ok(out)
    }

    fn emit_block(&mut self, bb: BlockId, out: &mut Vec<CStmt>) -> Result<(), SplendidError> {
        for &i in &self.f.block(bb).insts.clone() {
            let inst = self.f.inst(i);
            if decode_marker(&self.module.symbols, &inst.kind).is_some()
                || decode_simd_marker(&self.module.symbols, &inst.kind).is_some()
            {
                continue;
            }
            match &inst.kind {
                InstKind::DbgValue { .. }
                | InstKind::Nop
                | InstKind::Phi { .. }
                | InstKind::Alloca { .. }
                | InstKind::Gep { .. } => {}
                InstKind::Splat { val } => {
                    let e = self.operand(*val)?;
                    for l in 0..self.lanes_of(Value::Inst(i))? {
                        out.push(self.assign(self.lane_name(i, l)?, e.clone()));
                    }
                }
                InstKind::ExtractLane { vec, lane } => {
                    let rhs = self.lane_operand(*vec, *lane)?;
                    let name = self.name_of(i)?;
                    out.push(self.assign(name, rhs));
                }
                InstKind::InsertLane { vec, val, lane } => {
                    for l in 0..self.lanes_of(Value::Inst(i))? {
                        let rhs = if l == *lane {
                            self.operand(*val)?
                        } else {
                            self.lane_operand(*vec, l)?
                        };
                        out.push(self.assign(self.lane_name(i, l)?, rhs));
                    }
                }
                InstKind::Reduce { op, acc, vec } => {
                    // Ordered left-to-right fold, matching the
                    // interpreter's (and the scalar loop's) semantics.
                    let name = self.name_of(i)?;
                    out.push(self.assign(name.clone(), self.operand(*acc)?));
                    for l in 0..self.lanes_of(*vec)? {
                        let lane = self.lane_operand(*vec, l)?;
                        match op {
                            ReduceOp::Add => out.push(self.assign(
                                name.clone(),
                                CExpr::bin(CBinOp::Add, CExpr::ident(name.clone()), lane),
                            )),
                            ReduceOp::Min | ReduceOp::Max => {
                                let cmp = if *op == ReduceOp::Min {
                                    CBinOp::Lt
                                } else {
                                    CBinOp::Gt
                                };
                                out.push(CStmt::If {
                                    cond: CExpr::bin(cmp, lane.clone(), CExpr::ident(name.clone())),
                                    then_body: vec![self.assign(name.clone(), lane)],
                                    else_body: vec![],
                                });
                            }
                        }
                    }
                }
                InstKind::Load { ptr } if inst.ty.is_vector() => {
                    for l in 0..self.lanes_of(Value::Inst(i))? {
                        let rhs = self.lane_lvalue(*ptr, l)?;
                        out.push(self.assign(self.lane_name(i, l)?, rhs));
                    }
                }
                InstKind::Store { val, ptr } if self.is_vector_value(*val) => {
                    for l in 0..self.lanes_of(*val)? {
                        let lhs = self.lane_lvalue(*ptr, l)?;
                        let rhs = self.lane_operand(*val, l)?;
                        out.push(CStmt::Expr(CExpr::Assign {
                            lhs: Box::new(lhs),
                            op: None,
                            rhs: Box::new(rhs),
                        }));
                    }
                }
                InstKind::Bin { op, lhs, rhs } if inst.ty.is_vector() => {
                    let cop = match op {
                        BinOp::Add | BinOp::FAdd => CBinOp::Add,
                        BinOp::Sub | BinOp::FSub => CBinOp::Sub,
                        BinOp::Mul | BinOp::FMul => CBinOp::Mul,
                        BinOp::SDiv | BinOp::FDiv => CBinOp::Div,
                        BinOp::SRem => CBinOp::Rem,
                        BinOp::And => CBinOp::BAnd,
                        BinOp::Or => CBinOp::BOr,
                        BinOp::Xor => CBinOp::BXor,
                        BinOp::Shl => CBinOp::Shl,
                        BinOp::AShr => CBinOp::Shr,
                    };
                    for l in 0..self.lanes_of(Value::Inst(i))? {
                        let e = CExpr::bin(
                            cop,
                            self.lane_operand(*lhs, l)?,
                            self.lane_operand(*rhs, l)?,
                        );
                        out.push(self.assign(self.lane_name(i, l)?, e));
                    }
                }
                InstKind::Cast { op, val } if inst.ty.is_vector() => {
                    for l in 0..self.lanes_of(Value::Inst(i))? {
                        let e = self.lane_operand(*val, l)?;
                        let e = match op {
                            CastOp::SiToFp => CExpr::Cast {
                                ty: CType::Double,
                                expr: Box::new(e),
                            },
                            CastOp::FpToSi => CExpr::Cast {
                                ty: CType::Long,
                                expr: Box::new(e),
                            },
                            _ => e,
                        };
                        out.push(self.assign(self.lane_name(i, l)?, e));
                    }
                }
                InstKind::Store { val, ptr } => {
                    let lhs = self.lvalue(*ptr)?;
                    let rhs = self.operand(*val)?;
                    out.push(CStmt::Expr(CExpr::Assign {
                        lhs: Box::new(lhs),
                        op: None,
                        rhs: Box::new(rhs),
                    }));
                }
                InstKind::Select {
                    cond,
                    then_val,
                    else_val,
                } => {
                    let name = self.name_of(i)?;
                    let c = self.operand(*cond)?;
                    let t = self.operand(*then_val)?;
                    let e = self.operand(*else_val)?;
                    out.push(CStmt::If {
                        cond: c,
                        then_body: vec![self.assign(name.clone(), t)],
                        else_body: vec![self.assign(name, e)],
                    });
                }
                InstKind::Br { target } => {
                    let stmts = self.emit_edge(bb, *target)?;
                    out.extend(stmts);
                }
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.operand(*cond)?;
                    let then_body = self.emit_edge(bb, *then_bb)?;
                    let else_body = self.emit_edge(bb, *else_bb)?;
                    out.push(CStmt::If {
                        cond: c,
                        then_body,
                        else_body,
                    });
                }
                InstKind::Ret { val } => {
                    let v = val.map(|v| self.operand(v)).transpose()?;
                    out.push(CStmt::Return(v));
                }
                InstKind::Unreachable => {
                    out.push(CStmt::Return(match self.f.ret_ty {
                        Type::Void => None,
                        Type::F64 => Some(CExpr::Float(0.0)),
                        _ => Some(CExpr::Int(0)),
                    }));
                }
                InstKind::Call { .. } if !inst.has_result() => {
                    out.push(CStmt::Expr(self.rvalue(i)?));
                }
                _ if inst.has_result() => {
                    let name = self.name_of(i)?;
                    let rhs = self.rvalue(i)?;
                    out.push(self.assign(name, rhs));
                }
                other => {
                    return Err(err(
                        self.module,
                        self.f,
                        format!("no literal statement for {other:?}"),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_ir::Inst;

    fn simple_loop_module() -> Module {
        // long f(long n) { s = 0; for (i = 0; i < n; i++) s += i; return s; }
        // built directly in (rotated) IR with a phi cycle.
        let mut m = Module::new("lit");
        let mut f = Function::new(&mut m.symbols, "f", &[("n", Type::I64)], Type::I64);
        let entry = f.entry;
        let header = {
            let n = m.symbols.intern("header");
            f.add_block(n)
        };
        let exit = {
            let n = m.symbols.intern("exit");
            f.add_block(n)
        };
        use InstKind::*;
        let guard = f.append_inst(
            entry,
            Inst::new(
                ICmp {
                    pred: IPred::Sgt,
                    lhs: Value::Arg(0),
                    rhs: Value::i64(0),
                },
                Type::I1,
            ),
        );
        f.append_inst(
            entry,
            Inst::new(
                CondBr {
                    cond: Value::Inst(guard),
                    then_bb: header,
                    else_bb: exit,
                },
                Type::Void,
            ),
        );
        // header: i = phi [entry: 0] [header: i+1]; s = phi [entry: 0] [header: s+i]
        let i_phi = f.append_inst(
            header,
            Inst::new(
                Phi {
                    incomings: vec![(entry, Value::i64(0))],
                },
                Type::I64,
            ),
        );
        let s_phi = f.append_inst(
            header,
            Inst::new(
                Phi {
                    incomings: vec![(entry, Value::i64(0))],
                },
                Type::I64,
            ),
        );
        let s_next = f.append_inst(
            header,
            Inst::new(
                Bin {
                    op: BinOp::Add,
                    lhs: Value::Inst(s_phi),
                    rhs: Value::Inst(i_phi),
                },
                Type::I64,
            ),
        );
        let i_next = f.append_inst(
            header,
            Inst::new(
                Bin {
                    op: BinOp::Add,
                    lhs: Value::Inst(i_phi),
                    rhs: Value::i64(1),
                },
                Type::I64,
            ),
        );
        let cmp = f.append_inst(
            header,
            Inst::new(
                ICmp {
                    pred: IPred::Slt,
                    lhs: Value::Inst(i_next),
                    rhs: Value::Arg(0),
                },
                Type::I1,
            ),
        );
        f.append_inst(
            header,
            Inst::new(
                CondBr {
                    cond: Value::Inst(cmp),
                    then_bb: header,
                    else_bb: exit,
                },
                Type::Void,
            ),
        );
        if let Phi { incomings } = &mut f.insts[i_phi.index()].kind {
            incomings.push((header, Value::Inst(i_next)));
        }
        if let Phi { incomings } = &mut f.insts[s_phi.index()].kind {
            incomings.push((header, Value::Inst(s_next)));
        }
        // exit: r = phi [entry: 0] [header: s_next]; ret r
        let r_phi = f.append_inst(
            exit,
            Inst::new(
                Phi {
                    incomings: vec![(entry, Value::i64(0)), (header, Value::Inst(s_next))],
                },
                Type::I64,
            ),
        );
        f.append_inst(
            exit,
            Inst::new(
                Ret {
                    val: Some(Value::Inst(r_phi)),
                },
                Type::I64,
            ),
        );
        m.push_function(f);
        m
    }

    #[test]
    fn emits_labels_gotos_and_phi_copies() {
        let m = simple_loop_module();
        let lit = emit_literal(&m, m.func(m.func_ids().next().unwrap())).unwrap();
        let src = splendid_cfront::ast::print_func(&lit.cfunc);
        assert!(src.contains("goto L0;"), "{src}");
        assert!(src.contains("L1:"), "{src}");
        assert!(lit.gotos >= 4, "every edge is a goto: {src}");
        assert!(lit.vars >= 6, "phi temps and results declared: {src}");
    }

    #[test]
    fn literal_output_recompiles_to_equivalent_ir() {
        use splendid_cfront::{lower_program, parse_program, LowerOptions};
        use splendid_interp::{MachineConfig, RtVal, Vm};
        let m = simple_loop_module();
        let lit = emit_literal(&m, m.func(m.func_ids().next().unwrap())).unwrap();
        let src = splendid_cfront::ast::print_func(&lit.cfunc);
        let prog = parse_program(&src).unwrap_or_else(|e| panic!("recompile parse: {e}\n{src}"));
        let m2 = lower_program(&prog, "relit", &LowerOptions::default())
            .unwrap_or_else(|e| panic!("recompile lower: {e}\n{src}"));
        // sum 0..n for n=10 is 45 — interpret the recompiled module.
        let mut vm = Vm::new(&m2, MachineConfig::default());
        let got = vm.call_by_name("f", &[RtVal::Int(10)]).unwrap();
        assert!(matches!(got, Some(RtVal::Int(45))), "{got:?}\n{src}");
    }

    #[test]
    fn rejects_out_of_arena_operands() {
        let mut m = Module::new("bad");
        let mut f = Function::new(&mut m.symbols, "boom", &[], Type::I64);
        let entry = f.entry;
        f.append_inst(
            entry,
            Inst::new(
                InstKind::Ret {
                    val: Some(Value::Inst(InstId(4242))),
                },
                Type::I64,
            ),
        );
        m.push_function(f);
        let e = emit_literal(&m, m.func(m.func_ids().next().unwrap())).unwrap_err();
        assert_eq!(e.stage, Stage::Emit);
        assert!(e.message.contains("out-of-arena"), "{e}");
    }
}
