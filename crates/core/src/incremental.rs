//! Incremental re-preparation: re-prepare only the functions an edit
//! touched, transplanting them into a clone of the previous prepared
//! module.
//!
//! The daemon's UPDATE fast path (see `splendid-daemon`'s session module)
//! hashes per-function source spans instead of re-parsing the module; the
//! deferred preparation work then lands here at the next DECOMPILE. Given
//! the previous [`PreparedModule`] and a *mini-module* text — the shared
//! preamble (module header, globals, debug variables) plus only the dirty
//! root functions and their outlined `_polly_parN` regions — [`reprepare`]
//! parses and prepares just those bytes and splices the resulting prepared
//! functions into a clone of the previous module. Cost is proportional to
//! the edit, not the module: for a 1-of-16-kernel edit the mini-module is
//! ~1/16th of the text, so parse + detransform (the two dominant UPDATE
//! costs) shrink by the same factor.
//!
//! The transplant is deliberately conservative. Function bodies reference
//! their module through four channels: interned [`Symbol`]s (re-interned
//! into the destination table by string), [`GlobalId`]/`VarId` arena
//! indices (valid only because the preamble — and hence both arenas — is
//! byte-identical by construction), and direct function references
//! (`Callee::Func` / [`Value::Function`]), which a *prepared* function
//! should no longer contain (regions are inlined back) — if one survives,
//! [`reprepare`] refuses and the caller falls back to a full
//! [`prepare_module`]. Correctness never depends on the incremental path
//! being taken.

use crate::error::{SplendidError, Stage};
use crate::fingerprint::{function_fingerprint, ModuleDigests};
use crate::pipeline::{prepare_module, PreparedModule, SplendidOptions, StageTimings};
use splendid_ir::{parser::parse_module, Callee, FuncId, InstKind, Module, Value};

/// Strip the `_polly_parN` suffix the parallelizer gives outlined region
/// functions, yielding the root function the region is inlined back into.
/// Non-outlined names come back unchanged.
pub fn root_of(name: &str) -> &str {
    if let Some(pos) = name.rfind("_polly_par") {
        let digits = &name[pos + "_polly_par".len()..];
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            return &name[..pos];
        }
    }
    name
}

/// Clone `src_fid` out of `src` and install it as `dst_fid` in `dst`,
/// re-interning every symbol into `dst`'s table. Arena indices
/// (globals, debug variables) carry over untouched — the caller
/// guarantees both modules share a byte-identical preamble. Refuses
/// functions that reference other functions directly, since `FuncId`s
/// do not transfer across modules.
pub fn transplant_function(
    dst: &mut Module,
    dst_fid: FuncId,
    src: &Module,
    src_fid: FuncId,
) -> Result<(), String> {
    let mut f = src.func(src_fid).clone();
    f.name = dst.symbols.intern(src.name_of(f.name));
    for p in &mut f.params {
        p.name = dst.symbols.intern(src.name_of(p.name));
    }
    for b in &mut f.blocks {
        b.name = dst.symbols.intern(src.name_of(b.name));
    }
    for inst in &mut f.insts {
        if let Some(n) = inst.name {
            inst.name = Some(dst.symbols.intern(src.name_of(n)));
        }
        if let InstKind::Call { callee, .. } = &mut inst.kind {
            match callee {
                Callee::External(n) => {
                    *callee = Callee::External(dst.symbols.intern(src.name_of(*n)));
                }
                Callee::Func(_) => {
                    return Err(format!(
                        "function '{}' calls another function by id; ids do not \
                         transfer across modules",
                        dst.name_of(f.name)
                    ));
                }
            }
        }
        let mut bad = false;
        inst.kind.for_each_operand(|v| {
            if matches!(v, Value::Function(_)) {
                bad = true;
            }
        });
        if bad {
            return Err(format!(
                "function '{}' takes another function's address; ids do not \
                 transfer across modules",
                dst.name_of(f.name)
            ));
        }
    }
    dst.functions[dst_fid.index()] = f;
    Ok(())
}

/// True when both modules declare the same globals and debug variables in
/// the same order — the precondition for arena indices to transfer.
fn preambles_match(a: &Module, b: &Module) -> bool {
    a.globals.len() == b.globals.len()
        && a.di_vars.len() == b.di_vars.len()
        && a.globals.iter().zip(&b.globals).all(|(x, y)| {
            a.name_of(x.name) == b.name_of(y.name) && x.mem == y.mem && x.init == y.init
        })
        && a.di_vars.iter().zip(&b.di_vars).all(|(x, y)| {
            a.name_of(x.name) == b.name_of(y.name) && a.name_of(x.scope) == b.name_of(y.scope)
        })
}

/// Re-prepare only `dirty_roots` from `mini_text` and transplant the
/// results into a clone of `prev`.
///
/// `mini_text` must be a well-formed module text consisting of the same
/// preamble as `prev`'s source plus the dirty root functions and any
/// outlined regions belonging to them. On any structural surprise — a
/// missing function, a preamble mismatch, a cross-function reference —
/// this returns a *recoverable* error and the caller should fall back to
/// a full [`prepare_module`]; nothing is mutated on failure.
pub fn reprepare(
    prev: &PreparedModule,
    mini_text: &str,
    dirty_roots: &[&str],
    opts: &SplendidOptions,
    timings: &mut StageTimings,
) -> Result<PreparedModule, SplendidError> {
    let recoverable = |msg: String| SplendidError::recoverable(Stage::Detransform, msg);
    let mini = parse_module(mini_text)
        .map_err(|e| recoverable(format!("incremental parse failed: {e}")))?;
    if !preambles_match(&prev.module, &mini) {
        return Err(recoverable(
            "mini-module preamble does not match the previous module".into(),
        ));
    }
    let mini_prep = prepare_module(&mini, opts, timings)?;

    let mut module = prev.module.clone();
    // Digests are seeded from the previous module: only the transplanted
    // functions are re-printed and re-hashed, so fingerprinting cost also
    // tracks the edit, not the module.
    let mut functions = prev.digests().functions.clone();
    let mut regions = Vec::with_capacity(prev.regions.len());
    for r in &prev.regions {
        if !dirty_roots.contains(&r.caller_name.as_str()) {
            regions.push(r.clone());
        }
    }
    regions.extend(mini_prep.regions.iter().cloned());
    let mut simd_loops = Vec::with_capacity(prev.simd_loops.len());
    for r in &prev.simd_loops {
        if !dirty_roots.contains(&r.function.as_str()) {
            simd_loops.push(r.clone());
        }
    }
    simd_loops.extend(mini_prep.simd_loops.iter().cloned());

    for name in dirty_roots {
        let dst_fid = module
            .func_by_name(name)
            .ok_or_else(|| recoverable(format!("'{name}' not in the previous module")))?;
        let src_fid = mini_prep
            .module
            .func_by_name(name)
            .ok_or_else(|| recoverable(format!("'{name}' not in the mini-module")))?;
        transplant_function(&mut module, dst_fid, &mini_prep.module, src_fid)
            .map_err(recoverable)?;
        functions[dst_fid.index()] = (name.to_string(), function_fingerprint(&module, dst_fid));
    }

    let digests = ModuleDigests {
        context: prev.digests().context,
        functions,
    };
    let prepared = PreparedModule {
        module,
        regions,
        simd_loops,
        digests: std::sync::OnceLock::new(),
    };
    let _ = prepared.digests.set(digests);
    Ok(prepared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_ir::printer::module_str;

    fn lowered(consts: &[f64]) -> Module {
        use splendid_cfront::{lower_program, parse_program, LowerOptions};
        use splendid_parallel::{parallelize_module, ParallelizeOptions};
        use splendid_transforms::{optimize_module, O2Options};
        let mut src = String::new();
        for (i, c) in consts.iter().enumerate() {
            src.push_str(&format!("double A{i}[64];\ndouble B{i}[64];\n"));
            src.push_str(&format!(
                "void kernel{i}() {{ int j; for (j = 1; j < 63; j++) {{ \
                 B{i}[j] = (A{i}[j-1] + A{i}[j+1]) * {c:?}; }} }}\n"
            ));
        }
        let prog = parse_program(&src).unwrap();
        let mut m = lower_program(&prog, "inc", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        parallelize_module(&mut m, &ParallelizeOptions::default());
        m
    }

    /// Build the mini-module text for `roots` out of `text` using the
    /// span scanner, the same way the daemon session does.
    fn mini_text_for(text: &str, roots: &[&str]) -> String {
        let spans = splendid_ir::scan_spans(text);
        let mut out = String::new();
        for &(a, b) in &spans.preamble {
            out.push_str(&text[a..b]);
        }
        for f in &spans.funcs {
            if roots.contains(&root_of(f.name_str(text))) {
                out.push_str(f.body_str(text));
            }
        }
        out
    }

    #[test]
    fn root_of_strips_region_suffixes() {
        assert_eq!(root_of("kernel3_polly_par7"), "kernel3");
        assert_eq!(root_of("kernel3_polly_par12"), "kernel3");
        assert_eq!(root_of("kernel3"), "kernel3");
        assert_eq!(root_of("k_polly_par"), "k_polly_par");
        assert_eq!(root_of("k_polly_parX"), "k_polly_parX");
    }

    #[test]
    fn reprepare_matches_full_prepare() {
        let opts = SplendidOptions::default();
        let mut t = StageTimings::default();

        // The daemon always works from module *text*, so build the
        // previous prepared module through the same parse round-trip it
        // uses (in-memory lowered modules carry dead arena slots the
        // printer never emits, which would make the comparison unfair).
        let before_text = module_str(&lowered(&[0.25, 0.5, 0.75]));
        let before = splendid_ir::parser::parse_module(&before_text).unwrap();
        let prev = prepare_module(&before, &opts, &mut t).unwrap();

        // Edit kernel1's constant only, at the IR-text level.
        let after_text = module_str(&lowered(&[0.25, 0.625, 0.75]));
        let mini = mini_text_for(&after_text, &["kernel1"]);
        assert!(
            mini.len() < after_text.len(),
            "mini-module must be a subset"
        );

        let inc = reprepare(&prev, &mini, &["kernel1"], &opts, &mut t).unwrap();
        let full = {
            let m = splendid_ir::parser::parse_module(&after_text).unwrap();
            prepare_module(&m, &opts, &mut t).unwrap()
        };

        // The transplanted module must be semantically identical to the
        // fully prepared one (Module equality resolves symbols by string).
        assert_eq!(inc.module, full.module);
        // And its seeded digests must agree with freshly computed ones.
        let inc_d = inc.digests();
        let full_d = full.digests();
        assert_eq!(inc_d.context, full_d.context);
        assert_eq!(inc_d.functions, full_d.functions);
    }

    #[test]
    fn reprepare_refuses_unknown_roots() {
        let opts = SplendidOptions::default();
        let mut t = StageTimings::default();
        let m = lowered(&[0.25]);
        let prev = prepare_module(&m, &opts, &mut t).unwrap();
        let text = module_str(&m);
        let mini = mini_text_for(&text, &["kernel0"]);
        let err = reprepare(&prev, &mini, &["nope"], &opts, &mut t).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn reprepare_refuses_preamble_drift() {
        let opts = SplendidOptions::default();
        let mut t = StageTimings::default();
        let m = lowered(&[0.25]);
        let prev = prepare_module(&m, &opts, &mut t).unwrap();
        let text = module_str(&m);
        let mini = mini_text_for(&text, &["kernel0"]).replace("[64 x f64]", "[65 x f64]");
        assert!(reprepare(&prev, &mini, &["kernel0"], &opts, &mut t).is_err());
    }
}
