//! Parallel Region Detransformer and Loop Inliner (paper §4.1.2).
//!
//! Rewrites each outlined parallel region into a *sequential* loop:
//!
//! 1. **Loop parameter restoration** — the thread-local bounds loaded after
//!    `__kmpc_for_static_init_8` are replaced by the *original* loop
//!    parameters, which ride along as the init call's final operands;
//! 2. **Parallel runtime elimination** — the bound allocas/stores/loads and
//!    every runtime call are deleted;
//! 3. a pragma *marker* pseudo-call is left at the loop entry recording the
//!    schedule and barrier facts the Pragma Generator needs after inlining;
//! 4. **Loop inlining** — the fork call is rewritten into a direct call and
//!    inlined, substituting fork arguments for region parameters. This
//!    substitution is also what lets caller-side `dbg` metadata reach
//!    region code (variable naming through inlining, §3.3/§3.4).

use crate::analyzer::{find_fork_sites, find_region_runtime};
use splendid_ir::{Callee, FuncId, Inst, InstId, InstKind, Module, Type, Value};
use splendid_parallel::runtime::KMPC_BARRIER;

/// Marker pseudo-call carrying pragma facts across inlining. Deleted by
/// the structurer after pragma generation.
pub const PRAGMA_MARKER: &str = "splendid.omp.mark";

/// Facts recorded by a marker: `(chunk, nowait)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerInfo {
    /// `schedule(static, chunk)`; 0 means plain `schedule(static)`.
    pub chunk: i64,
    /// Whether the loop can carry `nowait`.
    pub nowait: bool,
}

/// Decode a marker call instruction.
pub fn decode_marker(symbols: &splendid_ir::SymbolTable, kind: &InstKind) -> Option<MarkerInfo> {
    if let InstKind::Call {
        callee: Callee::External(name),
        args,
    } = kind
    {
        if symbols.resolve(*name) == PRAGMA_MARKER && args.len() == 2 {
            return Some(MarkerInfo {
                chunk: args[0].as_int()?,
                nowait: args[1].as_int()? != 0,
            });
        }
    }
    None
}

/// Report of one detransformed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReport {
    /// Region function name.
    pub region_name: String,
    /// Caller function name.
    pub caller_name: String,
    /// Number of parallelization-setup instructions removed.
    pub setup_removed: usize,
}

/// Detransform every parallel region in the module and inline it back into
/// its caller. Outlined functions are removed afterwards.
pub fn detransform_and_inline(module: &mut Module) -> Result<Vec<RegionReport>, String> {
    let sites = find_fork_sites(module);
    let mut reports = Vec::new();
    let mut detransformed: Vec<FuncId> = Vec::new();
    for site in &sites {
        if !detransformed.contains(&site.region) {
            let removed = detransform_region(module, site.region)?;
            detransformed.push(site.region);
            reports.push(RegionReport {
                region_name: module.name_of(module.func(site.region).name).to_string(),
                caller_name: module.name_of(module.func(site.caller).name).to_string(),
                setup_removed: removed,
            });
        }
        // Rewrite the fork into a direct call (tid := 0) and inline it.
        let f = module.func_mut(site.caller);
        let mut args = vec![Value::i64(0)];
        args.extend(site.args.iter().copied());
        f.inst_mut(site.call).kind = InstKind::Call {
            callee: Callee::Func(site.region),
            args,
        };
        splendid_transforms::inline::inline_call(module, site.caller, site.call)
            .map_err(|e| format!("inlining parallel region failed: {e}"))?;
        let f = module.func_mut(site.caller);
        splendid_transforms::dce::eliminate_dead_code(f);
        splendid_transforms::simplify_cfg::simplify_cfg(f);
        splendid_transforms::dce::eliminate_dead_code(f);
    }
    // Outlined regions have been absorbed; drop them.
    let roots: Vec<String> = module
        .functions
        .iter()
        .filter(|f| !f.is_outlined)
        .map(|f| module.name_of(f.name).to_string())
        .collect();
    let root_refs: Vec<&str> = roots.iter().map(|s| s.as_str()).collect();
    splendid_transforms::inline::strip_dead_functions(module, &root_refs);
    Ok(reports)
}

/// Detransform one region in place (without inlining). Returns the number
/// of setup instructions removed.
pub fn detransform_region(module: &mut Module, region: FuncId) -> Result<usize, String> {
    let rt =
        find_region_runtime(module, region).ok_or("region has no static init/fini runtime pair")?;
    let Module {
        symbols, functions, ..
    } = module;
    let f = &mut functions[region.index()];
    let mut removed = 0usize;

    // Decode the init call:
    // (tid, p_lb, p_ub, step, chunk, orig_lb, orig_ub_incl).
    let init_args = match &f.inst(rt.static_init).kind {
        InstKind::Call { args, .. } => args.clone(),
        _ => return Err("static init is not a call".into()),
    };
    if init_args.len() != 7 {
        return Err(format!(
            "static init expects 7 operands, found {}",
            init_args.len()
        ));
    }
    let p_lb = init_args[1];
    let p_ub = init_args[2];
    let chunk = init_args[4].as_int().unwrap_or(0);
    let orig_lb = init_args[5];
    let orig_ub = init_args[6];

    // Restore loop parameters: loads of the thread-local bounds become the
    // original sequential bounds.
    let owners = f.inst_blocks();
    let mut to_delete: Vec<InstId> = Vec::new();
    for (idx, inst) in f.insts.iter().enumerate() {
        if owners[idx].is_none() {
            continue;
        }
        let id = InstId(idx as u32);
        match &inst.kind {
            InstKind::Load { ptr } if *ptr == p_lb => {
                to_delete.push(id);
            }
            InstKind::Load { ptr } if *ptr == p_ub => {
                to_delete.push(id);
            }
            InstKind::Store { ptr, .. } if *ptr == p_lb || *ptr == p_ub => {
                to_delete.push(id);
            }
            _ => {}
        }
    }
    // Replace uses first, then delete.
    for &id in &to_delete {
        let repl = match &f.inst(id).kind {
            InstKind::Load { ptr } if *ptr == p_lb => Some(orig_lb),
            InstKind::Load { ptr } if *ptr == p_ub => Some(orig_ub),
            _ => None,
        };
        if let Some(r) = repl {
            f.replace_all_uses(Value::Inst(id), r);
        }
    }
    for id in to_delete {
        f.delete_inst(id);
        removed += 1;
    }

    // Delete the runtime calls and the bound allocas.
    for id in [rt.static_init, rt.static_fini] {
        f.delete_inst(id);
        removed += 1;
    }
    for p in [p_lb, p_ub] {
        if let Some(a) = p.as_inst() {
            if matches!(f.inst(a).kind, InstKind::Alloca { .. }) {
                f.delete_inst(a);
                removed += 1;
            }
        }
    }
    // Barriers inside the region are runtime-specific too.
    let owners = f.inst_blocks();
    let barriers: Vec<InstId> = f
        .insts
        .iter()
        .enumerate()
        .filter(|(idx, inst)| {
            owners[*idx].is_some()
                && matches!(
                    &inst.kind,
                    InstKind::Call { callee: Callee::External(n), .. } if symbols.resolve(*n) == KMPC_BARRIER
                )
        })
        .map(|(idx, _)| InstId(idx as u32))
        .collect();
    for b in barriers {
        f.delete_inst(b);
        removed += 1;
    }

    // Leave the pragma marker at the start of the entry block.
    let marker = f.add_inst(Inst::new(
        InstKind::Call {
            callee: Callee::External(symbols.intern(PRAGMA_MARKER)),
            args: vec![Value::i64(chunk), Value::bool(!rt.has_barrier)],
        },
        Type::Void,
    ));
    let entry = f.entry;
    f.block_mut(entry).insts.insert(0, marker);

    splendid_transforms::dce::eliminate_dead_code(f);
    splendid_ir::verify::verify_function(f)
        .map_err(|e| format!("detransformed region fails verification: {e}"))?;
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_analysis::domtree::DomTree;
    use splendid_analysis::indvar::recognize_counted_loop;
    use splendid_analysis::loops::LoopInfo;
    use splendid_cfront::{lower_program, parse_program, LowerOptions};
    use splendid_parallel::runtime::KMPC_FORK_CALL;
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_transforms::{optimize_module, O2Options};

    const SRC: &str = r#"
#define N 256
double A[256];
void k(double alpha) {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = A[i] * alpha;
  }
}
"#;

    fn parallel_module(src: &str) -> Module {
        let prog = parse_program(src).unwrap();
        let mut m = lower_program(&prog, "t", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        parallelize_module(&mut m, &ParallelizeOptions::default());
        m
    }

    fn has_runtime_calls(m: &Module) -> bool {
        m.functions.iter().any(|f| {
            f.insts.iter().enumerate().any(|(idx, i)| {
                f.inst_blocks()[idx].is_some()
                    && matches!(
                        &i.kind,
                        InstKind::Call { callee: Callee::External(n), .. }
                            if splendid_parallel::runtime::is_parallel_runtime_symbol(m.name_of(*n))
                    )
            })
        })
    }

    #[test]
    fn removes_all_runtime_calls_and_inlines() {
        let mut m = parallel_module(SRC);
        assert!(has_runtime_calls(&m));
        let reports = detransform_and_inline(&mut m).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].setup_removed >= 6);
        assert!(!has_runtime_calls(&m), "all __kmpc calls must be gone");
        // The outlined function is gone; only `k` remains.
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.name_of(m.functions[0].name), "k");
        splendid_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn restored_loop_is_counted_with_original_bounds() {
        let mut m = parallel_module(SRC);
        detransform_and_inline(&mut m).unwrap();
        let f = &m.functions[0];
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert_eq!(li.loops.len(), 1, "one sequential loop recovered");
        let cl = recognize_counted_loop(f, &li, li.ids().next().unwrap()).expect("counted");
        // Restored to the full iteration space: 0 ..= 255.
        assert_eq!(cl.init.as_int(), Some(0));
        assert_eq!(cl.bound.as_int(), Some(255));
        assert_eq!(cl.step, 1);
        assert!(
            cl.bottom_tested,
            "still rotated until the structurer de-rotates"
        );
    }

    #[test]
    fn marker_survives_inlining() {
        let mut m = parallel_module(SRC);
        detransform_and_inline(&mut m).unwrap();
        let f = &m.functions[0];
        let owners = f.inst_blocks();
        let marker = f
            .insts
            .iter()
            .enumerate()
            .filter(|(idx, _)| owners[*idx].is_some())
            .find_map(|(_, i)| decode_marker(&m.symbols, &i.kind));
        let info = marker.expect("marker present after inlining");
        assert_eq!(info.chunk, 0);
        assert!(info.nowait, "no barrier in the region => nowait");
    }

    #[test]
    fn detransformed_module_semantics_preserved() {
        // Execute the parallel module and the detransformed sequential
        // module; memory results must match.
        let src = r#"
#define N 128
double A[128];
void init() { int i; for (i = 0; i < N; i++) { A[i] = i * 0.5; } }
void k() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = A[i] * 2.0 + 1.0;
  }
}
"#;
        let mut m = parallel_module(src);
        let run = |m: &Module| {
            use splendid_interp::{MachineConfig, Vm};
            let mut vm = Vm::new(m, MachineConfig::default());
            vm.call_by_name("init", &[]).unwrap();
            vm.call_by_name("k", &[]).unwrap();
            vm.checksum_global("A").unwrap()
        };
        let before = run(&m);
        detransform_and_inline(&mut m).unwrap();
        let after = run(&m);
        assert_eq!(before, after);
    }

    #[test]
    fn fork_call_gone_from_caller() {
        let mut m = parallel_module(SRC);
        detransform_and_inline(&mut m).unwrap();
        for f in &m.functions {
            for i in &f.insts {
                if let InstKind::Call {
                    callee: Callee::External(n),
                    ..
                } = &i.kind
                {
                    assert_ne!(m.name_of(*n), KMPC_FORK_CALL);
                }
            }
        }
    }
}
