//! Parallel Semantic Analyzer: discover fork calls and their outlined
//! regions (paper §4.1.1).

use splendid_ir::{Callee, FuncId, InstId, InstKind, Module, Value};
use splendid_parallel::runtime::{KMPC_FORK_CALL, KMPC_FOR_STATIC_FINI, KMPC_FOR_STATIC_INIT};

/// One discovered parallel region invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkSite {
    /// Function containing the fork call.
    pub caller: FuncId,
    /// The fork call instruction.
    pub call: InstId,
    /// The outlined region function.
    pub region: FuncId,
    /// Values passed to the region after the implicit function operand
    /// (i.e. the region's parameters beyond `tid`).
    pub args: Vec<Value>,
}

/// Runtime-call structure found inside a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionRuntime {
    /// The `__kmpc_for_static_init_8` call.
    pub static_init: InstId,
    /// The `__kmpc_for_static_fini` call.
    pub static_fini: InstId,
    /// Whether any barrier call exists between fini and the region's end
    /// (its absence lets the pragma generator emit `nowait`).
    pub has_barrier: bool,
}

/// Scan a module for fork sites.
pub fn find_fork_sites(module: &Module) -> Vec<ForkSite> {
    let mut out = Vec::new();
    for fid in module.func_ids() {
        let f = module.func(fid);
        let owners = f.inst_blocks();
        for (idx, inst) in f.insts.iter().enumerate() {
            if owners[idx].is_none() {
                continue;
            }
            let InstKind::Call {
                callee: Callee::External(name),
                args,
            } = &inst.kind
            else {
                continue;
            };
            if module.name_of(*name) != KMPC_FORK_CALL {
                continue;
            }
            let Some(Value::Function(region)) = args.first().copied() else {
                continue;
            };
            out.push(ForkSite {
                caller: fid,
                call: InstId(idx as u32),
                region,
                args: args[1..].to_vec(),
            });
        }
    }
    out
}

/// Identify the static-schedule runtime calls inside a region function.
pub fn find_region_runtime(module: &Module, region: FuncId) -> Option<RegionRuntime> {
    let f = module.func(region);
    let owners = f.inst_blocks();
    let mut static_init = None;
    let mut static_fini = None;
    let mut has_barrier = false;
    for (idx, inst) in f.insts.iter().enumerate() {
        if owners[idx].is_none() {
            continue;
        }
        if let InstKind::Call {
            callee: Callee::External(name),
            ..
        } = &inst.kind
        {
            match module.name_of(*name) {
                KMPC_FOR_STATIC_INIT => static_init = Some(InstId(idx as u32)),
                KMPC_FOR_STATIC_FINI => static_fini = Some(InstId(idx as u32)),
                "__kmpc_barrier" => has_barrier = true,
                _ => {}
            }
        }
    }
    Some(RegionRuntime {
        static_init: static_init?,
        static_fini: static_fini?,
        has_barrier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_cfront::{lower_program, parse_program, LowerOptions};
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_transforms::{optimize_module, O2Options};

    fn parallel_module() -> Module {
        let src = r#"
#define N 256
double A[256];
void k(double alpha) {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = A[i] * alpha;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let mut m = lower_program(&prog, "t", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        let rep = parallelize_module(&mut m, &ParallelizeOptions::default());
        assert_eq!(rep.parallelized_count(), 1);
        m
    }

    #[test]
    fn finds_fork_site_and_region() {
        let m = parallel_module();
        let sites = find_fork_sites(&m);
        assert_eq!(sites.len(), 1);
        let site = &sites[0];
        assert!(m.func(site.region).is_outlined);
        // lb, ub, alpha.
        assert_eq!(site.args.len(), m.func(site.region).params.len() - 1);
    }

    #[test]
    fn finds_region_runtime_pair() {
        let m = parallel_module();
        let site = &find_fork_sites(&m)[0];
        let rt = find_region_runtime(&m, site.region).expect("runtime calls");
        assert!(
            !rt.has_barrier,
            "polly-style single-loop regions have no barrier"
        );
        assert_ne!(rt.static_init, rt.static_fini);
    }

    #[test]
    fn sequential_module_has_no_sites() {
        let src = "double A[4];\nvoid k() { A[0] = 1.0; }";
        let prog = parse_program(src).unwrap();
        let m = lower_program(&prog, "t", &LowerOptions::default()).unwrap();
        assert!(find_fork_sites(&m).is_empty());
    }
}
