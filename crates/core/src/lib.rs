#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! SPLENDID: a parallel-IR-to-C/OpenMP decompiler.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Figure 4's architecture). Given IR that has been optimized and
//! automatically parallelized (by `splendid-parallel`, standing in for
//! Polly over libomp), it produces portable, natural C with OpenMP pragmas:
//!
//! * [`analyzer`] — the **Parallel Semantic Analyzer**: finds
//!   `__kmpc_fork_call` sites and resolves their outlined regions;
//! * [`detransform`] — the **Parallel Region Detransformer** and **Loop
//!   Inliner**: recovers the parallelized loop between
//!   `__kmpc_for_static_init_8`/`__kmpc_for_static_fini`, restores the
//!   original loop parameters from the init call's operands, strips every
//!   parallelization-setup instruction, and inlines the region back into
//!   the sequential code (substituting fork-call arguments for region
//!   parameters — which also transfers debug-name information, §3.3);
//! * [`naming`] — the **Variable Proposer / Metadata Interpreter /
//!   Conflicting Definition Detection / Variable Generator** (Algorithms 1
//!   and 2): restores source variable names from `dbg` metadata, collapsing
//!   phi webs and rejecting lifetime-conflicting mappings;
//! * [`structure`] — **Natural Control-Flow Generation** including the
//!   **Loop-Rotate Detransformer**: rebuilds canonical `for` loops from
//!   rotated (guarded do-while) loops, proving guard checks redundant; plus
//!   expression reconstruction and statement emission;
//! * [`pragma`] — the **Pragma Generator**: maps runtime-call patterns to
//!   `#pragma omp parallel` / `omp for schedule(static) [nowait]`,
//!   minimizing clauses (private variables are declared inside the region);
//! * [`pipeline`] — ties everything together and exposes the three
//!   evaluation variants: `V1` (control flow only), `Portable` (+ explicit
//!   parallelism), and `Full` (+ variable renaming) — plus the fidelity
//!   ladder `Natural → Structured → Literal` for fault containment;
//! * [`error`] / [`fault`] / [`literal`] — the fault-containment layer:
//!   the workspace-wide [`error::SplendidError`] taxonomy, deterministic
//!   seeded fault injection ([`fault::FaultPlan`]), and the
//!   always-available statement-per-instruction emitter.

pub mod analyzer;
pub mod detransform;
pub mod devectorize;
pub mod error;
pub mod fault;
pub mod fingerprint;
pub mod incremental;
pub mod literal;
pub mod naming;
pub mod pipeline;
pub mod pragma;
pub mod structure;

pub use error::{panic_message, Severity, SplendidError, Stage};
pub use fault::{FaultKind, FaultPlan, FaultRng, FaultSpec};
pub use fingerprint::{function_fingerprint, module_fingerprints};
pub use pipeline::{
    assemble_output, decompile, decompile_function, decompile_timed, prepare_module,
    DecompileOutput, FidelityTier, FunctionOutput, NamingStats, PreparedModule, SplendidOptions,
    StageTimings, Variant,
};
