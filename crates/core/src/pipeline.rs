//! The SPLENDID decompilation pipeline and its evaluation variants.
//!
//! Besides the paper's variants, the pipeline implements a per-function
//! **fidelity ladder** (`Natural → Structured → Literal`): when a
//! sophisticated detransform fails — organically or under an injected
//! [`FaultPlan`] — only the affected function degrades to the next tier,
//! and the bottom tier (statement-per-instruction emission) is always
//! available, so a module-level answer is always produced.

use crate::detransform::{detransform_and_inline, RegionReport};
use crate::devectorize::{devectorize_module, DevecReport};
use crate::error::{panic_message, SplendidError, Stage};
use crate::fault::FaultPlan;
use crate::literal::emit_literal;
use crate::naming::{assign_names, assign_register_names, NameOrigin};
use crate::structure::{structure_function, StructureOptions};
use splendid_cfront::ast::{print_program, CFunc, CProgram, CStmt, CType};
use splendid_ir::{FuncId, MemType, Module, Type};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The paper's evaluation variants (§5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// SPLENDID v1: natural control-flow construction only (for-loop
    /// reconstruction, loop-rotate de-transformation). Runtime calls stay.
    V1,
    /// Portable SPLENDID (v2): v1 + explicit parallelism translation
    /// (region detransformation, inlining, OpenMP pragmas).
    Portable,
    /// Full SPLENDID: v2 + source variable renaming.
    Full,
}

/// Fidelity tiers of the per-function degradation ladder, best first.
///
/// `Natural` is the paper's full pipeline. `Structured` keeps the
/// structurer but turns off the fragile detransforms (loop de-rotation,
/// guard elimination, pragma re-synthesis, expression folding) — the
/// Rellic-like shape. `Literal` is statement-per-instruction emission
/// with labels and gotos: mechanically derived from the IR, it cannot
/// fail on well-formed input and is always semantics-preserving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FidelityTier {
    /// Full natural decompilation (loop/pragma/name recovery).
    Natural,
    /// Single-pass emission for latency-critical requests: the literal
    /// emitter run as the *requested* tier, skipping naming and CFG
    /// reconstruction entirely. Opt-in only — the automatic degradation
    /// walk never lands here (a failed `Natural` goes to `Structured`),
    /// so requesting `Quick` is the only way to get it.
    Quick,
    /// Conservative structuring, register names, no pragmas.
    Structured,
    /// Statement-per-instruction C with labels and gotos.
    Literal,
}

impl FidelityTier {
    /// Stable lowercase label used in annotations and stats output.
    pub fn label(self) -> &'static str {
        match self {
            FidelityTier::Natural => "natural",
            FidelityTier::Quick => "quick",
            FidelityTier::Structured => "structured",
            FidelityTier::Literal => "literal",
        }
    }
}

impl std::fmt::Display for FidelityTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Options for [`decompile`].
#[derive(Debug, Clone)]
pub struct SplendidOptions {
    /// Which variant to run.
    pub variant: Variant,
    /// Guard-check elimination (ablation: design choice 1 in DESIGN.md).
    pub guard_elimination: bool,
    /// Expression folding (ablation: design choice 4).
    pub inline_expressions: bool,
    /// Highest fidelity tier to attempt. `Natural` (the default) runs
    /// the full ladder; the serve layer retries panicked work items with
    /// `Literal` to skip the fragile tiers entirely.
    pub start_tier: FidelityTier,
    /// Deterministic fault-injection plan. `None` (the default) is the
    /// zero-cost happy path: no counter is touched anywhere.
    pub faults: Option<Arc<FaultPlan>>,
    /// Run the bounded translation validator over every decompiled
    /// function and annotate the emitted C with per-function
    /// `verified`/`UNVERIFIED` tags. Off by default: validation is a
    /// serve-layer concern (the scheduler re-lowers and probe-executes
    /// the output), and the flag participates in cache keying so
    /// validated and unvalidated results never alias.
    pub validate: bool,
}

impl Default for SplendidOptions {
    fn default() -> SplendidOptions {
        SplendidOptions {
            variant: Variant::Full,
            guard_elimination: true,
            inline_expressions: true,
            start_tier: FidelityTier::Natural,
            faults: None,
            validate: false,
        }
    }
}

/// Consult the fault plan, if any, at an instrumented site.
#[inline]
fn fault_gate(opts: &SplendidOptions, site: Stage) -> Result<(), SplendidError> {
    match &opts.faults {
        None => Ok(()),
        Some(plan) => plan.check(site),
    }
}

/// Run `job` with panics contained as fatal stage errors.
fn contain<T>(stage: Stage, fname: &str, job: impl FnOnce() -> T) -> Result<T, SplendidError> {
    catch_unwind(AssertUnwindSafe(job))
        .map_err(|p| SplendidError::fatal(stage, panic_message(p)).in_function(fname))
}

/// Variable-restoration statistics (Figure 8).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NamingStats {
    /// Distinct local variables emitted.
    pub total_vars: usize,
    /// Of those, named from source metadata (directly or through inlining).
    pub restored_vars: usize,
}

impl NamingStats {
    /// Restored fraction in percent (100 when there are no variables).
    pub fn restored_pct(&self) -> f64 {
        if self.total_vars == 0 {
            100.0
        } else {
            100.0 * self.restored_vars as f64 / self.total_vars as f64
        }
    }
}

/// Result of decompiling a module.
#[derive(Debug, Clone)]
pub struct DecompileOutput {
    /// The reconstructed translation unit.
    pub program: CProgram,
    /// Pretty-printed C source.
    pub source: String,
    /// Aggregate naming statistics.
    pub naming: NamingStats,
    /// Reports from the Parallel Region Detransformer.
    pub regions: Vec<RegionReport>,
    /// Total `goto` statements emitted (0 for fully structured output).
    pub gotos: usize,
}

/// Per-stage wall-clock time spent inside the pipeline.
///
/// Collected by [`decompile`] / [`decompile_function`] and aggregated by
/// callers (the serve layer sums these across work items into its
/// service-wide stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Parallel-region detransformation + inlining (module-wide).
    pub detransform: Duration,
    /// Variable-name restoration (per function).
    pub naming: Duration,
    /// Control-flow structuring + expression reconstruction (per function).
    pub structure: Duration,
    /// C pretty-printing.
    pub emit: Duration,
    /// Functions that fell back to the structured tier.
    pub degraded_structured: u32,
    /// Functions that fell back to the literal tier.
    pub degraded_literal: u32,
}

impl StageTimings {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.detransform + self.naming + self.structure + self.emit
    }

    /// Accumulate another timing record into this one.
    pub fn absorb(&mut self, other: &StageTimings) {
        self.detransform += other.detransform;
        self.naming += other.naming;
        self.structure += other.structure;
        self.emit += other.emit;
        self.degraded_structured += other.degraded_structured;
        self.degraded_literal += other.degraded_literal;
    }
}

/// A module after the module-wide pipeline stages, ready for reentrant
/// per-function decompilation via [`decompile_function`].
#[derive(Debug, Clone)]
pub struct PreparedModule {
    /// Detransformed (and, for non-V1 variants, region-inlined) module.
    pub module: Module,
    /// Reports from the Parallel Region Detransformer.
    pub regions: Vec<RegionReport>,
    /// Reports from the SIMD devectorizer: widened loops recovered as
    /// scalar `for` loops carrying a `#pragma omp simd` marker.
    pub simd_loops: Vec<DevecReport>,
    /// Lazily computed, memoized content digests (see [`crate::fingerprint`]):
    /// the serve cache keys every per-function lookup on these, so
    /// computing them once per prepared module instead of once per lookup
    /// is what makes an incremental re-decompile O(changed functions).
    pub(crate) digests: std::sync::OnceLock<crate::fingerprint::ModuleDigests>,
}

impl PreparedModule {
    /// Global declarations for the reconstructed translation unit.
    pub fn c_globals(&self) -> Vec<(String, CType)> {
        self.module
            .globals
            .iter()
            .map(|g| {
                (
                    self.module.name_of(g.name).to_string(),
                    ctype_of_mem(&g.mem),
                )
            })
            .collect()
    }
}

/// Result of decompiling a single function of a [`PreparedModule`].
#[derive(Debug, Clone)]
pub struct FunctionOutput {
    /// The reconstructed C function.
    pub cfunc: CFunc,
    /// Naming statistics for this function alone.
    pub naming: NamingStats,
    /// `goto` statements emitted for this function.
    pub gotos: usize,
    /// The fidelity tier the function was actually emitted at.
    pub tier: FidelityTier,
}

/// Run the module-wide stages (parallel-region detransformation and
/// inlining) once, so individual functions can then be decompiled
/// independently — and concurrently — with [`decompile_function`].
pub fn prepare_module(
    module: &Module,
    opts: &SplendidOptions,
    timings: &mut StageTimings,
) -> Result<PreparedModule, SplendidError> {
    let start = Instant::now();
    let mut work = module.clone();
    let regions = if opts.variant != Variant::V1 {
        fault_gate(opts, Stage::Detransform)?;
        let detransformed = catch_unwind(AssertUnwindSafe(|| detransform_and_inline(&mut work)))
            .map_err(|p| SplendidError::fatal(Stage::Detransform, panic_message(p)))?;
        detransformed.map_err(|e| SplendidError::fatal(Stage::Detransform, e))?
    } else {
        Vec::new()
    };
    // Devectorization runs for every variant: without it, vector
    // instructions reach the structurer's expression builder and the
    // whole function degrades to the literal tier.
    let simd_loops = catch_unwind(AssertUnwindSafe(|| devectorize_module(&mut work)))
        .map_err(|p| SplendidError::fatal(Stage::Detransform, panic_message(p)))?;
    timings.detransform += start.elapsed();
    Ok(PreparedModule {
        module: work,
        regions,
        simd_loops,
        digests: std::sync::OnceLock::new(),
    })
}

/// One attempt at emitting `fid` at a specific fidelity tier.
fn attempt_tier(
    prepared: &PreparedModule,
    fid: FuncId,
    opts: &SplendidOptions,
    tier: FidelityTier,
    timings: &mut StageTimings,
) -> Result<FunctionOutput, SplendidError> {
    let work = &prepared.module;
    let fname = work.name_of(work.func(fid).name).to_string();

    if tier == FidelityTier::Literal || tier == FidelityTier::Quick {
        // The bottom rung (and its opt-in `Quick` twin): no fault gates,
        // no fragile passes. Either it emits or the input IR itself is
        // malformed.
        let start = Instant::now();
        let lit = contain(Stage::Emit, &fname, || emit_literal(work, work.func(fid)))??;
        timings.structure += start.elapsed();
        return Ok(FunctionOutput {
            cfunc: lit.cfunc,
            naming: NamingStats {
                total_vars: lit.vars,
                restored_vars: 0,
            },
            gotos: lit.gotos,
            tier,
        });
    }

    let start = Instant::now();
    fault_gate(opts, Stage::Naming).map_err(|e| e.in_function(&fname))?;
    let use_source_names = tier == FidelityTier::Natural && opts.variant == Variant::Full;
    let naming = contain(Stage::Naming, &fname, || {
        if use_source_names {
            assign_names(work, fid)
        } else {
            assign_register_names(work, fid)
        }
    })?;
    timings.naming += start.elapsed();

    let sopts = if tier == FidelityTier::Natural {
        StructureOptions {
            detransform_rotation: true,
            guard_elimination: opts.guard_elimination,
            emit_pragmas: opts.variant != Variant::V1,
            inline_expressions: opts.inline_expressions,
            hoist_decls: false,
        }
    } else {
        // Conservative structuring: do-while loops, register names, no
        // guard elimination, no pragmas, no expression folding, and all
        // declarations hoisted to the function top so block scoping can
        // never invalidate a live value.
        StructureOptions {
            detransform_rotation: false,
            guard_elimination: false,
            emit_pragmas: false,
            inline_expressions: false,
            hoist_decls: true,
        }
    };
    fault_gate(opts, Stage::Structure).map_err(|e| e.in_function(&fname))?;
    if sopts.emit_pragmas {
        fault_gate(opts, Stage::Pragma).map_err(|e| e.in_function(&fname))?;
    }
    let start = Instant::now();
    let structured = contain(Stage::Structure, &fname, || {
        structure_function(work, work.func(fid), &naming, &sopts)
    })??;
    timings.structure += start.elapsed();

    let restored = structured
        .variables
        .iter()
        .filter(|(_, o)| *o == NameOrigin::SourceVariable)
        .count();
    Ok(FunctionOutput {
        cfunc: structured.cfunc,
        naming: NamingStats {
            total_vars: structured.variables.len(),
            restored_vars: restored,
        },
        gotos: structured.gotos,
        tier,
    })
}

/// Decompile one function of a prepared module, walking the fidelity
/// ladder from `opts.start_tier` down until a tier succeeds.
///
/// This is the reentrant unit of work the service layer schedules: it
/// takes only shared references, touches no global state, and two calls
/// with the same `(function IR, options)` produce identical output. A
/// failure (organic or injected) in one tier degrades only this function
/// to the next tier; `Err` is returned only when even the literal tier
/// cannot emit, which means the function IR itself is malformed.
pub fn decompile_function(
    prepared: &PreparedModule,
    fid: FuncId,
    opts: &SplendidOptions,
    timings: &mut StageTimings,
) -> Result<FunctionOutput, SplendidError> {
    let mut first_error: Option<SplendidError> = None;
    for tier in [
        FidelityTier::Natural,
        FidelityTier::Quick,
        FidelityTier::Structured,
        FidelityTier::Literal,
    ] {
        if tier < opts.start_tier {
            continue;
        }
        // `Quick` is opt-in: the automatic walk from `Natural` skips it so
        // organic degradation keeps its established Structured → Literal
        // shape (and its stats).
        if tier == FidelityTier::Quick && opts.start_tier != FidelityTier::Quick {
            continue;
        }
        match attempt_tier(prepared, fid, opts, tier, timings) {
            Ok(mut out) => {
                match tier {
                    // A *requested* Quick emit is not a degradation.
                    FidelityTier::Natural | FidelityTier::Quick => {}
                    FidelityTier::Structured => timings.degraded_structured += 1,
                    FidelityTier::Literal => timings.degraded_literal += 1,
                }
                if tier > FidelityTier::Natural && tier != FidelityTier::Quick {
                    let why = first_error
                        .as_ref()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "requested by caller".to_string());
                    out.cfunc.body.insert(
                        0,
                        CStmt::Comment(format!("splendid: degraded to {tier} tier: {why}")),
                    );
                }
                return Ok(out);
            }
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e.clone());
                }
                if tier == FidelityTier::Literal {
                    return Err(e);
                }
            }
        }
    }
    // start_tier below Literal always reaches one of the returns above;
    // this is only for an (impossible) empty ladder.
    Err(first_error
        .unwrap_or_else(|| SplendidError::fatal(Stage::Emit, "no fidelity tier attempted")))
}

/// Assemble per-function outputs (in module function order) into the
/// final [`DecompileOutput`].
pub fn assemble_output(
    prepared: &PreparedModule,
    functions: Vec<FunctionOutput>,
    timings: &mut StageTimings,
) -> DecompileOutput {
    let mut program = CProgram {
        globals: prepared.c_globals(),
        ..Default::default()
    };
    let mut naming_stats = NamingStats::default();
    let mut gotos = 0;
    for f in functions {
        naming_stats.total_vars += f.naming.total_vars;
        naming_stats.restored_vars += f.naming.restored_vars;
        gotos += f.gotos;
        program.functions.push(f.cfunc);
    }
    let start = Instant::now();
    let source = print_program(&program);
    timings.emit += start.elapsed();
    DecompileOutput {
        program,
        source,
        naming: naming_stats,
        regions: prepared.regions.clone(),
        gotos,
    }
}

fn ctype_of_mem(mem: &MemType) -> CType {
    let scalar = |t: Type| match t {
        Type::F64 => CType::Double,
        Type::Ptr => CType::Ptr(Box::new(CType::Double)),
        _ => CType::Long,
    };
    match mem {
        MemType::Scalar(t) => scalar(*t),
        MemType::Array { elem, dims } => CType::Array(
            Box::new(scalar(*elem)),
            dims.iter().map(|d| *d as usize).collect(),
        ),
    }
}

/// Decompile a parallel-IR module to C/OpenMP source.
pub fn decompile(
    module: &Module,
    opts: &SplendidOptions,
) -> Result<DecompileOutput, SplendidError> {
    decompile_timed(module, opts).map(|(out, _)| out)
}

/// [`decompile`] that also reports where the time went.
pub fn decompile_timed(
    module: &Module,
    opts: &SplendidOptions,
) -> Result<(DecompileOutput, StageTimings), SplendidError> {
    let mut timings = StageTimings::default();
    let prepared = prepare_module(module, opts, &mut timings)?;
    let functions = prepared
        .module
        .func_ids()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|fid| decompile_function(&prepared, fid, opts, &mut timings))
        .collect::<Result<Vec<_>, _>>()?;
    let out = assemble_output(&prepared, functions, &mut timings);
    Ok((out, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_cfront::{lower_program, parse_program, LowerOptions, OmpRuntime};
    use splendid_interp::{MachineConfig, Vm};
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_transforms::{optimize_module, O2Options};

    /// Compile C -> IR -> O2 -> Polly-sim.
    fn polly_pipeline(src: &str) -> Module {
        let prog = parse_program(src).unwrap();
        let mut m = lower_program(&prog, "bench", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        parallelize_module(&mut m, &ParallelizeOptions::default());
        m
    }

    const JACOBI_LIKE: &str = r#"
#define N 1000
double A[1000];
double B[1000];

void init() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = i * 0.125;
  }
}

void kernel() {
  int i;
  for (i = 1; i < N - 1; i++) {
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
  }
}
"#;

    #[test]
    fn full_decompilation_produces_portable_openmp() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        let src = &out.source;
        assert!(
            src.contains("#pragma omp parallel"),
            "missing parallel pragma:\n{src}"
        );
        assert!(
            src.contains("#pragma omp for schedule(static) nowait"),
            "{src}"
        );
        assert!(src.contains("for ("), "{src}");
        assert!(
            !src.contains("__kmpc"),
            "runtime calls must be eliminated:\n{src}"
        );
        assert!(
            !src.contains("do {"),
            "rotated loops must be de-rotated:\n{src}"
        );
        assert_eq!(out.gotos, 0, "fully structured output expected:\n{src}");
    }

    #[test]
    fn variable_names_restored() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        // The induction variable name `i` survives into the pragma'd loop.
        assert!(
            out.source.contains("for (uint64_t i = ") || out.source.contains("for (uint64_t i="),
            "IV should be named i:\n{}",
            out.source
        );
        assert!(out.naming.restored_pct() > 50.0, "{:?}", out.naming);
    }

    #[test]
    fn v1_keeps_runtime_calls() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(
            &m,
            &SplendidOptions {
                variant: Variant::V1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.source.contains("__kmpc_fork_call"), "{}", out.source);
        assert!(!out.source.contains("#pragma"), "{}", out.source);
        // But control flow is still natural: for loops, not do-while.
        assert!(out.source.contains("for ("), "{}", out.source);
    }

    #[test]
    fn portable_variant_uses_register_names() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(
            &m,
            &SplendidOptions {
                variant: Variant::Portable,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.source.contains("#pragma omp"), "{}", out.source);
        assert_eq!(out.naming.restored_vars, 0);
    }

    #[test]
    fn decompiled_output_recompiles_and_matches_semantics() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();

        // Reference result: run the parallel IR directly.
        let reference = {
            let mut vm = Vm::new(&m, MachineConfig::default());
            vm.call_by_name("init", &[]).unwrap();
            vm.call_by_name("kernel", &[]).unwrap();
            vm.checksum_all().unwrap()
        };

        // Recompile the decompiled source with BOTH runtimes (portability).
        for rt in [OmpRuntime::LibOmp, OmpRuntime::LibGomp] {
            let prog = parse_program(&out.source)
                .map_err(|e| format!("recompile parse failed: {e}\n{}", out.source))
                .unwrap();
            let mut m2 = lower_program(&prog, "re", &LowerOptions { runtime: rt }).unwrap();
            optimize_module(&mut m2, &O2Options::default());
            let mut vm = Vm::new(&m2, MachineConfig::default());
            vm.call_by_name("init", &[]).unwrap();
            vm.call_by_name("kernel", &[]).unwrap();
            let got = vm.checksum_all().unwrap();
            assert_eq!(got, reference, "semantics must match under {rt:?}");
        }
    }

    #[test]
    fn may_alias_check_decompiles_to_if_else() {
        let src = r#"
void may_alias(double* A, double* B, double* C) {
  int i;
  for (i = 0; i < 999; i++) {
    A[i+1] = M_PI * B[i] + exp(C[i]);
  }
}
"#;
        let m = polly_pipeline(src);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        let s = &out.source;
        assert!(s.contains("if ("), "aliasing check must appear:\n{s}");
        assert!(s.contains("} else {"), "sequential fallback expected:\n{s}");
        assert!(s.contains("#pragma omp"), "{s}");
        assert!(s.contains("3.14159265358979"), "M_PI constant:\n{s}");
        // Both versions use for loops.
        assert!(s.matches("for (").count() >= 2, "{s}");
    }

    #[test]
    fn guard_elimination_ablation() {
        let m = polly_pipeline(JACOBI_LIKE);
        let with = decompile(&m, &SplendidOptions::default()).unwrap();
        let without = decompile(
            &m,
            &SplendidOptions {
                guard_elimination: false,
                ..Default::default()
            },
        )
        .unwrap();
        // Disabling guard elimination keeps an if around a do-while.
        assert!(without.source.contains("do {"), "{}", without.source);
        assert!(!with.source.contains("do {"), "{}", with.source);
    }

    #[test]
    fn statement_per_instruction_ablation() {
        let m = polly_pipeline(JACOBI_LIKE);
        let folded = decompile(&m, &SplendidOptions::default()).unwrap();
        let unfolded = decompile(
            &m,
            &SplendidOptions {
                inline_expressions: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            unfolded.source.lines().count() > folded.source.lines().count(),
            "statement-per-instruction must be longer"
        );
    }

    #[test]
    fn decompilation_is_deterministic() {
        let m = polly_pipeline(JACOBI_LIKE);
        let a = decompile(&m, &SplendidOptions::default()).unwrap();
        let b = decompile(&m, &SplendidOptions::default()).unwrap();
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn nested_loop_kernel_structure() {
        let src = r#"
#define N 64
double A[64][64];
double x[64];
double y[64];
void mv() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      y[i] = y[i] + A[i][j] * x[j];
    }
  }
}
"#;
        let m = polly_pipeline(src);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        let s = &out.source;
        // Two nested for loops, 2-D subscripts.
        assert!(s.matches("for (").count() >= 2, "{s}");
        assert!(s.contains("A[") && s.contains("]["), "2-D indexing:\n{s}");
        assert_eq!(out.gotos, 0, "{s}");
    }

    // ---- fidelity ladder ---------------------------------------------------

    /// Checksum of running init + kernel on a module in the interpreter.
    fn checksum_of(m: &Module) -> f64 {
        let mut vm = Vm::new(m, MachineConfig::default());
        vm.call_by_name("init", &[]).unwrap();
        vm.call_by_name("kernel", &[]).unwrap();
        vm.checksum_all().unwrap()
    }

    /// Recompile decompiled source under libomp and return its checksum.
    fn recompiled_checksum(source: &str) -> f64 {
        let prog = parse_program(source)
            .unwrap_or_else(|e| panic!("recompile parse failed: {e}\n{source}"));
        let mut m2 = lower_program(&prog, "re", &LowerOptions::default()).unwrap();
        optimize_module(&mut m2, &O2Options::default());
        checksum_of(&m2)
    }

    #[test]
    fn structure_fault_degrades_one_function_and_preserves_semantics() {
        use crate::error::Stage;
        use crate::fault::{FaultKind, FaultPlan};
        let m = polly_pipeline(JACOBI_LIKE);
        let reference = checksum_of(&m);
        let opts = SplendidOptions {
            faults: Some(Arc::new(FaultPlan::single(
                Stage::Structure,
                1,
                FaultKind::Fail,
            ))),
            ..Default::default()
        };
        let (out, timings) = decompile_timed(&m, &opts).unwrap();
        assert_eq!(timings.degraded_structured, 1, "exactly one function falls");
        assert_eq!(timings.degraded_literal, 0);
        assert_eq!(
            out.source.matches("splendid: degraded to").count(),
            1,
            "the degraded function is annotated once:\n{}",
            out.source
        );
        assert_eq!(
            recompiled_checksum(&out.source),
            reference,
            "degraded output must stay semantics-preserving:\n{}",
            out.source
        );
    }

    #[test]
    fn literal_start_tier_preserves_semantics() {
        let m = polly_pipeline(JACOBI_LIKE);
        let reference = checksum_of(&m);
        let opts = SplendidOptions {
            start_tier: FidelityTier::Literal,
            ..Default::default()
        };
        let (out, timings) = decompile_timed(&m, &opts).unwrap();
        assert!(
            timings.degraded_literal >= 2,
            "every function is pinned at the literal tier: {timings:?}"
        );
        assert!(
            out.source.contains("degraded to literal tier"),
            "{}",
            out.source
        );
        assert_eq!(
            recompiled_checksum(&out.source),
            reference,
            "literal tier is statement-per-instruction but semantics-exact:\n{}",
            out.source
        );
    }

    #[test]
    fn empty_fault_plan_is_behavior_neutral() {
        use crate::fault::FaultPlan;
        let m = polly_pipeline(JACOBI_LIKE);
        let base = decompile(&m, &SplendidOptions::default()).unwrap();
        let with_plan = decompile(
            &m,
            &SplendidOptions {
                faults: Some(Arc::new(FaultPlan::new(Vec::new()))),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            base.source, with_plan.source,
            "an empty plan must be byte-identical to no plan"
        );
    }

    #[test]
    fn detransform_fault_fails_prepare_with_transient_error() {
        use crate::error::Stage;
        use crate::fault::{FaultKind, FaultPlan};
        let m = polly_pipeline(JACOBI_LIKE);
        let opts = SplendidOptions {
            faults: Some(Arc::new(FaultPlan::single(
                Stage::Detransform,
                1,
                FaultKind::Timeout { millis: 0 },
            ))),
            ..Default::default()
        };
        let err = decompile(&m, &opts).unwrap_err();
        assert_eq!(err.stage, Stage::Detransform);
        assert!(err.transient, "timeout faults surface as transient: {err}");
    }
}
