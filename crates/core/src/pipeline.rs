//! The SPLENDID decompilation pipeline and its evaluation variants.

use crate::detransform::{detransform_and_inline, RegionReport};
use crate::naming::{assign_names, assign_register_names, NameOrigin};
use crate::structure::{structure_function, StructureOptions};
use splendid_cfront::ast::{print_program, CFunc, CProgram, CType};
use splendid_ir::{FuncId, MemType, Module, Type};
use std::time::{Duration, Instant};

/// The paper's evaluation variants (§5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// SPLENDID v1: natural control-flow construction only (for-loop
    /// reconstruction, loop-rotate de-transformation). Runtime calls stay.
    V1,
    /// Portable SPLENDID (v2): v1 + explicit parallelism translation
    /// (region detransformation, inlining, OpenMP pragmas).
    Portable,
    /// Full SPLENDID: v2 + source variable renaming.
    Full,
}

/// Options for [`decompile`].
#[derive(Debug, Clone)]
pub struct SplendidOptions {
    /// Which variant to run.
    pub variant: Variant,
    /// Guard-check elimination (ablation: design choice 1 in DESIGN.md).
    pub guard_elimination: bool,
    /// Expression folding (ablation: design choice 4).
    pub inline_expressions: bool,
}

impl Default for SplendidOptions {
    fn default() -> SplendidOptions {
        SplendidOptions {
            variant: Variant::Full,
            guard_elimination: true,
            inline_expressions: true,
        }
    }
}

/// Variable-restoration statistics (Figure 8).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NamingStats {
    /// Distinct local variables emitted.
    pub total_vars: usize,
    /// Of those, named from source metadata (directly or through inlining).
    pub restored_vars: usize,
}

impl NamingStats {
    /// Restored fraction in percent (100 when there are no variables).
    pub fn restored_pct(&self) -> f64 {
        if self.total_vars == 0 {
            100.0
        } else {
            100.0 * self.restored_vars as f64 / self.total_vars as f64
        }
    }
}

/// Result of decompiling a module.
#[derive(Debug, Clone)]
pub struct DecompileOutput {
    /// The reconstructed translation unit.
    pub program: CProgram,
    /// Pretty-printed C source.
    pub source: String,
    /// Aggregate naming statistics.
    pub naming: NamingStats,
    /// Reports from the Parallel Region Detransformer.
    pub regions: Vec<RegionReport>,
    /// Total `goto` statements emitted (0 for fully structured output).
    pub gotos: usize,
}

/// Per-stage wall-clock time spent inside the pipeline.
///
/// Collected by [`decompile`] / [`decompile_function`] and aggregated by
/// callers (the serve layer sums these across work items into its
/// service-wide stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Parallel-region detransformation + inlining (module-wide).
    pub detransform: Duration,
    /// Variable-name restoration (per function).
    pub naming: Duration,
    /// Control-flow structuring + expression reconstruction (per function).
    pub structure: Duration,
    /// C pretty-printing.
    pub emit: Duration,
}

impl StageTimings {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.detransform + self.naming + self.structure + self.emit
    }

    /// Accumulate another timing record into this one.
    pub fn absorb(&mut self, other: &StageTimings) {
        self.detransform += other.detransform;
        self.naming += other.naming;
        self.structure += other.structure;
        self.emit += other.emit;
    }
}

/// A module after the module-wide pipeline stages, ready for reentrant
/// per-function decompilation via [`decompile_function`].
#[derive(Debug, Clone)]
pub struct PreparedModule {
    /// Detransformed (and, for non-V1 variants, region-inlined) module.
    pub module: Module,
    /// Reports from the Parallel Region Detransformer.
    pub regions: Vec<RegionReport>,
}

impl PreparedModule {
    /// Global declarations for the reconstructed translation unit.
    pub fn c_globals(&self) -> Vec<(String, CType)> {
        self.module
            .globals
            .iter()
            .map(|g| (g.name.clone(), ctype_of_mem(&g.mem)))
            .collect()
    }
}

/// Result of decompiling a single function of a [`PreparedModule`].
#[derive(Debug, Clone)]
pub struct FunctionOutput {
    /// The reconstructed C function.
    pub cfunc: CFunc,
    /// Naming statistics for this function alone.
    pub naming: NamingStats,
    /// `goto` statements emitted for this function.
    pub gotos: usize,
}

/// Run the module-wide stages (parallel-region detransformation and
/// inlining) once, so individual functions can then be decompiled
/// independently — and concurrently — with [`decompile_function`].
pub fn prepare_module(
    module: &Module,
    opts: &SplendidOptions,
    timings: &mut StageTimings,
) -> Result<PreparedModule, String> {
    let start = Instant::now();
    let mut work = module.clone();
    let regions = if opts.variant != Variant::V1 {
        detransform_and_inline(&mut work)?
    } else {
        Vec::new()
    };
    timings.detransform += start.elapsed();
    Ok(PreparedModule {
        module: work,
        regions,
    })
}

/// Decompile one function of a prepared module.
///
/// This is the reentrant unit of work the service layer schedules: it
/// takes only shared references, touches no global state, and two calls
/// with the same `(function IR, options)` produce identical output.
pub fn decompile_function(
    prepared: &PreparedModule,
    fid: FuncId,
    opts: &SplendidOptions,
    timings: &mut StageTimings,
) -> FunctionOutput {
    let work = &prepared.module;
    let start = Instant::now();
    let naming = match opts.variant {
        Variant::Full => assign_names(work, fid),
        _ => assign_register_names(work, fid),
    };
    timings.naming += start.elapsed();

    let sopts = StructureOptions {
        detransform_rotation: true,
        guard_elimination: opts.guard_elimination,
        emit_pragmas: opts.variant != Variant::V1,
        inline_expressions: opts.inline_expressions,
    };
    let start = Instant::now();
    let structured = structure_function(work, work.func(fid), &naming, &sopts);
    timings.structure += start.elapsed();

    let restored = structured
        .variables
        .iter()
        .filter(|(_, o)| *o == NameOrigin::SourceVariable)
        .count();
    FunctionOutput {
        cfunc: structured.cfunc,
        naming: NamingStats {
            total_vars: structured.variables.len(),
            restored_vars: restored,
        },
        gotos: structured.gotos,
    }
}

/// Assemble per-function outputs (in module function order) into the
/// final [`DecompileOutput`].
pub fn assemble_output(
    prepared: &PreparedModule,
    functions: Vec<FunctionOutput>,
    timings: &mut StageTimings,
) -> DecompileOutput {
    let mut program = CProgram {
        globals: prepared.c_globals(),
        ..Default::default()
    };
    let mut naming_stats = NamingStats::default();
    let mut gotos = 0;
    for f in functions {
        naming_stats.total_vars += f.naming.total_vars;
        naming_stats.restored_vars += f.naming.restored_vars;
        gotos += f.gotos;
        program.functions.push(f.cfunc);
    }
    let start = Instant::now();
    let source = print_program(&program);
    timings.emit += start.elapsed();
    DecompileOutput {
        program,
        source,
        naming: naming_stats,
        regions: prepared.regions.clone(),
        gotos,
    }
}

fn ctype_of_mem(mem: &MemType) -> CType {
    let scalar = |t: Type| match t {
        Type::F64 => CType::Double,
        Type::Ptr => CType::Ptr(Box::new(CType::Double)),
        _ => CType::Long,
    };
    match mem {
        MemType::Scalar(t) => scalar(*t),
        MemType::Array { elem, dims } => CType::Array(
            Box::new(scalar(*elem)),
            dims.iter().map(|d| *d as usize).collect(),
        ),
    }
}

/// Decompile a parallel-IR module to C/OpenMP source.
pub fn decompile(module: &Module, opts: &SplendidOptions) -> Result<DecompileOutput, String> {
    decompile_timed(module, opts).map(|(out, _)| out)
}

/// [`decompile`] that also reports where the time went.
pub fn decompile_timed(
    module: &Module,
    opts: &SplendidOptions,
) -> Result<(DecompileOutput, StageTimings), String> {
    let mut timings = StageTimings::default();
    let prepared = prepare_module(module, opts, &mut timings)?;
    let functions = prepared
        .module
        .func_ids()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|fid| decompile_function(&prepared, fid, opts, &mut timings))
        .collect();
    let out = assemble_output(&prepared, functions, &mut timings);
    Ok((out, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_cfront::{lower_program, parse_program, LowerOptions, OmpRuntime};
    use splendid_interp::{MachineConfig, Vm};
    use splendid_parallel::{parallelize_module, ParallelizeOptions};
    use splendid_transforms::{optimize_module, O2Options};

    /// Compile C -> IR -> O2 -> Polly-sim.
    fn polly_pipeline(src: &str) -> Module {
        let prog = parse_program(src).unwrap();
        let mut m = lower_program(&prog, "bench", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        parallelize_module(&mut m, &ParallelizeOptions::default());
        m
    }

    const JACOBI_LIKE: &str = r#"
#define N 1000
double A[1000];
double B[1000];

void init() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = i * 0.125;
  }
}

void kernel() {
  int i;
  for (i = 1; i < N - 1; i++) {
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
  }
}
"#;

    #[test]
    fn full_decompilation_produces_portable_openmp() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        let src = &out.source;
        assert!(
            src.contains("#pragma omp parallel"),
            "missing parallel pragma:\n{src}"
        );
        assert!(
            src.contains("#pragma omp for schedule(static) nowait"),
            "{src}"
        );
        assert!(src.contains("for ("), "{src}");
        assert!(
            !src.contains("__kmpc"),
            "runtime calls must be eliminated:\n{src}"
        );
        assert!(
            !src.contains("do {"),
            "rotated loops must be de-rotated:\n{src}"
        );
        assert_eq!(out.gotos, 0, "fully structured output expected:\n{src}");
    }

    #[test]
    fn variable_names_restored() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        // The induction variable name `i` survives into the pragma'd loop.
        assert!(
            out.source.contains("for (uint64_t i = ") || out.source.contains("for (uint64_t i="),
            "IV should be named i:\n{}",
            out.source
        );
        assert!(out.naming.restored_pct() > 50.0, "{:?}", out.naming);
    }

    #[test]
    fn v1_keeps_runtime_calls() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(
            &m,
            &SplendidOptions {
                variant: Variant::V1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.source.contains("__kmpc_fork_call"), "{}", out.source);
        assert!(!out.source.contains("#pragma"), "{}", out.source);
        // But control flow is still natural: for loops, not do-while.
        assert!(out.source.contains("for ("), "{}", out.source);
    }

    #[test]
    fn portable_variant_uses_register_names() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(
            &m,
            &SplendidOptions {
                variant: Variant::Portable,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.source.contains("#pragma omp"), "{}", out.source);
        assert_eq!(out.naming.restored_vars, 0);
    }

    #[test]
    fn decompiled_output_recompiles_and_matches_semantics() {
        let m = polly_pipeline(JACOBI_LIKE);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();

        // Reference result: run the parallel IR directly.
        let reference = {
            let mut vm = Vm::new(&m, MachineConfig::default());
            vm.call_by_name("init", &[]).unwrap();
            vm.call_by_name("kernel", &[]).unwrap();
            vm.checksum_all().unwrap()
        };

        // Recompile the decompiled source with BOTH runtimes (portability).
        for rt in [OmpRuntime::LibOmp, OmpRuntime::LibGomp] {
            let prog = parse_program(&out.source)
                .map_err(|e| format!("recompile parse failed: {e}\n{}", out.source))
                .unwrap();
            let mut m2 = lower_program(&prog, "re", &LowerOptions { runtime: rt }).unwrap();
            optimize_module(&mut m2, &O2Options::default());
            let mut vm = Vm::new(&m2, MachineConfig::default());
            vm.call_by_name("init", &[]).unwrap();
            vm.call_by_name("kernel", &[]).unwrap();
            let got = vm.checksum_all().unwrap();
            assert_eq!(got, reference, "semantics must match under {rt:?}");
        }
    }

    #[test]
    fn may_alias_check_decompiles_to_if_else() {
        let src = r#"
void may_alias(double* A, double* B, double* C) {
  int i;
  for (i = 0; i < 999; i++) {
    A[i+1] = M_PI * B[i] + exp(C[i]);
  }
}
"#;
        let m = polly_pipeline(src);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        let s = &out.source;
        assert!(s.contains("if ("), "aliasing check must appear:\n{s}");
        assert!(s.contains("} else {"), "sequential fallback expected:\n{s}");
        assert!(s.contains("#pragma omp"), "{s}");
        assert!(s.contains("3.14159265358979"), "M_PI constant:\n{s}");
        // Both versions use for loops.
        assert!(s.matches("for (").count() >= 2, "{s}");
    }

    #[test]
    fn guard_elimination_ablation() {
        let m = polly_pipeline(JACOBI_LIKE);
        let with = decompile(&m, &SplendidOptions::default()).unwrap();
        let without = decompile(
            &m,
            &SplendidOptions {
                guard_elimination: false,
                ..Default::default()
            },
        )
        .unwrap();
        // Disabling guard elimination keeps an if around a do-while.
        assert!(without.source.contains("do {"), "{}", without.source);
        assert!(!with.source.contains("do {"), "{}", with.source);
    }

    #[test]
    fn statement_per_instruction_ablation() {
        let m = polly_pipeline(JACOBI_LIKE);
        let folded = decompile(&m, &SplendidOptions::default()).unwrap();
        let unfolded = decompile(
            &m,
            &SplendidOptions {
                inline_expressions: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            unfolded.source.lines().count() > folded.source.lines().count(),
            "statement-per-instruction must be longer"
        );
    }

    #[test]
    fn decompilation_is_deterministic() {
        let m = polly_pipeline(JACOBI_LIKE);
        let a = decompile(&m, &SplendidOptions::default()).unwrap();
        let b = decompile(&m, &SplendidOptions::default()).unwrap();
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn nested_loop_kernel_structure() {
        let src = r#"
#define N 64
double A[64][64];
double x[64];
double y[64];
void mv() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      y[i] = y[i] + A[i][j] * x[j];
    }
  }
}
"#;
        let m = polly_pipeline(src);
        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        let s = &out.source;
        // Two nested for loops, 2-D subscripts.
        assert!(s.matches("for (").count() >= 2, "{s}");
        assert!(s.contains("A[") && s.contains("]["), "2-D indexing:\n{s}");
        assert_eq!(out.gotos, 0, "{s}");
    }
}
