//! SIMD devectorizer: recognizes widened (vectorized) loops and lowers
//! them back to their scalar epilogue, recording a marker for the pragma
//! generator so the structurer can annotate the recovered loop with
//! `#pragma omp simd` (plus `reduction(...)` clauses when a horizontal
//! reduction feeds the loop's exit value).
//!
//! The vectorizer (`splendid_transforms::vectorize`) widens a counted
//! loop into the shape
//!
//! ```text
//! pre:      ... splats / lane-index vectors ...
//!           br vec.cond
//! vec.cond: viv  = phi [pre: init] [vec.body: viv.next]
//!           vacc = phi [pre: acc0] [vec.body: acc.next]   (0+ of these)
//!           last = add viv, VF-1
//!           ok   = icmp slt last, bound
//!           condbr ok, vec.body, header
//! vec.body: ... wide loads / lane-wise ops / wide stores ...
//!           acc.next = reduce op vacc, <vexpr>
//!           viv.next = add viv, VF
//!           br vec.cond
//! header:   (original scalar loop — the epilogue)
//! ```
//!
//! and rewires the epilogue's phis to resume from `viv` / `vacc`. This
//! pass inverts that: it proves the shape above, deletes `vec.cond` and
//! `vec.body`, points `pre` straight at the epilogue header with the
//! original scalar initial values, and leaves a
//! `call splendid.simd.mark(vf, nred, [op, phi]...)` pseudo-instruction
//! at the end of `pre`. The scalar epilogue *is* the original loop, so
//! the structurer recovers a plain `for` — the marker only adds the
//! pragma. When recognition fails (hand-written vector IR, a shape the
//! vectorizer never emits), the loop is left alone and the fidelity
//! ladder handles the vector instructions lane-explicitly at the literal
//! tier.

use splendid_ir::{
    BlockId, Callee, Function, IPred, Inst, InstId, InstKind, Module, ReduceOp, SymbolTable, Type,
    Value,
};
use splendid_transforms::dce::eliminate_dead_code;
use splendid_transforms::simplify_cfg::simplify_cfg;
use std::collections::HashMap;

/// External pseudo-call recording a devectorized loop. Never emitted as
/// C; decoded by the structurer (and skipped everywhere else, like
/// [`crate::detransform::PRAGMA_MARKER`]).
pub const SIMD_MARKER: &str = "splendid.simd.mark";

/// Facts recorded by a SIMD marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimdMarkerInfo {
    /// Vectorization factor of the loop that was devectorized.
    pub vf: u8,
    /// Reductions carried by the loop: the clause operator and the
    /// epilogue-header phi that materializes as the reduction variable.
    pub reductions: Vec<(ReduceOp, InstId)>,
}

fn encode_reduce_op(op: ReduceOp) -> i64 {
    match op {
        ReduceOp::Add => 0,
        ReduceOp::Min => 1,
        ReduceOp::Max => 2,
    }
}

fn decode_reduce_op(code: i64) -> Option<ReduceOp> {
    Some(match code {
        0 => ReduceOp::Add,
        1 => ReduceOp::Min,
        2 => ReduceOp::Max,
        _ => return None,
    })
}

/// Decode a SIMD marker call instruction.
///
/// Phi ids are encoded as integer immediates rather than SSA operands:
/// the marker lives in the preheader, which the epilogue phis do not
/// dominate. Ids stay valid because [`Function::delete_inst`] tombstones
/// without renumbering.
pub fn decode_simd_marker(symbols: &SymbolTable, kind: &InstKind) -> Option<SimdMarkerInfo> {
    if let InstKind::Call {
        callee: Callee::External(name),
        args,
    } = kind
    {
        if symbols.resolve(*name) == SIMD_MARKER && args.len() >= 2 {
            let vf = u8::try_from(args[0].as_int()?).ok()?;
            let nred = usize::try_from(args[1].as_int()?).ok()?;
            if args.len() != 2 + 2 * nred {
                return None;
            }
            let mut reductions = Vec::with_capacity(nred);
            for r in 0..nred {
                let op = decode_reduce_op(args[2 + 2 * r].as_int()?)?;
                let phi = InstId(u32::try_from(args[3 + 2 * r].as_int()?).ok()?);
                reductions.push((op, phi));
            }
            return Some(SimdMarkerInfo { vf, reductions });
        }
    }
    None
}

/// Report of devectorization over one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevecReport {
    /// Function name.
    pub function: String,
    /// Widened loops recovered as scalar `for` + marker.
    pub loops: usize,
    /// Reduction clauses recorded across those loops.
    pub reductions: usize,
}

/// A recognized widened loop, ready to be lowered.
struct VecLoopMatch {
    pre: BlockId,
    vc: BlockId,
    vb: BlockId,
    eh: BlockId,
    vf: i64,
    /// Vector induction phi (in `vc`) and its scalar initial value.
    viv: InstId,
    iv_init: Value,
    /// Accumulator phis in `vc`: (phi, scalar init, reduction op).
    accs: Vec<(InstId, Value, ReduceOp)>,
}

/// Devectorize every recognizable widened loop in the module. Returns
/// one report per function that had at least one loop recovered.
pub fn devectorize_module(module: &mut Module) -> Vec<DevecReport> {
    let mut reports = Vec::new();
    let Module {
        symbols, functions, ..
    } = module;
    for f in functions.iter_mut() {
        let (loops, reductions) = devectorize_function(f, symbols);
        if loops > 0 {
            reports.push(DevecReport {
                function: symbols.resolve(f.name).to_string(),
                loops,
                reductions,
            });
        }
    }
    reports
}

/// Devectorize one function; returns `(loops, reductions)` recovered.
pub fn devectorize_function(f: &mut Function, symbols: &mut SymbolTable) -> (usize, usize) {
    let mut loops = 0;
    let mut reductions = 0;
    while let Some(m) = find_vector_loop(f) {
        reductions += m.accs.len();
        apply(f, symbols, &m);
        loops += 1;
    }
    if loops > 0 {
        // vec.cond / vec.body are unreachable now; the preheader's splats
        // and lane-index vectors are dead.
        simplify_cfg(f);
        eliminate_dead_code(f);
        debug_assert!(
            splendid_ir::verify::verify_function(f).is_ok(),
            "devectorized function fails verification"
        );
    }
    (loops, reductions)
}

/// Map each placed instruction to its owning block.
fn owners(f: &Function) -> Vec<Option<BlockId>> {
    f.inst_blocks()
}

/// Predecessor lists, from terminator successors.
fn preds(f: &Function) -> HashMap<BlockId, Vec<BlockId>> {
    let mut map: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for bb in f.block_ids() {
        if let Some(t) = f.terminator(bb) {
            for s in f.inst(t).kind.successors() {
                map.entry(s).or_default().push(bb);
            }
        }
    }
    map
}

/// Scan for one widened loop matching the vectorizer's output shape.
fn find_vector_loop(f: &Function) -> Option<VecLoopMatch> {
    let owner = owners(f);
    let pred_map = preds(f);
    'blocks: for vc in f.block_ids() {
        // Split vc into leading phis and a strict add/icmp/condbr tail.
        let insts: Vec<InstId> = f
            .block(vc)
            .insts
            .iter()
            .copied()
            .filter(|&i| !matches!(f.inst(i).kind, InstKind::Nop | InstKind::DbgValue { .. }))
            .collect();
        let mut phis: Vec<InstId> = Vec::new();
        let mut rest = insts.as_slice();
        while let Some((&i, tail)) = rest.split_first() {
            if matches!(f.inst(i).kind, InstKind::Phi { .. }) {
                phis.push(i);
                rest = tail;
            } else {
                break;
            }
        }
        if phis.is_empty() || rest.len() != 3 {
            continue;
        }
        let (last_id, cmp_id, br_id) = (rest[0], rest[1], rest[2]);
        let InstKind::Bin {
            op: splendid_ir::BinOp::Add,
            lhs: Value::Inst(viv),
            rhs: Value::ConstInt { val: k, .. },
        } = f.inst(last_id).kind
        else {
            continue;
        };
        let InstKind::ICmp {
            pred: IPred::Slt,
            lhs: Value::Inst(cmp_lhs),
            rhs: _,
        } = f.inst(cmp_id).kind
        else {
            continue;
        };
        let InstKind::CondBr {
            cond: Value::Inst(br_cond),
            then_bb: vb,
            else_bb: eh,
        } = f.inst(br_id).kind
        else {
            continue;
        };
        // The bounds-test offset encodes both VF and the epilogue shape:
        // a top-tested epilogue tests `viv + VF-1 < bound` (offset in
        // {1,3,7}), a rotated do-while epilogue tests `viv + VF < bound`
        // (offset in {2,4,8}) so it always keeps at least one iteration.
        // The sets are disjoint, so the offset alone recovers VF.
        let vf = match k {
            1 | 3 | 7 => k + 1,
            2 | 4 | 8 => k,
            _ => continue,
        };
        if cmp_lhs != last_id
            || br_cond != cmp_id
            || vb == vc
            || eh == vc
            || eh == vb
            || !phis.contains(&viv)
        {
            continue;
        }

        // vec.body: straight-line, branches only back to vc, and holds the
        // stride-VF induction update plus at least one vector instruction.
        let body: Vec<InstId> = f
            .block(vb)
            .insts
            .iter()
            .copied()
            .filter(|&i| !matches!(f.inst(i).kind, InstKind::Nop | InstKind::DbgValue { .. }))
            .collect();
        let Some((&term, body_insts)) = body.split_last() else {
            continue;
        };
        if !matches!(f.inst(term).kind, InstKind::Br { target } if target == vc) {
            continue;
        }
        let mut viv_next = None;
        let mut saw_vector = false;
        for &i in body_insts {
            let inst = f.inst(i);
            if let InstKind::Bin {
                op: splendid_ir::BinOp::Add,
                lhs: Value::Inst(p),
                rhs: Value::ConstInt { val, .. },
            } = inst.kind
            {
                if p == viv && val == vf {
                    viv_next = Some(i);
                }
            }
            if inst.ty.is_vector() || matches!(inst.kind, InstKind::Reduce { .. }) {
                saw_vector = true;
            }
        }
        let viv_next = match viv_next {
            Some(i) => i,
            None => continue,
        };
        if !saw_vector {
            continue;
        }

        // The loop must be entered only from one preheader, with the body
        // as the sole latch.
        if pred_map.get(&vb).map(Vec::as_slice) != Some(&[vc]) {
            continue;
        }
        let vc_preds = pred_map.get(&vc).cloned().unwrap_or_default();
        if vc_preds.len() != 2 || !vc_preds.contains(&vb) {
            continue;
        }
        let pre = *vc_preds.iter().find(|&&b| b != vb)?;

        // Induction phi: exactly [pre: init] [vb: viv_next].
        let iv_init = match phi_shape(f, viv, pre, vb) {
            Some((init, back)) if back == Value::Inst(viv_next) => init,
            _ => continue,
        };

        // Every other vc phi must be a reduction accumulator whose
        // backedge is an in-body `reduce` folding into itself.
        let mut accs = Vec::new();
        for &p in &phis {
            if p == viv {
                continue;
            }
            let Some((init, Value::Inst(next))) = phi_shape(f, p, pre, vb) else {
                continue 'blocks;
            };
            if owner[next.index()] != Some(vb) {
                continue 'blocks;
            }
            let InstKind::Reduce {
                op,
                acc: Value::Inst(acc),
                ..
            } = f.inst(next).kind
            else {
                continue 'blocks;
            };
            if acc != p {
                continue 'blocks;
            }
            accs.push((p, init, op));
        }

        // No value defined inside the widened loop may be used outside it,
        // except through the epilogue header's phis (which get rewritten
        // to the scalar initial values).
        let in_loop = |v: Value| matches!(v, Value::Inst(d) if matches!(owner[d.index()], Some(b) if b == vc || b == vb));
        let mut escapes = false;
        for bb in f.block_ids() {
            if bb == vc || bb == vb {
                continue;
            }
            for &i in &f.block(bb).insts {
                match &f.inst(i).kind {
                    InstKind::Phi { incomings } if bb == eh => {
                        for &(p, v) in incomings {
                            if in_loop(v) {
                                let ok = p == vc
                                    && matches!(v, Value::Inst(d) if d == viv
                                        || accs.iter().any(|&(a, _, _)| a == d));
                                if !ok {
                                    escapes = true;
                                }
                            }
                        }
                    }
                    kind => kind.for_each_operand(|v| {
                        if in_loop(v) {
                            escapes = true;
                        }
                    }),
                }
            }
        }
        if escapes {
            continue;
        }

        return Some(VecLoopMatch {
            pre,
            vc,
            vb,
            eh,
            vf,
            viv,
            iv_init,
            accs,
        });
    }
    None
}

/// A phi's `(init, backedge)` values if its incomings are exactly
/// `[pre: init] [latch: backedge]`.
fn phi_shape(f: &Function, phi: InstId, pre: BlockId, latch: BlockId) -> Option<(Value, Value)> {
    let InstKind::Phi { incomings } = &f.inst(phi).kind else {
        return None;
    };
    if incomings.len() != 2 {
        return None;
    }
    let init = incomings.iter().find(|(b, _)| *b == pre)?.1;
    let back = incomings.iter().find(|(b, _)| *b == latch)?.1;
    Some((init, back))
}

/// Lower one recognized loop: rewire the epilogue onto the preheader,
/// drop the widened blocks, and leave the marker.
fn apply(f: &mut Function, symbols: &mut SymbolTable, m: &VecLoopMatch) {
    // 1. Epilogue phis resume from the scalar initial values along the
    //    new pre -> eh edge; remember which phi carries each reduction.
    let mut red_phis: Vec<(ReduceOp, InstId)> = Vec::new();
    for i in f.block(m.eh).insts.clone() {
        if let InstKind::Phi { incomings } = &mut f.inst_mut(i).kind {
            for (p, v) in incomings.iter_mut() {
                if *p != m.vc {
                    continue;
                }
                *p = m.pre;
                if let Value::Inst(d) = *v {
                    if d == m.viv {
                        *v = m.iv_init;
                    } else if let Some(&(_, init, op)) = m.accs.iter().find(|&&(a, _, _)| a == d) {
                        *v = init;
                        red_phis.push((op, i));
                    }
                }
            }
        }
    }

    // 2. The preheader jumps straight to the epilogue.
    if let Some(t) = f.terminator(m.pre) {
        match &mut f.inst_mut(t).kind {
            InstKind::Br { target } if *target == m.vc => *target = m.eh,
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => {
                if *then_bb == m.vc {
                    *then_bb = m.eh;
                }
                if *else_bb == m.vc {
                    *else_bb = m.eh;
                }
            }
            _ => {}
        }
    }

    // 3. Marker before the preheader's terminator. Reduction phis are
    //    integer immediates (see `decode_simd_marker`).
    let mut args = vec![Value::i64(m.vf), Value::i64(red_phis.len() as i64)];
    for &(op, phi) in &red_phis {
        args.push(Value::i64(encode_reduce_op(op)));
        args.push(Value::i64(phi.index() as i64));
    }
    let marker = f.add_inst(Inst::new(
        InstKind::Call {
            callee: Callee::External(symbols.intern(SIMD_MARKER)),
            args,
        },
        Type::Void,
    ));
    let at = f.block(m.pre).insts.len().saturating_sub(1);
    f.block_mut(m.pre).insts.insert(at, marker);

    // 4. Gut the widened blocks. They are unreachable now; tombstoning
    //    their instructions keeps this scan from re-matching them, and an
    //    `unreachable` terminator keeps the function well-formed until
    //    `simplify_cfg` excises the blocks.
    for bb in [m.vc, m.vb] {
        for i in f.block(bb).insts.clone() {
            f.delete_inst(i);
        }
        f.append_inst(bb, Inst::new(InstKind::Unreachable, Type::Void));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{decompile, SplendidOptions};
    use splendid_ir::builder::FuncBuilder;
    use splendid_ir::verify::verify_function;
    use splendid_ir::{BinOp, GlobalInit, MemType};
    use splendid_transforms::vectorize::{vectorize_module, VectorizeOptions};

    /// `for (i = 0; i < n; i++) A[i] = B[i] + C[i];` over f64[100].
    fn vector_add(m: &mut Module, n: i64) -> splendid_ir::FuncId {
        let arr = MemType::array1(Type::F64, 100);
        let a = m.push_global_named("A", arr.clone(), GlobalInit::Zero);
        let b = m.push_global_named("B", arr.clone(), GlobalInit::Zero);
        let c = m.push_global_named("C", arr.clone(), GlobalInit::Zero);
        let mut fb = FuncBuilder::new(m, "vadd", &[], Type::Void);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let latch = fb.new_block("latch");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let iv = fb.phi(Type::I64, vec![(entry, Value::i64(0))], "i");
        let cmp = fb.icmp(IPred::Slt, iv, Value::i64(n), "cmp");
        fb.cond_br(cmp, body, exit);
        fb.switch_to(body);
        let gb = fb.gep(arr.clone(), Value::Global(b), vec![Value::i64(0), iv], "pb");
        let lb = fb.load(Type::F64, gb, "vb");
        let gc = fb.gep(arr.clone(), Value::Global(c), vec![Value::i64(0), iv], "pc");
        let lc = fb.load(Type::F64, gc, "vc");
        let sum = fb.bin(BinOp::FAdd, Type::F64, lb, lc, "sum");
        let ga = fb.gep(arr.clone(), Value::Global(a), vec![Value::i64(0), iv], "pa");
        fb.store(sum, ga);
        fb.br(latch);
        fb.switch_to(latch);
        let next = fb.bin(BinOp::Add, Type::I64, iv, Value::i64(1), "i.next");
        if let Value::Inst(phi) = iv {
            if let InstKind::Phi { incomings } = &mut fb.func_mut().inst_mut(phi).kind {
                incomings.push((latch, next));
            }
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    /// `s = 0; for (i = 0; i < n; i++) s += A[i] * B[i]; store s` — a dot
    /// product with an f64 add reduction.
    fn dot(m: &mut Module, n: i64) -> splendid_ir::FuncId {
        let arr = MemType::array1(Type::F64, 100);
        let a = m.push_global_named("A", arr.clone(), GlobalInit::Zero);
        let b = m.push_global_named("B", arr.clone(), GlobalInit::Zero);
        let out = m.push_global_named("OUT", MemType::array1(Type::F64, 1), GlobalInit::Zero);
        let mut fb = FuncBuilder::new(m, "dot", &[], Type::Void);
        let header = fb.new_block("header");
        let body = fb.new_block("latch");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let iv = fb.phi(Type::I64, vec![(entry, Value::i64(0))], "i");
        let acc = fb.phi(Type::F64, vec![(entry, Value::f64(0.0))], "s");
        let cmp = fb.icmp(IPred::Slt, iv, Value::i64(n), "cmp");
        fb.cond_br(cmp, body, exit);
        fb.switch_to(body);
        let ga = fb.gep(arr.clone(), Value::Global(a), vec![Value::i64(0), iv], "pa");
        let la = fb.load(Type::F64, ga, "va");
        let gb = fb.gep(arr.clone(), Value::Global(b), vec![Value::i64(0), iv], "pb");
        let lb = fb.load(Type::F64, gb, "vb");
        let prod = fb.bin(BinOp::FMul, Type::F64, la, lb, "prod");
        let acc_next = fb.bin(BinOp::FAdd, Type::F64, acc, prod, "s.next");
        let next = fb.bin(BinOp::Add, Type::I64, iv, Value::i64(1), "i.next");
        for (phi, v) in [(iv, next), (acc, acc_next)] {
            if let Value::Inst(p) = phi {
                if let InstKind::Phi { incomings } = &mut fb.func_mut().inst_mut(p).kind {
                    incomings.push((body, v));
                }
            }
        }
        fb.br(header);
        fb.switch_to(exit);
        let go = fb.gep(
            MemType::array1(Type::F64, 1),
            Value::Global(out),
            vec![Value::i64(0), Value::i64(0)],
            "po",
        );
        fb.store(acc, go);
        fb.ret(None);
        fb.finish()
    }

    /// Seed every f64 array global named A/B/C with distinct nonzero
    /// contents, run `func`, and checksum all of memory.
    fn run_checksum(m: &Module, func: &str) -> f64 {
        use splendid_interp::{MachineConfig, Vm};
        let mut vm = Vm::new(m, MachineConfig::default());
        for (gi, name) in ["A", "B", "C"].iter().enumerate() {
            if vm.global_addr(name).is_ok() {
                for i in 0..100 {
                    let v = (i as f64) * 0.5 - 20.0 + (gi as f64) * 1.25;
                    vm.write_global_f64(name, i, v).unwrap();
                }
            }
        }
        vm.call_by_name(func, &[]).unwrap();
        vm.checksum_all().unwrap()
    }

    /// Re-lower decompiled C and checksum it under the same seeding.
    fn recompiled_checksum(source: &str, func: &str) -> f64 {
        use splendid_cfront::{lower_program, parse_program, LowerOptions};
        let prog = parse_program(source)
            .unwrap_or_else(|e| panic!("recompile parse failed: {e}\n{source}"));
        let m2 = lower_program(&prog, "re", &LowerOptions::default())
            .unwrap_or_else(|e| panic!("recompile lower failed: {e}\n{source}"));
        run_checksum(&m2, func)
    }

    /// Collect the decoded SIMD markers left in `f`.
    fn markers(f: &Function, symbols: &SymbolTable) -> Vec<SimdMarkerInfo> {
        let mut out = Vec::new();
        for bb in f.block_ids() {
            for &i in &f.block(bb).insts {
                if let Some(info) = decode_simd_marker(symbols, &f.inst(i).kind) {
                    out.push(info);
                }
            }
        }
        out
    }

    #[test]
    fn devectorize_restores_scalar_vector_add() {
        let mut m = Module::new("t");
        let fid = vector_add(&mut m, 97);
        let scalar_sum = run_checksum(&m, "vadd");
        let stats = vectorize_module(&mut m, &VectorizeOptions::default());
        assert_eq!(stats.vectorized_loops, 1);
        let vec_sum = run_checksum(&m, "vadd");

        let reports = devectorize_module(&mut m);
        assert_eq!(
            reports,
            vec![DevecReport {
                function: "vadd".into(),
                loops: 1,
                reductions: 0,
            }]
        );
        verify_function(m.func(fid)).unwrap();
        let printed = splendid_ir::printer::function_str(&m, m.func(fid));
        assert!(printed.contains(SIMD_MARKER), "marker missing:\n{printed}");
        assert!(!printed.contains("v4f64"), "vector IR survived:\n{printed}");
        let infos = markers(m.func(fid), &m.symbols);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].vf, 4);
        assert!(infos[0].reductions.is_empty());

        let devec_sum = run_checksum(&m, "vadd");
        assert_eq!(scalar_sum.to_bits(), vec_sum.to_bits());
        assert_eq!(scalar_sum.to_bits(), devec_sum.to_bits());
    }

    #[test]
    fn devectorize_records_dot_reduction() {
        let mut m = Module::new("t");
        let fid = dot(&mut m, 97);
        let scalar_sum = run_checksum(&m, "dot");
        let stats = vectorize_module(&mut m, &VectorizeOptions::default());
        assert_eq!(stats.vectorized_loops, 1);
        assert_eq!(stats.reductions, 1);

        let reports = devectorize_module(&mut m);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].loops, 1);
        assert_eq!(reports[0].reductions, 1);
        verify_function(m.func(fid)).unwrap();
        let infos = markers(m.func(fid), &m.symbols);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].reductions.len(), 1);
        assert_eq!(infos[0].reductions[0].0, ReduceOp::Add);

        let devec_sum = run_checksum(&m, "dot");
        assert_eq!(scalar_sum.to_bits(), devec_sum.to_bits());
    }

    /// Rotated (do-while) form of `vector_add`, the shape `-O2` loop
    /// rotation hands the vectorizer.
    fn rotated_vector_add(m: &mut Module, n: i64) -> splendid_ir::FuncId {
        let arr = MemType::array1(Type::F64, 100);
        let a = m.push_global_named("A", arr.clone(), GlobalInit::Zero);
        let b = m.push_global_named("B", arr.clone(), GlobalInit::Zero);
        let c = m.push_global_named("C", arr.clone(), GlobalInit::Zero);
        let mut fb = FuncBuilder::new(m, "vadd", &[], Type::Void);
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(body);
        fb.switch_to(body);
        let iv = fb.phi(Type::I64, vec![(entry, Value::i64(0))], "i");
        let gb = fb.gep(arr.clone(), Value::Global(b), vec![Value::i64(0), iv], "pb");
        let lb = fb.load(Type::F64, gb, "vb");
        let gc = fb.gep(arr.clone(), Value::Global(c), vec![Value::i64(0), iv], "pc");
        let lc = fb.load(Type::F64, gc, "vc");
        let sum = fb.bin(BinOp::FAdd, Type::F64, lb, lc, "sum");
        let ga = fb.gep(arr.clone(), Value::Global(a), vec![Value::i64(0), iv], "pa");
        fb.store(sum, ga);
        let next = fb.bin(BinOp::Add, Type::I64, iv, Value::i64(1), "i.next");
        if let Value::Inst(phi) = iv {
            if let InstKind::Phi { incomings } = &mut fb.func_mut().inst_mut(phi).kind {
                incomings.push((body, next));
            }
        }
        let cmp = fb.icmp(IPred::Slt, next, Value::i64(n), "cmp");
        fb.cond_br(cmp, body, exit);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn rotated_loop_roundtrips_and_carries_pragma() {
        // VF divides the trip count — the epilogue still holds iterations
        // because the rotated vector loop stops one group early.
        let mut m = Module::new("t");
        let fid = rotated_vector_add(&mut m, 96);
        let scalar_sum = run_checksum(&m, "vadd");
        let stats = vectorize_module(&mut m, &VectorizeOptions::default());
        assert_eq!(stats.vectorized_loops, 1);

        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        assert!(
            out.source.contains("#pragma omp simd"),
            "missing simd pragma on rotated loop:\n{}",
            out.source
        );
        assert_eq!(
            recompiled_checksum(&out.source, "vadd").to_bits(),
            scalar_sum.to_bits(),
            "rotated round trip diverges:\n{}",
            out.source
        );

        // And the direct devectorizer path recovers VF from the rotated
        // bounds-test offset.
        let reports = devectorize_module(&mut m);
        assert_eq!(reports.len(), 1);
        let infos = markers(m.func(fid), &m.symbols);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].vf, 4);
        assert_eq!(run_checksum(&m, "vadd").to_bits(), scalar_sum.to_bits());
    }

    #[test]
    fn scalar_module_is_untouched() {
        let mut m = Module::new("t");
        vector_add(&mut m, 97);
        let before = run_checksum(&m, "vadd");
        let reports = devectorize_module(&mut m);
        assert!(reports.is_empty(), "false positive: {reports:?}");
        assert_eq!(before.to_bits(), run_checksum(&m, "vadd").to_bits());
    }

    #[test]
    fn decompiled_simd_loop_carries_pragma() {
        let mut m = Module::new("t");
        vector_add(&mut m, 97);
        let scalar_sum = run_checksum(&m, "vadd");
        vectorize_module(&mut m, &VectorizeOptions::default());

        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        assert!(
            out.source.contains("#pragma omp simd"),
            "missing simd pragma:\n{}",
            out.source
        );
        assert_eq!(
            recompiled_checksum(&out.source, "vadd").to_bits(),
            scalar_sum.to_bits(),
            "devectorized C diverges:\n{}",
            out.source
        );
    }

    #[test]
    fn decompiled_dot_carries_reduction_clause() {
        let mut m = Module::new("t");
        dot(&mut m, 97);
        let scalar_sum = run_checksum(&m, "dot");
        vectorize_module(&mut m, &VectorizeOptions::default());

        let out = decompile(&m, &SplendidOptions::default()).unwrap();
        assert!(
            out.source.contains("#pragma omp simd reduction(+:"),
            "missing reduction clause:\n{}",
            out.source
        );
        assert_eq!(
            recompiled_checksum(&out.source, "dot").to_bits(),
            scalar_sum.to_bits(),
            "devectorized C diverges:\n{}",
            out.source
        );
    }
}
