//! Allocation gate for the daemon's UPDATE hot path.
//!
//! `span_fingerprints_into` is documented as allocation-free once its
//! scratch buffers have warmed to the module's function count — that is
//! the whole point of the span-hash UPDATE design (see DESIGN.md,
//! "Allocation-free hot path"). This test pins the claim with a counting
//! `#[global_allocator]`: after one warm-up pass, re-fingerprinting the
//! same module text any number of times must perform **zero** heap
//! allocations.
//!
//! The test lives in its own integration-test binary so the global
//! allocator swap cannot interfere with (or be perturbed by) any other
//! test running in the same process.

use splendid_core::fingerprint::{span_fingerprints_into, SpanFingerprints};
use splendid_ir::ModuleSpans;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with an allocation counter bolted on. Deallocations
/// are not counted: releasing warm capacity would itself be a bug, but
/// the gate is about not *acquiring* memory in steady state.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A module text with enough functions and preamble to exercise every
/// branch of the scanner (globals, debug vars, multi-block bodies).
fn module_text(funcs: usize) -> String {
    let mut text = String::from("module \"hotpath\"\n");
    for i in 0..funcs {
        text.push_str(&format!("global @A{i} : [64 x f64] = zero\n"));
    }
    for i in 0..funcs {
        text.push_str(&format!(
            "func @kernel{i}() -> void {{\nbb0 entry:\n  br bb1\nbb1 body:\n  ret void\n}}\n"
        ));
    }
    text
}

// One #[test] on purpose: the counter is process-global, so concurrent
// test threads would see each other's allocations in their measured
// windows.
#[test]
fn warm_span_fingerprints_allocate_nothing() {
    let text = module_text(24);
    let mut spans = ModuleSpans::default();
    let mut fps = SpanFingerprints::default();

    // Warm-up: buffers grow to the module's span counts here, and only
    // here.
    span_fingerprints_into(&text, &mut spans, &mut fps);
    let warm = fps.clone();

    let before = allocations();
    for _ in 0..64 {
        span_fingerprints_into(&text, &mut spans, &mut fps);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state span fingerprinting must not touch the heap"
    );
    assert_eq!(fps.funcs, warm.funcs, "results stay identical across reuse");
    assert_eq!(fps.preamble, warm.preamble);

    // Shrinking to a smaller module and growing back must also stay
    // allocation-free: `clear()` keeps capacity, so the big module's
    // buffers cover every smaller scan.
    let small = module_text(3);
    let before = allocations();
    span_fingerprints_into(&small, &mut spans, &mut fps);
    span_fingerprints_into(&text, &mut spans, &mut fps);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "alternating module sizes must reuse warm capacity"
    );
}
