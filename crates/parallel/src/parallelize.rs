//! DOALL detection and loop outlining to parallel runtime calls.

use crate::runtime::*;
use splendid_analysis::depend::{classify_doall, DoallResult};
use splendid_analysis::domtree::DomTree;
use splendid_analysis::indvar::{recognize_counted_loop, CountedLoop};
use splendid_analysis::loops::{LoopId, LoopInfo};
use splendid_analysis::MemRoot;
use splendid_ir::{
    BinOp, Block, BlockId, Callee, FuncId, Function, IPred, Inst, InstId, InstKind, Module, Param,
    Type, Value,
};
use std::collections::{HashMap, HashSet};

/// Options for [`parallelize_module`].
#[derive(Debug, Clone)]
pub struct ParallelizeOptions {
    /// Version may-alias loops behind runtime overlap checks (Figure 2).
    pub version_aliasing: bool,
    /// Minimum estimated dynamic work (instructions × trips) for a loop to
    /// be worth a fork; 0 disables the check. Polly applies comparable
    /// profitability heuristics before emitting parallel code.
    pub min_work: u64,
    /// Restrict parallelization to functions with these names (empty =
    /// all). The PolyBench harness points this at kernel functions so
    /// initialization loops stay sequential, as in the paper's timing
    /// methodology.
    pub only_functions: Vec<String>,
}

impl Default for ParallelizeOptions {
    fn default() -> ParallelizeOptions {
        ParallelizeOptions {
            version_aliasing: true,
            min_work: 0,
            only_functions: Vec::new(),
        }
    }
}

/// What happened to one candidate loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopOutcome {
    /// Outlined into the named parallel region; `versioned` when a runtime
    /// aliasing check guards it.
    Parallelized {
        /// Name of the outlined region function.
        region: String,
        /// Whether a sequential fallback guards the region.
        versioned: bool,
        /// Loop nest depth (1 = outermost).
        depth: u32,
    },
    /// Left sequential.
    Rejected {
        /// Diagnostic.
        reason: String,
        /// Loop nest depth.
        depth: u32,
    },
}

/// Per-function parallelization report.
#[derive(Debug, Clone, Default)]
pub struct ParallelizeReport {
    /// `(function name, outcomes per candidate loop)`.
    pub functions: Vec<(String, Vec<LoopOutcome>)>,
}

impl ParallelizeReport {
    /// Total number of loops parallelized.
    pub fn parallelized_count(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|(_, o)| o)
            .filter(|o| matches!(o, LoopOutcome::Parallelized { .. }))
            .count()
    }
}

/// Parallelize every non-outlined function in the module.
pub fn parallelize_module(module: &mut Module, opts: &ParallelizeOptions) -> ParallelizeReport {
    let mut report = ParallelizeReport::default();
    for fid in module.func_ids().collect::<Vec<_>>() {
        if module.func(fid).is_outlined {
            continue;
        }
        if !opts.only_functions.is_empty()
            && !opts
                .only_functions
                .iter()
                .any(|n| n == module.name_of(module.func(fid).name))
        {
            continue;
        }
        let outcomes = parallelize_function(module, fid, opts);
        if !outcomes.is_empty() {
            report
                .functions
                .push((module.name_of(module.func(fid).name).to_string(), outcomes));
        }
    }
    report
}

fn parallelize_function(
    module: &mut Module,
    fid: FuncId,
    opts: &ParallelizeOptions,
) -> Vec<LoopOutcome> {
    let mut outcomes = Vec::new();
    // Loops are identified across transformations by the InstId of their
    // IV increment, which is stable (arena ids are never reused).
    let mut visited: HashSet<InstId> = HashSet::new();
    // Instructions belonging to sequential fallback clones: loops made of
    // these must never be (re-)parallelized.
    let mut frozen: HashSet<InstId> = HashSet::new();
    let mut region_counter = 0usize;
    loop {
        let f = module.func(fid);
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        // Candidate order: outermost first; children only when the parent
        // was rejected.
        let candidate = find_candidate(f, &li, &visited, &frozen);
        let Some((lid, cl, depth)) = candidate else {
            break;
        };
        visited.insert(cl.next);
        match try_parallelize(
            module,
            fid,
            lid,
            &cl,
            opts,
            &mut region_counter,
            &mut frozen,
        ) {
            Ok((region, versioned)) => outcomes.push(LoopOutcome::Parallelized {
                region,
                versioned,
                depth,
            }),
            Err(reason) => outcomes.push(LoopOutcome::Rejected { reason, depth }),
        }
    }
    outcomes
}

/// Pick the next unvisited loop, outermost-first; descend into children of
/// visited (i.e. previously rejected) loops.
fn find_candidate(
    f: &Function,
    li: &LoopInfo,
    visited: &HashSet<InstId>,
    frozen: &HashSet<InstId>,
) -> Option<(LoopId, CountedLoop, u32)> {
    let mut queue: Vec<LoopId> = li.top_level();
    while let Some(lid) = queue.pop() {
        let l = li.get(lid);
        match recognize_counted_loop(f, li, lid) {
            Some(cl) => {
                // Sequential fallback clones are never candidates (and
                // neither are their inner loops).
                if frozen.contains(&cl.next) {
                    continue;
                }
                if !visited.contains(&cl.next) {
                    return Some((lid, cl, l.depth));
                }
                // Visited (rejected): descend.
                queue.extend(l.children.iter().copied());
            }
            None => {
                // Not counted: descend into children.
                queue.extend(l.children.iter().copied());
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn try_parallelize(
    module: &mut Module,
    fid: FuncId,
    lid: LoopId,
    cl: &CountedLoop,
    opts: &ParallelizeOptions,
    region_counter: &mut usize,
    frozen: &mut HashSet<InstId>,
) -> Result<(String, bool), String> {
    {
        let f = module.func(fid);
        if f.inst(cl.iv).ty != Type::I64 {
            return Err("induction variable is not 64-bit".into());
        }
        if cl.step <= 0 {
            return Err("only up-counting loops are parallelized".into());
        }
        let cont_pred = if cl.continue_on_true {
            cl.pred
        } else {
            cl.pred.negated()
        };
        if !matches!(cont_pred, IPred::Slt | IPred::Sle) {
            return Err(format!("unsupported continue predicate {cont_pred:?}"));
        }
    }

    // Profitability: skip loops whose whole nest does too little work to
    // amortize a fork.
    if opts.min_work > 0 {
        let f = module.func(fid);
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        let work = estimate_work(f, &li, lid);
        if work < opts.min_work {
            return Err(format!(
                "not profitable (estimated work {work} < {})",
                opts.min_work
            ));
        }
    }

    // Dependence test.
    let checks = {
        let f = module.func(fid);
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        let l = li.get(lid).clone();
        let owners = f.inst_blocks();
        // Symbols: IV phis of loops nested in `lid` + anything defined
        // outside `lid`.
        let mut nested_ivs: HashSet<Value> = HashSet::new();
        for inner in li.ids() {
            if li.loop_contains(lid, inner) {
                for &i in &f.block(li.get(inner).header).insts {
                    if matches!(f.inst(i).kind, InstKind::Phi { .. }) {
                        nested_ivs.insert(Value::Inst(i));
                    } else {
                        break;
                    }
                }
            }
        }
        let loop_blocks: HashSet<BlockId> = l.blocks.iter().copied().collect();
        let is_symbol = move |v: Value| {
            if nested_ivs.contains(&v) {
                return true;
            }
            match v {
                Value::Inst(i) => match owners[i.index()] {
                    Some(b) => !loop_blocks.contains(&b),
                    None => false,
                },
                _ => true,
            }
        };
        match classify_doall(f, &module.symbols, &li, lid, cl, &is_symbol) {
            DoallResult::Doall => Vec::new(),
            DoallResult::DoallWithChecks(pairs) => {
                if !opts.version_aliasing {
                    return Err("may-alias and versioning disabled".into());
                }
                pairs
            }
            DoallResult::NotDoall(reason) => return Err(reason),
        }
    };

    let versioned = !checks.is_empty();
    if versioned {
        let cloned = version_loop(module, fid, lid, cl, &checks)?;
        frozen.extend(cloned);
    }

    // Re-resolve the loop after potential versioning (block ids moved).
    let (lid, cl) = {
        let f = module.func(fid);
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        let mut found = None;
        for cand in li.ids() {
            if let Some(c) = recognize_counted_loop(f, &li, cand) {
                if c.next == cl.next {
                    found = Some((cand, c));
                    break;
                }
            }
        }
        found.ok_or("loop lost during versioning")?
    };

    *region_counter += 1;
    let region_name = format!(
        "{}_polly_par{}",
        module.name_of(module.func(fid).name),
        *region_counter
    );
    outline_loop(module, fid, lid, &cl, &region_name)?;
    Ok((region_name, versioned))
}

/// Rough dynamic-work estimate for a loop nest: instruction count of the
/// loop body scaled by the (constant or assumed) trip counts of the loop
/// and every nested loop.
fn estimate_work(f: &Function, li: &LoopInfo, lid: LoopId) -> u64 {
    const UNKNOWN_TRIP: i64 = 64;
    let l = li.get(lid);
    // Per-block weight = its trip product over the enclosing loops inside
    // `lid`.
    let mut total = 0u64;
    for &bb in &l.blocks {
        let mut trips = 1i64;
        let mut cur = li.loop_of(bb);
        while let Some(c) = cur {
            let trip = recognize_counted_loop(f, li, c)
                .and_then(|cl| cl.const_trip_count())
                .unwrap_or(UNKNOWN_TRIP)
                .max(1);
            trips = trips.saturating_mul(trip);
            if c == lid {
                break;
            }
            cur = li.get(c).parent;
        }
        total = total.saturating_add((f.block(bb).insts.len() as i64).saturating_mul(trips) as u64);
    }
    total
}

/// Compute `(lb, ub_incl)` values (inserting instructions into `block`
/// before its terminator) describing the sequential iteration space.
fn iteration_space(
    f: &mut Function,
    symbols: &mut splendid_ir::SymbolTable,
    block: BlockId,
    cl: &CountedLoop,
) -> (Value, Value) {
    let cont_pred = if cl.continue_on_true {
        cl.pred
    } else {
        cl.pred.negated()
    };
    let lb = cl.init;
    let ub = match cont_pred {
        IPred::Sle => cl.bound,
        // Constant bounds fold immediately so the decompiled loop reads
        // `i <= 47` rather than `i <= 48 - 1`.
        IPred::Slt if cl.bound.as_int().is_some() => Value::i64(cl.bound.as_int().unwrap() - 1),
        IPred::Slt => {
            let sub = f.add_inst(Inst::named(
                InstKind::Bin {
                    op: BinOp::Sub,
                    lhs: cl.bound,
                    rhs: Value::i64(1),
                },
                Type::I64,
                symbols.intern("ub.incl"),
            ));
            let pos = f.block(block).insts.len() - 1;
            f.block_mut(block).insts.insert(pos, sub);
            Value::Inst(sub)
        }
        _ => unreachable!("checked in try_parallelize"),
    };
    (lb, ub)
}

/// Outline the loop into a parallel region and replace it with a fork call.
fn outline_loop(
    module: &mut Module,
    fid: FuncId,
    lid: LoopId,
    cl: &CountedLoop,
    region_name: &str,
) -> Result<(), String> {
    let (l, preheader, exit) = {
        let f = module.func(fid);
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        let l = li.get(lid).clone();
        let preheader = l.preheader(f).ok_or("loop has no preheader")?;
        let exit = l.single_exit().ok_or("loop has multiple exits")?;
        (l, preheader, exit)
    };
    let loop_blocks: HashSet<BlockId> = l.blocks.iter().copied().collect();

    // Captured values: operands of loop instructions defined outside the
    // loop (instructions and caller arguments). Constants and globals pass
    // through unchanged.
    let (captures, clone_src) = {
        let f = module.func(fid);
        let owners = f.inst_blocks();
        let mut captures: Vec<Value> = Vec::new();
        let mut add_capture = |v: Value| {
            let needs = match v {
                Value::Inst(d) => owners[d.index()]
                    .map(|b| !loop_blocks.contains(&b))
                    .unwrap_or(false),
                Value::Arg(_) => true,
                _ => false,
            };
            if needs && !captures.contains(&v) {
                captures.push(v);
            }
        };
        for &bb in &l.blocks {
            for &i in &f.block(bb).insts {
                f.inst(i).kind.for_each_operand(&mut add_capture);
            }
        }
        (captures, f.clone())
    };

    // Build the region function.
    let mut params = vec![
        Param {
            name: module.symbols.intern("tid"),
            ty: Type::I64,
        },
        Param {
            name: module.symbols.intern("lb"),
            ty: Type::I64,
        },
        Param {
            name: module.symbols.intern("ub"),
            ty: Type::I64,
        },
    ];
    for (k, v) in captures.iter().enumerate() {
        let (name, ty) = match v {
            Value::Inst(d) => (
                match clone_src.inst(*d).name {
                    Some(n) => n,
                    None => module.symbols.intern(&format!("cap{k}")),
                },
                clone_src.inst(*d).ty,
            ),
            Value::Arg(a) => (
                clone_src.params[*a as usize].name,
                clone_src.params[*a as usize].ty,
            ),
            _ => unreachable!("only insts and args are captured"),
        };
        params.push(Param { name, ty });
    }
    let mut region = Function {
        name: module.symbols.intern(region_name),
        params,
        ret_ty: Type::Void,
        blocks: Vec::new(),
        insts: Vec::new(),
        entry: BlockId(0),
        is_outlined: true,
    };

    // Entry: thread-local bound slots + static init + guard.
    let entry = {
        let id = BlockId(region.blocks.len() as u32);
        region.blocks.push(Block {
            name: module.symbols.intern("entry"),
            insts: Vec::new(),
        });
        id
    };
    region.entry = entry;
    let finish = {
        let id = BlockId(region.blocks.len() as u32);
        region.blocks.push(Block {
            name: module.symbols.intern("runtime.finish"),
            insts: Vec::new(),
        });
        id
    };

    let tid = Value::Arg(0);
    let lb_param = Value::Arg(1);
    let ub_param = Value::Arg(2);
    let plb = region.append_inst(
        entry,
        Inst::named(
            InstKind::Alloca {
                mem: splendid_ir::MemType::Scalar(Type::I64),
            },
            Type::Ptr,
            module.symbols.intern("lb.addr"),
        ),
    );
    let pub_ = region.append_inst(
        entry,
        Inst::named(
            InstKind::Alloca {
                mem: splendid_ir::MemType::Scalar(Type::I64),
            },
            Type::Ptr,
            module.symbols.intern("ub.addr"),
        ),
    );
    region.append_inst(
        entry,
        Inst::new(
            InstKind::Store {
                val: lb_param,
                ptr: Value::Inst(plb),
            },
            Type::Void,
        ),
    );
    region.append_inst(
        entry,
        Inst::new(
            InstKind::Store {
                val: ub_param,
                ptr: Value::Inst(pub_),
            },
            Type::Void,
        ),
    );
    region.append_inst(
        entry,
        Inst::new(
            InstKind::Call {
                callee: Callee::External(module.symbols.intern(KMPC_FOR_STATIC_INIT)),
                args: vec![
                    tid,
                    Value::Inst(plb),
                    Value::Inst(pub_),
                    Value::i64(cl.step),
                    Value::i64(0),
                    lb_param,
                    ub_param,
                ],
            },
            Type::Void,
        ),
    );
    let lbt = region.append_inst(
        entry,
        Inst::named(
            InstKind::Load {
                ptr: Value::Inst(plb),
            },
            Type::I64,
            module.symbols.intern("lb"),
        ),
    );
    let ubt = region.append_inst(
        entry,
        Inst::named(
            InstKind::Load {
                ptr: Value::Inst(pub_),
            },
            Type::I64,
            module.symbols.intern("ub"),
        ),
    );
    let guard = region.append_inst(
        entry,
        Inst::named(
            InstKind::ICmp {
                pred: IPred::Sgt,
                lhs: Value::Inst(lbt),
                rhs: Value::Inst(ubt),
            },
            Type::I1,
            module.symbols.intern("guard"),
        ),
    );

    // Clone the loop blocks into the region.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for &bb in &l.blocks {
        let id = BlockId(region.blocks.len() as u32);
        region.blocks.push(Block {
            name: clone_src.block(bb).name,
            insts: Vec::new(),
        });
        block_map.insert(bb, id);
    }
    // Pre-reserve instruction ids.
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for &bb in &l.blocks {
        for &i in &clone_src.block(bb).insts {
            let slot = region.add_inst(Inst::new(InstKind::Nop, Type::Void));
            inst_map.insert(i, slot);
        }
    }
    let capture_param = |v: Value| -> Option<Value> {
        captures
            .iter()
            .position(|c| *c == v)
            .map(|k| Value::Arg(3 + k as u32))
    };
    for &bb in &l.blocks {
        let nb = block_map[&bb];
        for &i in &clone_src.block(bb).insts {
            let mut inst = clone_src.inst(i).clone();
            inst.kind.for_each_operand_mut(|v| {
                if let Some(m) = inst_map.get(&match v {
                    Value::Inst(d) => *d,
                    _ => InstId(u32::MAX),
                }) {
                    *v = Value::Inst(*m);
                } else if let Some(p) = capture_param(*v) {
                    *v = p;
                }
            });
            match &mut inst.kind {
                InstKind::Br { target } => {
                    *target = *block_map.get(target).unwrap_or(&finish);
                }
                InstKind::CondBr {
                    then_bb, else_bb, ..
                } => {
                    *then_bb = *block_map.get(then_bb).unwrap_or(&finish);
                    *else_bb = *block_map.get(else_bb).unwrap_or(&finish);
                }
                InstKind::Phi { incomings } => {
                    for (b, v) in incomings.iter_mut() {
                        match block_map.get(b) {
                            Some(nb) => *b = *nb,
                            None => {
                                // Incoming from outside the loop: this is
                                // the IV's init edge, redirected to the
                                // region entry with the thread-local lower
                                // bound.
                                *b = entry;
                                *v = Value::Inst(lbt);
                            }
                        }
                    }
                }
                _ => {}
            }
            let ni = inst_map[&i];
            *region.inst_mut(ni) = inst;
            region.block_mut(nb).insts.push(ni);
        }
    }

    // Rebuild the exit test on the thread-local upper bound.
    let cmp_clone = inst_map[&cl.cmp];
    let testee = if cl.cmp_uses_next { cl.next } else { cl.iv };
    let testee_clone = Value::Inst(inst_map[&testee]);
    region.inst_mut(cmp_clone).kind = InstKind::ICmp {
        pred: IPred::Sle,
        lhs: testee_clone,
        rhs: Value::Inst(ubt),
    };
    // Its branch continues into the loop when true.
    let test_block_clone = block_map[&cl.test_block];
    let term = region
        .terminator(test_block_clone)
        .ok_or("missing test terminator")?;
    let continue_target = {
        let InstKind::CondBr {
            then_bb, else_bb, ..
        } = region.inst(term).kind
        else {
            return Err("test block does not end in a conditional branch".into());
        };
        if then_bb == finish {
            else_bb
        } else {
            then_bb
        }
    };
    region.inst_mut(term).kind = InstKind::CondBr {
        cond: Value::Inst(cmp_clone),
        then_bb: continue_target,
        else_bb: finish,
    };

    // Wire the entry guard.
    let loop_entry_clone = block_map[&l.header];
    region.append_inst(
        entry,
        Inst::new(
            InstKind::CondBr {
                cond: Value::Inst(guard),
                then_bb: finish,
                else_bb: loop_entry_clone,
            },
            Type::Void,
        ),
    );

    // Finish block: fini + ret. (No barrier: the region join synchronizes,
    // which is why SPLENDID's pragma generator can choose `nowait`.)
    region.append_inst(
        finish,
        Inst::new(
            InstKind::Call {
                callee: Callee::External(module.symbols.intern(KMPC_FOR_STATIC_FINI)),
                args: vec![tid],
            },
            Type::Void,
        ),
    );
    region.append_inst(finish, Inst::new(InstKind::Ret { val: None }, Type::Void));

    let region_id = module.push_function(region);

    // Caller side: compute the iteration space, emit the fork, bypass the
    // loop.
    let Module {
        symbols, functions, ..
    } = module;
    let f = &mut functions[fid.index()];
    let (lb_v, ub_v) = iteration_space(f, symbols, preheader, cl);
    let mut args = vec![Value::Function(region_id), lb_v, ub_v];
    args.extend(captures.iter().copied());
    let fork_callee = Callee::External(symbols.intern(KMPC_FORK_CALL));
    let fork = f.add_inst(Inst::new(
        InstKind::Call {
            callee: fork_callee,
            args,
        },
        Type::Void,
    ));
    let pos = f.block(preheader).insts.len() - 1;
    f.block_mut(preheader).insts.insert(pos, fork);
    let pre_term = f.terminator(preheader).expect("preheader terminator");
    f.inst_mut(pre_term).kind = InstKind::Br { target: exit };
    splendid_transforms::dce::eliminate_dead_code(f);
    splendid_transforms::simplify_cfg::simplify_cfg(f);
    Ok(())
}

/// Version a may-alias loop: insert runtime overlap checks selecting
/// between the (to-be-parallelized) original loop and a sequential clone.
/// Returns the instruction ids of the sequential fallback clone (so the
/// caller can freeze them against re-parallelization).
fn version_loop(
    module: &mut Module,
    fid: FuncId,
    lid: LoopId,
    cl: &CountedLoop,
    checks: &[(MemRoot, MemRoot)],
) -> Result<Vec<InstId>, String> {
    let Module {
        symbols, functions, ..
    } = module;
    let f = &mut functions[fid.index()];
    let (l, preheader) = {
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        let l = li.get(lid).clone();
        let preheader = l.preheader(f).ok_or("loop has no preheader")?;
        (l, preheader)
    };

    // Clone the loop as the sequential fallback.
    let map = splendid_transforms::clone::clone_blocks(f, symbols, &l.blocks, ".seq");

    // New blocks for routing.
    let par_path = {
        let n = symbols.intern("par.path");
        f.add_block(n)
    };
    let seq_path = {
        let n = symbols.intern("seq.path");
        f.add_block(n)
    };

    // The preheader's terminator moves to par_path; seq_path gets a copy
    // targeting the clone.
    let pre_term = f.terminator(preheader).ok_or("preheader terminator")?;
    let term_kind = f.inst(pre_term).kind.clone();
    let retarget = |kind: &InstKind, to_clone: bool| -> InstKind {
        let mut k = kind.clone();
        match &mut k {
            InstKind::Br { target } if to_clone => {
                *target = map.block(*target);
            }
            InstKind::CondBr {
                then_bb, else_bb, ..
            } if to_clone => {
                *then_bb = map.block(*then_bb);
                *else_bb = map.block(*else_bb);
            }
            _ => {}
        }
        k
    };
    let par_term = f.add_inst(Inst::new(retarget(&term_kind, false), Type::Void));
    f.block_mut(par_path).insts.push(par_term);
    let seq_term = f.add_inst(Inst::new(retarget(&term_kind, true), Type::Void));
    f.block_mut(seq_path).insts.push(seq_term);

    // Compute the overlap checks in the preheader.
    let (_, ub_v) = iteration_space(f, symbols, preheader, cl);
    let one_past = f.add_inst(Inst::named(
        InstKind::Bin {
            op: BinOp::Add,
            lhs: ub_v,
            rhs: Value::i64(1),
        },
        Type::I64,
        symbols.intern("extent"),
    ));
    let pos = f.block(preheader).insts.len() - 1;
    f.block_mut(preheader).insts.insert(pos, one_past);
    let root_ptr = |r: MemRoot| -> Value {
        match r {
            MemRoot::Arg(a) => Value::Arg(a),
            MemRoot::Global(g) => Value::Global(g),
            MemRoot::Alloca(i) => Value::Inst(i),
            MemRoot::Unknown => unreachable!("unknown roots rejected earlier"),
        }
    };
    let mut all_ok: Option<Value> = None;
    for (a, b) in checks {
        let (pa, pb) = (root_ptr(*a), root_ptr(*b));
        let mut emit = |inst: Inst| -> Value {
            let id = f.add_inst(inst);
            let pos = f.block(preheader).insts.len() - 1;
            f.block_mut(preheader).insts.insert(pos, id);
            Value::Inst(id)
        };
        let end_a = emit(Inst::named(
            InstKind::Gep {
                elem: splendid_ir::MemType::Scalar(Type::F64),
                base: pa,
                indices: vec![Value::Inst(one_past)],
            },
            Type::Ptr,
            symbols.intern("end.a"),
        ));
        let end_b = emit(Inst::named(
            InstKind::Gep {
                elem: splendid_ir::MemType::Scalar(Type::F64),
                base: pb,
                indices: vec![Value::Inst(one_past)],
            },
            Type::Ptr,
            symbols.intern("end.b"),
        ));
        let a_before_b = emit(Inst::new(
            InstKind::ICmp {
                pred: IPred::Sle,
                lhs: end_a,
                rhs: pb,
            },
            Type::I1,
        ));
        let b_before_a = emit(Inst::new(
            InstKind::ICmp {
                pred: IPred::Sle,
                lhs: end_b,
                rhs: pa,
            },
            Type::I1,
        ));
        let disjoint = emit(Inst::named(
            InstKind::Bin {
                op: BinOp::Or,
                lhs: a_before_b,
                rhs: b_before_a,
            },
            Type::I1,
            symbols.intern("noalias"),
        ));
        all_ok = Some(match all_ok {
            None => disjoint,
            Some(prev) => emit(Inst::new(
                InstKind::Bin {
                    op: BinOp::And,
                    lhs: prev,
                    rhs: disjoint,
                },
                Type::I1,
            )),
        });
    }
    let cond = all_ok.ok_or("no checks to emit")?;

    // Route through the version switch.
    f.inst_mut(pre_term).kind = InstKind::CondBr {
        cond,
        then_bb: par_path,
        else_bb: seq_path,
    };

    // Fix phi incomings: original loop header's outside-incoming now flows
    // from par_path; the clone's from seq_path.
    for (orig, routed) in [(l.header, par_path), (map.block(l.header), seq_path)] {
        for &i in &f.block(orig).insts.clone() {
            if let InstKind::Phi { incomings } = &mut f.inst_mut(i).kind {
                for (b, _) in incomings {
                    if *b == preheader {
                        *b = routed;
                    }
                }
            }
        }
    }
    Ok(map.insts.values().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splendid_cfront::{lower_program, parse_program, LowerOptions};
    use splendid_transforms::{optimize_module, O2Options};

    fn prepare(src: &str) -> Module {
        let prog = parse_program(src).unwrap();
        let mut m = lower_program(&prog, "t", &LowerOptions::default()).unwrap();
        optimize_module(&mut m, &O2Options::default());
        m
    }

    const VECSCALE: &str = r#"
#define N 1000
double A[1000];
void k(double alpha) {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = A[i] * alpha;
  }
}
"#;

    #[test]
    fn parallelizes_doall_loop() {
        let mut m = prepare(VECSCALE);
        let report = parallelize_module(&mut m, &ParallelizeOptions::default());
        assert_eq!(report.parallelized_count(), 1, "{report:?}");
        splendid_ir::verify::verify_module(&m).unwrap();
        // A fork call exists in the kernel; an outlined region exists.
        let region = m.functions.iter().find(|f| f.is_outlined).expect("region");
        assert!(m.name_of(region.name).contains("polly_par"));
        let k = m.func(m.func_by_name("k").unwrap());
        let has_fork = k.insts.iter().any(|i| {
            matches!(&i.kind, InstKind::Call { callee: Callee::External(n), .. } if m.name_of(*n) == KMPC_FORK_CALL)
        });
        assert!(has_fork);
        // No loop remains in the kernel.
        let dt = DomTree::compute(k);
        let li = LoopInfo::compute(k, &dt);
        assert!(li.loops.is_empty());
    }

    #[test]
    fn region_has_figure1_shape() {
        let mut m = prepare(VECSCALE);
        parallelize_module(&mut m, &ParallelizeOptions::default());
        let region = m.functions.iter().find(|f| f.is_outlined).unwrap();
        // static init, loads of lb/ub, guard icmp sgt, fini.
        let mut saw_init = false;
        let mut saw_fini = false;
        let mut saw_guard = false;
        for i in &region.insts {
            match &i.kind {
                InstKind::Call {
                    callee: Callee::External(n),
                    args,
                } if m.name_of(*n) == KMPC_FOR_STATIC_INIT => {
                    saw_init = true;
                    assert_eq!(args.len(), 7);
                }
                InstKind::Call {
                    callee: Callee::External(n),
                    ..
                } if m.name_of(*n) == KMPC_FOR_STATIC_FINI => {
                    saw_fini = true;
                }
                InstKind::ICmp {
                    pred: IPred::Sgt, ..
                } => saw_guard = true,
                _ => {}
            }
        }
        assert!(saw_init && saw_fini && saw_guard);
        splendid_ir::verify::verify_function(region).unwrap();
    }

    #[test]
    fn captures_scalars() {
        let mut m = prepare(VECSCALE);
        parallelize_module(&mut m, &ParallelizeOptions::default());
        let region = m.functions.iter().find(|f| f.is_outlined).unwrap();
        // tid, lb, ub + alpha.
        assert_eq!(region.params.len(), 4);
        assert!(region.params.iter().any(|p| m.name_of(p.name) == "alpha"));
    }

    #[test]
    fn stencil_rejected() {
        let src = r#"
double A[1000];
void k() {
  int i;
  for (i = 0; i < 999; i++) {
    A[i+1] = A[i];
  }
}
"#;
        let mut m = prepare(src);
        let report = parallelize_module(&mut m, &ParallelizeOptions::default());
        assert_eq!(report.parallelized_count(), 0);
        let outcomes = &report.functions[0].1;
        assert!(matches!(
            &outcomes[0],
            LoopOutcome::Rejected { reason, .. } if reason.contains("dependence")
        ));
    }

    #[test]
    fn nested_parallelizes_outer_only() {
        let src = r#"
#define N 64
double A[64][64];
void k() {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = A[i][j] + 1.0;
    }
  }
}
"#;
        let mut m = prepare(src);
        let report = parallelize_module(&mut m, &ParallelizeOptions::default());
        assert_eq!(report.parallelized_count(), 1);
        // The region contains the inner loop.
        let region = m.functions.iter().find(|f| f.is_outlined).unwrap();
        let dt = DomTree::compute(region);
        let li = LoopInfo::compute(region, &dt);
        assert_eq!(li.loops.len(), 2, "outer thread loop + inner loop");
        splendid_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn may_alias_versioned() {
        let src = r#"
void may_alias(double* A, double* B, double* C) {
  int i;
  for (i = 0; i < 999; i++) {
    A[i+1] = M_PI * B[i] + exp(C[i]);
  }
}
"#;
        let mut m = prepare(src);
        let report = parallelize_module(&mut m, &ParallelizeOptions::default());
        assert_eq!(report.parallelized_count(), 1, "{report:?}");
        let LoopOutcome::Parallelized { versioned, .. } = &report.functions[0].1[0] else {
            panic!("{report:?}");
        };
        assert!(*versioned);
        splendid_ir::verify::verify_module(&m).unwrap();
        // Both a fork call and a sequential loop remain in the function.
        let k = m.func(m.func_by_name("may_alias").unwrap());
        let has_fork = k.insts.iter().any(|i| {
            matches!(&i.kind, InstKind::Call { callee: Callee::External(n), .. } if m.name_of(*n) == KMPC_FORK_CALL)
        });
        assert!(has_fork);
        let dt = DomTree::compute(k);
        let li = LoopInfo::compute(k, &dt);
        assert_eq!(li.loops.len(), 1, "sequential fallback loop remains");
    }

    #[test]
    fn versioning_disabled_rejects() {
        let src = r#"
void f(double* A, double* B) {
  int i;
  for (i = 0; i < 100; i++) {
    A[i] = B[i];
  }
}
"#;
        let mut m = prepare(src);
        let opts = ParallelizeOptions {
            version_aliasing: false,
            ..Default::default()
        };
        let report = parallelize_module(&mut m, &opts);
        assert_eq!(report.parallelized_count(), 0);
    }

    #[test]
    fn two_loops_both_parallelized() {
        let src = r#"
#define N 100
double A[100];
double B[100];
void k() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = 1.0;
  }
  for (i = 0; i < N; i++) {
    B[i] = 2.0;
  }
}
"#;
        let mut m = prepare(src);
        let report = parallelize_module(&mut m, &ParallelizeOptions::default());
        assert_eq!(report.parallelized_count(), 2, "{report:?}");
        assert_eq!(m.functions.iter().filter(|f| f.is_outlined).count(), 2);
        splendid_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn impure_call_rejected() {
        // A call to an internal function inside the loop blocks DOALL.
        let src = r#"
double A[10];
void helper() { A[0] = 1.0; }
void k() {
  int i;
  for (i = 0; i < 10; i++) {
    helper();
  }
}
"#;
        let mut m = prepare(src);
        let report = parallelize_module(&mut m, &ParallelizeOptions::default());
        assert_eq!(report.parallelized_count(), 0);
    }
}
