//! OpenMP runtime entry-point names recognized across the workspace.
//!
//! The parallelizer emits the libomp-style symbols; the C frontend can emit
//! either flavor; the interpreter implements both; the decompiler
//! pattern-matches the libomp names (as the paper's SPLENDID matches the
//! LLVM/OpenMP runtime).

/// libomp-style fork: `(region_fn, lb, ub, captures...)`.
pub const KMPC_FORK_CALL: &str = "__kmpc_fork_call";
/// libomp-style static-schedule init:
/// `(tid, p_lb, p_ub, step, chunk, orig_lb, orig_ub_incl)`.
pub const KMPC_FOR_STATIC_INIT: &str = "__kmpc_for_static_init_8";
/// libomp-style static-schedule fini: `(tid)`.
pub const KMPC_FOR_STATIC_FINI: &str = "__kmpc_for_static_fini";
/// libomp-style barrier: `(tid)`.
pub const KMPC_BARRIER: &str = "__kmpc_barrier";

/// libgomp-style fork (same operand shape as the kmpc fork).
pub const GOMP_PARALLEL: &str = "GOMP_parallel";
/// libgomp-style static bounds (same operand shape as the kmpc init).
pub const GOMP_LOOP_STATIC_BOUNDS: &str = "GOMP_loop_static_bounds";
/// libgomp-style barrier.
pub const GOMP_BARRIER: &str = "GOMP_barrier";

/// Whether a symbol is any known parallel-runtime entry point.
pub fn is_parallel_runtime_symbol(name: &str) -> bool {
    matches!(
        name,
        KMPC_FORK_CALL
            | KMPC_FOR_STATIC_INIT
            | KMPC_FOR_STATIC_FINI
            | KMPC_BARRIER
            | GOMP_PARALLEL
            | GOMP_LOOP_STATIC_BOUNDS
            | GOMP_BARRIER
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(is_parallel_runtime_symbol(KMPC_FORK_CALL));
        assert!(is_parallel_runtime_symbol(GOMP_BARRIER));
        assert!(!is_parallel_runtime_symbol("exp"));
        assert!(!is_parallel_runtime_symbol("malloc"));
    }
}
