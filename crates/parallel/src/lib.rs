//! Polly-like automatic parallelizer.
//!
//! Takes `-O2`-optimized IR (SSA, rotated loops) and, for every outermost
//! DOALL loop, outlines the loop into a parallel region driven by the
//! libomp-style runtime — producing exactly the "parallel LLVM-IR" of the
//! paper's Figure 1 that SPLENDID then decompiles:
//!
//! ```text
//! ; caller
//! call void ext "__kmpc_fork_call"(@kernel_polly_par1, %lb, %ub, cap...)
//!
//! ; outlined region
//! func @kernel_polly_par1($0:tid i64, $1:lb i64, $2:ub i64, ...) -> void outlined
//!   %lb.addr = alloca i64 ... store ...
//!   call void ext "__kmpc_for_static_init_8"(tid, %lb.addr, %ub.addr, step, 0, lb, ub)
//!   %lb.t = load ... ; %ub.t = load ...
//!   guard: icmp sgt %lb.t, %ub.t          ; the rotated-loop guard check
//!   ... rotated loop over [lb.t, ub.t] ...
//!   call void ext "__kmpc_for_static_fini"(tid)
//! ```
//!
//! Loops whose only parallelization obstacle is pointer-argument aliasing
//! are *versioned*: a runtime overlap check selects between the parallel
//! region and a sequential fallback clone (paper Figure 2).

pub mod parallelize;
pub mod runtime;

pub use parallelize::{parallelize_module, LoopOutcome, ParallelizeOptions, ParallelizeReport};
