//! Work-stealing worker pool on plain `std::thread` + mutex-guarded
//! deques (the sandbox build is std-only, so no crossbeam).
//!
//! Topology: one global injector queue fed by [`WorkerPool::spawn`], plus
//! one local deque per worker. A worker that drains the injector takes a
//! small batch — one task to run now, the rest parked in its local deque —
//! and idle workers steal from the *front* of other workers' deques while
//! owners pop from the *back* (classic Chase-Lev discipline, here under
//! short mutex-protected critical sections).
//!
//! Fault containment, in two layers:
//!
//! * every task runs under `catch_unwind`; a panicking task increments a
//!   counter and kills nothing but itself. Callers that need failure
//!   semantics (the job scheduler) layer their own `catch_unwind` inside
//!   the task to capture the payload;
//! * if a panic nonetheless escapes the containment and unwinds the
//!   worker thread itself (exercised by [`WorkerPool::inject_worker_fault`]),
//!   a drop sentinel respawns a replacement worker, so capacity is never
//!   silently lost. Poisoned mutexes are recovered rather than propagated:
//!   the queues hold only owned task boxes, which stay structurally valid
//!   across an unwind.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

enum Task {
    /// A normal unit of work.
    Run(Job),
    /// A worker-killing fault: panics *outside* the per-task containment,
    /// unwinding the worker thread. Only injectable through
    /// [`WorkerPool::inject_worker_fault`]; exists to prove the respawn
    /// path works.
    Poison,
}

/// How many tasks a worker grabs from the injector at once; the surplus
/// lands in its local deque where peers can steal it.
const INJECTOR_BATCH: usize = 4;

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Pool state is a set of owned task queues and counters — all valid at
/// every instruction boundary — so poisoning carries no information here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Shared {
    injector: Mutex<VecDeque<Task>>,
    available: Condvar,
    locals: Vec<Mutex<VecDeque<Task>>>,
    shutdown: AtomicBool,
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    panics: AtomicU64,
    executed: AtomicU64,
    respawned: AtomicU64,
}

impl Shared {
    fn spawn(&self, task: Task) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        lock(&self.injector).push_back(task);
        self.available.notify_one();
    }

    /// Next task for worker `me`: local back → injector batch → steal.
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(t) = lock(&self.locals[me]).pop_back() {
            return Some(t);
        }
        {
            let mut inj = lock(&self.injector);
            if !inj.is_empty() {
                let task = inj.pop_front();
                let surplus: Vec<Task> = (1..INJECTOR_BATCH)
                    .filter_map(|_| inj.pop_front())
                    .collect();
                drop(inj);
                if !surplus.is_empty() {
                    lock(&self.locals[me]).extend(surplus);
                    // Peers may be asleep; the surplus is stealable.
                    self.available.notify_all();
                }
                return task;
            }
        }
        for victim in (0..self.locals.len()).filter(|&v| v != me) {
            if let Some(t) = lock(&self.locals[victim]).pop_front() {
                return Some(t);
            }
        }
        None
    }
}

/// Submission handle detached from the pool's lifetime; see
/// [`WorkerPool::remote`].
#[derive(Clone)]
pub struct PoolRemote {
    shared: std::sync::Weak<Shared>,
}

impl PoolRemote {
    /// Enqueue a task if the pool is still alive; returns whether it was
    /// accepted.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) -> bool {
        match self.shared.upgrade() {
            Some(shared) => {
                shared.spawn(Task::Run(Box::new(task)));
                true
            }
            None => false,
        }
    }
}

/// A fixed-size pool of worker threads executing `FnOnce` tasks.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            shutdown: AtomicBool::new(false),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .filter_map(|me| spawn_worker(&shared, me).ok())
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueue a task. Never blocks; the queue is unbounded.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.shared.spawn(Task::Run(Box::new(task)));
    }

    /// Enqueue a worker-killing fault: whichever worker dequeues it
    /// panics outside its task containment and is replaced by a fresh
    /// thread (counted in [`WorkerPool::respawned`]). Test/diagnostic
    /// surface for the respawn path.
    pub fn inject_worker_fault(&self) {
        self.shared.spawn(Task::Poison);
    }

    /// A cloneable submission handle that can outlive borrows of the pool
    /// — in particular, tasks running *on* the pool capture one to spawn
    /// follow-up work. It deliberately does not keep workers alive: after
    /// the pool is dropped, remote spawns are silently dropped.
    pub fn remote(&self) -> PoolRemote {
        PoolRemote {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Tasks enqueued but not yet started.
    pub fn queue_depth(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// Tasks currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Tasks that panicked (and were contained).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::SeqCst)
    }

    /// Tasks fully executed (panicked or not).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::SeqCst)
    }

    /// Workers that died to an escaped panic and were replaced.
    pub fn respawned(&self) -> u64 {
        self.shared.respawned.load(Ordering::SeqCst)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Respawned replacements are detached; they observe the shutdown
        // flag within one nap interval and exit, dropping their `Arc`.
    }
}

fn spawn_worker(shared: &Arc<Shared>, me: usize) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("splendid-worker-{me}"))
        .spawn(move || {
            let sentinel = RespawnSentinel {
                shared: Arc::clone(&shared),
                me,
            };
            worker_loop(&shared, me);
            std::mem::forget(sentinel); // normal exit: no respawn
        })
}

/// Armed for the lifetime of a worker thread; if the thread unwinds (a
/// panic escaped the per-task containment), the sentinel's drop runs
/// during that unwind and spawns a replacement so the pool keeps its
/// capacity. Normal shutdown forgets the sentinel instead.
struct RespawnSentinel {
    shared: Arc<Shared>,
    me: usize,
}

impl Drop for RespawnSentinel {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.respawned.fetch_add(1, Ordering::SeqCst);
            // The replacement is detached: WorkerPool::drop joins only the
            // original handles, and replacements exit on the shutdown flag.
            let _ = spawn_worker(&self.shared, self.me);
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some(task) = shared.find_task(me) {
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            match task {
                Task::Run(job) => {
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        shared.panics.fetch_add(1, Ordering::SeqCst);
                    }
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    shared.executed.fetch_add(1, Ordering::SeqCst);
                }
                // Deliberately outside catch_unwind: unwinds this worker
                // thread; the RespawnSentinel replaces it.
                Task::Poison => std::panic::panic_any("injected worker fault"),
            }
            continue;
        }
        let inj = lock(&shared.injector);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if !inj.is_empty() {
            continue; // raced with a producer; go take it
        }
        // Steals have no dedicated wakeup, so cap the nap: a sleeping
        // worker re-scans peers' deques at worst every 20ms.
        let _ = shared
            .available
            .wait_timeout(inj, Duration::from_millis(20))
            .unwrap_or_else(|e| e.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_all_tasks_across_workers() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(pool.executed(), 100);
        assert_eq!(pool.panics(), 0);
        assert_eq!(pool.respawned(), 0);
    }

    #[test]
    fn panic_does_not_poison_the_pool() {
        let pool = WorkerPool::new(2);
        for _ in 0..8 {
            pool.spawn(|| panic!("deliberate"));
        }
        let (tx, rx) = mpsc::channel();
        for i in 0..16u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        assert_eq!(rx.into_iter().count(), 16, "pool must survive panics");
        // The normal tasks can drain before the panicking ones run; wait
        // for the full 24 to execute before checking the panic counter.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.executed() < 24 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.panics(), 8);
        assert_eq!(
            pool.respawned(),
            0,
            "contained panics must not kill workers"
        );
    }

    #[test]
    fn single_worker_pool_drains_serially() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        // Injector batching reorders within a batch, but nothing is lost.
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn poisoned_worker_is_respawned_not_lost() {
        let pool = WorkerPool::new(1);
        pool.inject_worker_fault();
        // Work submitted after the fault must still execute — on the
        // replacement worker, since the pool only ever had one.
        let (tx, rx) = mpsc::channel();
        for i in 0..8u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert!(pool.respawned() >= 1, "fault must trigger a respawn");
    }
}
