//! Work-stealing worker pool on plain `std::thread` + mutex-guarded
//! deques (the sandbox build is std-only, so no crossbeam).
//!
//! Topology: one global injector queue fed by [`WorkerPool::spawn`], plus
//! one local deque per worker. A worker that drains the injector takes a
//! small batch — one task to run now, the rest parked in its local deque —
//! and idle workers steal from the *front* of other workers' deques while
//! owners pop from the *back* (classic Chase-Lev discipline, here under
//! short mutex-protected critical sections).
//!
//! Panic isolation: every task runs under `catch_unwind`; a panicking
//! task increments a counter and kills nothing but itself. The pool keeps
//! serving — callers that need failure semantics (the job scheduler)
//! layer their own `catch_unwind` inside the task to capture the payload.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// How many tasks a worker grabs from the injector at once; the surplus
/// lands in its local deque where peers can steal it.
const INJECTOR_BATCH: usize = 4;

struct Shared {
    injector: Mutex<VecDeque<Task>>,
    available: Condvar,
    locals: Vec<Mutex<VecDeque<Task>>>,
    shutdown: AtomicBool,
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    panics: AtomicU64,
    executed: AtomicU64,
}

impl Shared {
    fn spawn(&self, task: Task) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.injector.lock().unwrap().push_back(task);
        self.available.notify_one();
    }

    /// Next task for worker `me`: local back → injector batch → steal.
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(t) = self.locals[me].lock().unwrap().pop_back() {
            return Some(t);
        }
        {
            let mut inj = self.injector.lock().unwrap();
            if !inj.is_empty() {
                let task = inj.pop_front();
                let surplus: Vec<Task> = (1..INJECTOR_BATCH)
                    .filter_map(|_| inj.pop_front())
                    .collect();
                drop(inj);
                if !surplus.is_empty() {
                    self.locals[me].lock().unwrap().extend(surplus);
                    // Peers may be asleep; the surplus is stealable.
                    self.available.notify_all();
                }
                return task;
            }
        }
        for victim in (0..self.locals.len()).filter(|&v| v != me) {
            if let Some(t) = self.locals[victim].lock().unwrap().pop_front() {
                return Some(t);
            }
        }
        None
    }
}

/// Submission handle detached from the pool's lifetime; see
/// [`WorkerPool::remote`].
#[derive(Clone)]
pub struct PoolRemote {
    shared: std::sync::Weak<Shared>,
}

impl PoolRemote {
    /// Enqueue a task if the pool is still alive; returns whether it was
    /// accepted.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) -> bool {
        match self.shared.upgrade() {
            Some(shared) => {
                shared.spawn(Box::new(task));
                true
            }
            None => false,
        }
    }
}

/// A fixed-size pool of worker threads executing `FnOnce` tasks.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            shutdown: AtomicBool::new(false),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("splendid-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueue a task. Never blocks; the queue is unbounded.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.shared.spawn(Box::new(task));
    }

    /// A cloneable submission handle that can outlive borrows of the pool
    /// — in particular, tasks running *on* the pool capture one to spawn
    /// follow-up work. It deliberately does not keep workers alive: after
    /// the pool is dropped, remote spawns are silently dropped.
    pub fn remote(&self) -> PoolRemote {
        PoolRemote {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Tasks enqueued but not yet started.
    pub fn queue_depth(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// Tasks currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Tasks that panicked (and were contained).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::SeqCst)
    }

    /// Tasks fully executed (panicked or not).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::SeqCst)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some(task) = shared.find_task(me) {
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                shared.panics.fetch_add(1, Ordering::SeqCst);
            }
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.executed.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        let inj = shared.injector.lock().unwrap();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if !inj.is_empty() {
            continue; // raced with a producer; go take it
        }
        // Steals have no dedicated wakeup, so cap the nap: a sleeping
        // worker re-scans peers' deques at worst every 20ms.
        let _ = shared
            .available
            .wait_timeout(inj, Duration::from_millis(20))
            .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_all_tasks_across_workers() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(pool.executed(), 100);
        assert_eq!(pool.panics(), 0);
    }

    #[test]
    fn panic_does_not_poison_the_pool() {
        let pool = WorkerPool::new(2);
        for _ in 0..8 {
            pool.spawn(|| panic!("deliberate"));
        }
        let (tx, rx) = mpsc::channel();
        for i in 0..16u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        assert_eq!(rx.into_iter().count(), 16, "pool must survive panics");
        // The normal tasks can drain before the panicking ones run; wait
        // for the full 24 to execute before checking the panic counter.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.executed() < 24 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.panics(), 8);
    }

    #[test]
    fn single_worker_pool_drains_serially() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        // Injector batching reorders within a batch, but nothing is lost.
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
