#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! `splendid-serve`: the batch-decompilation service layer.
//!
//! The core crate exposes a single-threaded library call; this crate
//! turns it into a service that schedules whole suites of decompilation
//! requests in parallel (the paper's §5 evaluation workload):
//!
//! * [`pool`] — a work-stealing worker pool on `std::thread` + channels,
//!   with per-task panic isolation (a panicking task fails its job, not
//!   the service);
//! * [`scheduler`] — the job scheduler: requests (textual IR or parsed
//!   modules + [`splendid_core::SplendidOptions`]) are split into
//!   per-function work items, with per-job deadlines/cancellation;
//! * [`cache`] — a bounded-LRU, content-addressed result cache keyed by
//!   a stable FNV-1a 64 digest of (module context, canonically printed
//!   function IR, options fingerprint), so re-decompiling unchanged
//!   functions is a lookup;
//! * [`admission`] — overload protection in front of the scheduler:
//!   bounded admission, per-tenant fairness/quotas, and the
//!   admit → degrade → shed ladder with typed [`admission::Busy`]
//!   refusals;
//! * [`stats`] — service observability: per-stage wall time, queue
//!   depth, cache hit rate, job counts, snapshotable and pretty-printable;
//! * [`hash`] — the stable FNV-1a hasher behind the cache keys.
//!
//! The `splendid` binary (`src/bin/splendid.rs`) wires this up as a CLI
//! with `decompile`, `batch`, and `bench-serve` subcommands.

pub mod admission;
pub mod cache;
pub mod codec;
pub mod hash;
pub mod pool;
pub mod scheduler;
pub mod stats;
pub mod validate;

pub use admission::{AdmissionTicket, Busy, ShedReason};
pub use cache::{BlobTiers, CacheCounters, CacheTier, DiskTier, FunctionCache, TierCounters};
pub use pool::{PoolRemote, WorkerPool};
pub use scheduler::{
    function_cache_key, module_cache_key, JobError, JobHandle, JobInput, JobRequest, JobResult,
    Scheduler, ServeConfig,
};
pub use stats::{ServeStats, StatsSnapshot};
pub use validate::{cert_cache_key, CertCache, Certificate, ValidateOutcome};

#[cfg(test)]
mod send_sync_assertions {
    //! Compile-time proof that everything crossing the pool is `Send +
    //! Sync` (the thread-safety audit of the service layer).
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_are_thread_safe() {
        assert_send_sync::<splendid_ir::Module>();
        assert_send_sync::<splendid_core::SplendidOptions>();
        assert_send_sync::<splendid_core::DecompileOutput>();
        assert_send_sync::<splendid_core::PreparedModule>();
        assert_send_sync::<splendid_core::FunctionOutput>();
        assert_send_sync::<splendid_core::StageTimings>();
        assert_send_sync::<FunctionCache>();
        assert_send_sync::<WorkerPool>();
        assert_send_sync::<Scheduler>();
        assert_send_sync::<ServeStats>();
        assert_send_sync::<JobRequest>();
        assert_send_sync::<JobResult>();
        assert_send_sync::<JobError>();
        assert_send_sync::<AdmissionTicket>();
        assert_send_sync::<Busy>();
    }
}
