//! Service observability: lock-free counters updated by workers, plus a
//! plain snapshot struct the CLI pretty-prints.

use crate::cache::{CacheCounters, TierCounters};
use splendid_core::StageTimings;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared, atomically-updated service counters.
///
/// Workers record into this through an `Arc`; readers take a coherent
/// enough view via [`ServeStats::snapshot`] (individual counters are
/// relaxed — the stats surface is diagnostic, not transactional).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Jobs accepted by the scheduler.
    pub jobs_submitted: AtomicU64,
    /// Jobs that produced output.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed (parse/prepare errors or a panicking function).
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled by their deadline.
    pub jobs_timed_out: AtomicU64,
    /// Requests shed at admission because the pending-job queue was full.
    pub jobs_shed_queue: AtomicU64,
    /// Requests shed at admission by per-tenant fairness or quota.
    pub jobs_shed_quota: AtomicU64,
    /// Requests shed at admission because the estimated queue wait
    /// already exceeded their deadline (doomed work, never started).
    pub jobs_shed_deadline: AtomicU64,
    /// Requests admitted but degraded to the `Quick` tier by pressure.
    pub jobs_degraded_admission: AtomicU64,
    /// Cumulative wall time of completed jobs, ns — admission's
    /// service-time estimate (`/ jobs_completed`).
    pub ns_jobs_wall: AtomicU64,
    /// Per-function work items decompiled (cache misses that ran).
    pub functions_decompiled: AtomicU64,
    /// Per-function work items served from the cache.
    pub functions_from_cache: AtomicU64,
    /// Functions that fell back to the `Structured` fidelity tier.
    pub functions_degraded_structured: AtomicU64,
    /// Functions that fell back to the `Literal` fidelity tier.
    pub functions_degraded_literal: AtomicU64,
    /// Per-function work items retried after a contained panic.
    pub functions_retried: AtomicU64,
    /// Retried work items that panicked again and were given up on.
    pub functions_quarantined: AtomicU64,
    /// Module preparations retried after a transient fault.
    pub prepare_retries: AtomicU64,
    /// Vector loops devectorized to `#pragma omp simd` form during
    /// module preparation.
    pub simd_loops_devectorized: AtomicU64,
    /// Reduction clauses recovered across those loops.
    pub simd_reductions: AtomicU64,
    /// Functions whose output carries a `Verified` certificate.
    pub functions_verified: AtomicU64,
    /// Functions whose output carries an `Unverified` certificate.
    pub functions_unverified: AtomicU64,
    /// Validation checks actually executed (cold certificates).
    pub validations_run: AtomicU64,
    /// Verdicts answered from a cached certificate (memory or tier).
    pub certs_from_cache: AtomicU64,
    /// Validation mismatches that fell one fidelity rung and re-ran.
    pub validate_fallbacks: AtomicU64,
    /// Functions still mismatching at the `Literal` floor (quarantined:
    /// served, but flagged as known-wrong).
    pub validate_quarantined: AtomicU64,
    /// Wall time in translation validation, ns.
    pub ns_validate: AtomicU64,
    /// Wall time in module parsing (batch text inputs), ns.
    pub ns_parse: AtomicU64,
    /// Wall time in parallel-region detransformation, ns.
    pub ns_detransform: AtomicU64,
    /// Wall time in variable-name restoration, ns.
    pub ns_naming: AtomicU64,
    /// Wall time in control-flow structuring, ns.
    pub ns_structure: AtomicU64,
    /// Wall time in C emission, ns.
    pub ns_emit: AtomicU64,
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl ServeStats {
    /// Fold one pipeline timing record into the stage counters.
    pub fn record_timings(&self, t: &StageTimings) {
        self.ns_detransform
            .fetch_add(ns(t.detransform), Ordering::Relaxed);
        self.ns_naming.fetch_add(ns(t.naming), Ordering::Relaxed);
        self.ns_structure
            .fetch_add(ns(t.structure), Ordering::Relaxed);
        self.ns_emit.fetch_add(ns(t.emit), Ordering::Relaxed);
        self.functions_degraded_structured
            .fetch_add(u64::from(t.degraded_structured), Ordering::Relaxed);
        self.functions_degraded_literal
            .fetch_add(u64::from(t.degraded_literal), Ordering::Relaxed);
    }

    /// Record time spent parsing textual IR.
    pub fn record_parse(&self, d: Duration) {
        self.ns_parse.fetch_add(ns(d), Ordering::Relaxed);
    }

    /// Materialize the counters, combining in cache and pool gauges.
    pub fn snapshot(
        &self,
        cache: CacheCounters,
        queue_depth: usize,
        in_flight: usize,
        workers: usize,
        workers_respawned: u64,
    ) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            workers,
            queue_depth,
            in_flight,
            workers_respawned,
            jobs_submitted: get(&self.jobs_submitted),
            jobs_completed: get(&self.jobs_completed),
            jobs_failed: get(&self.jobs_failed),
            jobs_timed_out: get(&self.jobs_timed_out),
            jobs_shed_queue: get(&self.jobs_shed_queue),
            jobs_shed_quota: get(&self.jobs_shed_quota),
            jobs_shed_deadline: get(&self.jobs_shed_deadline),
            jobs_degraded_admission: get(&self.jobs_degraded_admission),
            admission_pending: 0,
            functions_decompiled: get(&self.functions_decompiled),
            functions_from_cache: get(&self.functions_from_cache),
            functions_degraded_structured: get(&self.functions_degraded_structured),
            functions_degraded_literal: get(&self.functions_degraded_literal),
            functions_retried: get(&self.functions_retried),
            functions_quarantined: get(&self.functions_quarantined),
            prepare_retries: get(&self.prepare_retries),
            simd_loops_devectorized: get(&self.simd_loops_devectorized),
            simd_reductions: get(&self.simd_reductions),
            functions_verified: get(&self.functions_verified),
            functions_unverified: get(&self.functions_unverified),
            validations_run: get(&self.validations_run),
            certs_from_cache: get(&self.certs_from_cache),
            validate_fallbacks: get(&self.validate_fallbacks),
            validate_quarantined: get(&self.validate_quarantined),
            validate: Duration::from_nanos(get(&self.ns_validate)),
            parse: Duration::from_nanos(get(&self.ns_parse)),
            detransform: Duration::from_nanos(get(&self.ns_detransform)),
            naming: Duration::from_nanos(get(&self.ns_naming)),
            structure: Duration::from_nanos(get(&self.ns_structure)),
            emit: Duration::from_nanos(get(&self.ns_emit)),
            cache,
            tiers: Vec::new(),
        }
    }
}

/// Point-in-time view of the service, pretty-printable via `Display`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Work items enqueued but not started.
    pub queue_depth: usize,
    /// Work items currently executing.
    pub in_flight: usize,
    /// Workers that died to an escaped panic and were replaced.
    pub workers_respawned: u64,
    /// Jobs accepted.
    pub jobs_submitted: u64,
    /// Jobs that produced output.
    pub jobs_completed: u64,
    /// Jobs that failed.
    pub jobs_failed: u64,
    /// Jobs cancelled by deadline.
    pub jobs_timed_out: u64,
    /// Requests shed at admission: queue bound.
    pub jobs_shed_queue: u64,
    /// Requests shed at admission: tenant fairness/quota.
    pub jobs_shed_quota: u64,
    /// Requests shed at admission: doomed deadline.
    pub jobs_shed_deadline: u64,
    /// Requests admitted at the `Quick` tier under pressure.
    pub jobs_degraded_admission: u64,
    /// Jobs admitted but not yet completed (gauge). Populated by
    /// [`crate::scheduler::Scheduler::stats`].
    pub admission_pending: usize,
    /// Functions decompiled from scratch.
    pub functions_decompiled: u64,
    /// Functions served from the cache.
    pub functions_from_cache: u64,
    /// Functions emitted at the `Structured` fidelity tier.
    pub functions_degraded_structured: u64,
    /// Functions emitted at the `Literal` fidelity tier.
    pub functions_degraded_literal: u64,
    /// Work items retried after a contained panic.
    pub functions_retried: u64,
    /// Retried work items that failed again (quarantined).
    pub functions_quarantined: u64,
    /// Module preparations retried after a transient fault.
    pub prepare_retries: u64,
    /// Vector loops devectorized to `#pragma omp simd` form.
    pub simd_loops_devectorized: u64,
    /// Reduction clauses recovered across those loops.
    pub simd_reductions: u64,
    /// Functions carrying a `Verified` certificate.
    pub functions_verified: u64,
    /// Functions carrying an `Unverified` certificate.
    pub functions_unverified: u64,
    /// Validation checks actually executed.
    pub validations_run: u64,
    /// Verdicts answered from cached certificates.
    pub certs_from_cache: u64,
    /// Mismatches that fell one fidelity rung and re-ran.
    pub validate_fallbacks: u64,
    /// Functions still mismatching at the `Literal` floor.
    pub validate_quarantined: u64,
    /// Cumulative translation-validation wall time.
    pub validate: Duration,
    /// Cumulative parse wall time (sum over workers).
    pub parse: Duration,
    /// Cumulative detransform wall time.
    pub detransform: Duration,
    /// Cumulative naming wall time.
    pub naming: Duration,
    /// Cumulative structuring wall time.
    pub structure: Duration,
    /// Cumulative emission wall time.
    pub emit: Duration,
    /// Cache counters.
    pub cache: CacheCounters,
    /// Blob-tier counters (disk, peer, ...), nearest tier first. Empty
    /// when no persistent tier is configured. Populated by
    /// [`crate::scheduler::Scheduler::stats`].
    pub tiers: Vec<TierCounters>,
}

impl StatsSnapshot {
    /// Total functions that landed below the `Natural` tier.
    pub fn functions_degraded(&self) -> u64 {
        self.functions_degraded_structured + self.functions_degraded_literal
    }

    /// Total requests shed at admission, across all reasons.
    pub fn jobs_shed(&self) -> u64 {
        self.jobs_shed_queue + self.jobs_shed_quota + self.jobs_shed_deadline
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "serve stats")?;
        writeln!(
            f,
            "  pool       {} workers, queue depth {}, in flight {}, {} respawned",
            self.workers, self.queue_depth, self.in_flight, self.workers_respawned
        )?;
        writeln!(
            f,
            "  jobs       {} submitted / {} completed / {} failed / {} timed out",
            self.jobs_submitted, self.jobs_completed, self.jobs_failed, self.jobs_timed_out
        )?;
        writeln!(
            f,
            "  admission  {} pending, {} shed ({} queue-full / {} quota / {} doomed), {} degraded to quick",
            self.admission_pending,
            self.jobs_shed(),
            self.jobs_shed_queue,
            self.jobs_shed_quota,
            self.jobs_shed_deadline,
            self.jobs_degraded_admission
        )?;
        writeln!(
            f,
            "  functions  {} decompiled, {} from cache",
            self.functions_decompiled, self.functions_from_cache
        )?;
        writeln!(
            f,
            "  fidelity   {} degraded ({} structured, {} literal), {} retried, {} quarantined, {} prepare retries",
            self.functions_degraded(),
            self.functions_degraded_structured,
            self.functions_degraded_literal,
            self.functions_retried,
            self.functions_quarantined,
            self.prepare_retries
        )?;
        writeln!(
            f,
            "  simd       {} loops devectorized, {} reductions recovered",
            self.simd_loops_devectorized, self.simd_reductions
        )?;
        writeln!(
            f,
            "  cache      {}/{} entries, {} hits / {} misses / {} evictions ({:.1}% hit rate)",
            self.cache.entries,
            self.cache.capacity,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            100.0 * self.cache.hit_rate()
        )?;
        writeln!(
            f,
            "  validate   {} verified / {} unverified, {} checks run, {} certs from cache, {} fallbacks, {} quarantined",
            self.functions_verified,
            self.functions_unverified,
            self.validations_run,
            self.certs_from_cache,
            self.validate_fallbacks,
            self.validate_quarantined
        )?;
        for tier in &self.tiers {
            write!(
                f,
                "  tier:{:<5} {} hits / {} misses / {} fills / {} errors ({:.1}% hit rate)",
                tier.name,
                tier.hits,
                tier.misses,
                tier.fills,
                tier.errors,
                100.0 * tier.hit_rate()
            )?;
            // Breaker state only appears for tiers that have one (peer).
            if tier.breaker_trips > 0 || tier.breaker_fast_fails > 0 || tier.breaker_open {
                write!(
                    f,
                    " [breaker {}, {} trips, {} fast-fails]",
                    if tier.breaker_open { "open" } else { "closed" },
                    tier.breaker_trips,
                    tier.breaker_fast_fails
                )?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "  stages     parse {:.3?}, detransform {:.3?}, naming {:.3?}, structure {:.3?}, emit {:.3?}, validate {:.3?}",
            self.parse, self.detransform, self.naming, self.structure, self.emit, self.validate
        )
    }
}
