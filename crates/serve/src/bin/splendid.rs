//! `splendid` — the decompilation-service CLI.
//!
//! ```text
//! splendid decompile <file.{ir,c}> [--variant v1|portable|full] [--stats]
//! splendid batch <dir> [--jobs N] [--rounds K] [--variant V] [--stats]
//! splendid bench-serve [--jobs N] [--rounds R] [--json]
//! splendid difftest [--seed S] [--cases N] [--case I] [--shrink] [--corpus <dir>] [--stats]
//! splendid difftest --faults N [--fault-cases M] [--seed S]
//! splendid dump-polybench <dir>
//! ```
//!
//! `.ir` inputs are parsed as textual SPLENDID IR; `.c` inputs run the
//! full substrate (cfront → -O2 → Polly-sim) first, so the service sees
//! the same parallel IR the paper's pipeline produces.

use splendid_cfront::{lower_program, parse_program, LowerOptions};
use splendid_core::{SplendidOptions, Variant};
use splendid_ir::{printer::module_str, Module};
use splendid_parallel::{parallelize_module, ParallelizeOptions};
use splendid_polybench::Harness;
use splendid_serve::{JobInput, JobRequest, Scheduler, ServeConfig};
use splendid_transforms::{optimize_module, O2Options};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         splendid decompile <file.{{ir,c}}> [--variant v1|portable|full] [--stats]\n  \
         splendid batch <dir> [--jobs N] [--rounds K] [--variant V] [--stats]\n  \
         splendid bench-serve [--jobs N] [--rounds R] [--json]\n  \
         splendid difftest [--seed S] [--cases N] [--case I] [--shrink] [--corpus <dir>] [--stats]\n  \
         splendid difftest --faults N [--fault-cases M] [--seed S]\n  \
         splendid dump-polybench <dir>"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("splendid: {msg}");
    std::process::exit(1);
}

/// Minimal flag parser: positionals plus `--flag [value]`.
struct Args {
    positional: Vec<String>,
    jobs: usize,
    rounds: usize,
    variant: Variant,
    stats: bool,
    json: bool,
    seed: String,
    cases: u64,
    only_case: Option<u64>,
    shrink: bool,
    corpus: Option<String>,
    faults: u64,
    fault_cases: u64,
}

fn parse_args(args: &[String]) -> Args {
    let mut out = Args {
        positional: Vec::new(),
        jobs: 0,
        rounds: 1,
        variant: Variant::Full,
        stats: false,
        json: false,
        seed: "0xSPLENDID".into(),
        cases: 100,
        only_case: None,
        shrink: false,
        corpus: None,
        faults: 0,
        fault_cases: 8,
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--jobs" | "-j" => {
                out.jobs = value("--jobs")
                    .parse()
                    .unwrap_or_else(|_| fail("--jobs: not a number"))
            }
            "--rounds" => {
                out.rounds = value("--rounds")
                    .parse()
                    .unwrap_or_else(|_| fail("--rounds: not a number"))
            }
            "--variant" => {
                out.variant = match value("--variant").as_str() {
                    "v1" => Variant::V1,
                    "portable" => Variant::Portable,
                    "full" => Variant::Full,
                    v => fail(&format!("unknown variant {v:?} (v1|portable|full)")),
                }
            }
            "--stats" => out.stats = true,
            "--json" => out.json = true,
            "--seed" => out.seed = value("--seed"),
            "--cases" => {
                out.cases = value("--cases")
                    .parse()
                    .unwrap_or_else(|_| fail("--cases: not a number"))
            }
            "--case" => {
                out.only_case = Some(
                    value("--case")
                        .parse()
                        .unwrap_or_else(|_| fail("--case: not a number")),
                )
            }
            "--shrink" => out.shrink = true,
            "--corpus" => out.corpus = Some(value("--corpus")),
            "--faults" => {
                out.faults = value("--faults")
                    .parse()
                    .unwrap_or_else(|_| fail("--faults: not a number"))
            }
            "--fault-cases" => {
                out.fault_cases = value("--fault-cases")
                    .parse()
                    .unwrap_or_else(|_| fail("--fault-cases: not a number"))
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag {flag}")),
            _ => out.positional.push(a.clone()),
        }
    }
    out
}

fn options_for(variant: Variant) -> SplendidOptions {
    SplendidOptions {
        variant,
        ..SplendidOptions::default()
    }
}

/// Load one input file as a decompilation request.
fn load_request(path: &Path, variant: Variant) -> JobRequest {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    let input = match path.extension().and_then(|e| e.to_str()) {
        Some("c") => JobInput::Module(compile_c(&text, &name)),
        _ => JobInput::Text(text),
    };
    JobRequest {
        name,
        input,
        options: options_for(variant),
    }
}

/// C source → optimized, auto-parallelized IR (the paper's pipeline input).
fn compile_c(src: &str, name: &str) -> Module {
    let prog = parse_program(src).unwrap_or_else(|e| fail(&format!("{name}: C parse error: {e}")));
    let mut m = lower_program(&prog, name, &LowerOptions::default())
        .unwrap_or_else(|e| fail(&format!("{name}: lowering error: {e}")));
    optimize_module(&mut m, &O2Options::default());
    parallelize_module(&mut m, &ParallelizeOptions::default());
    m
}

fn cmd_decompile(args: Args) {
    let [path] = args.positional.as_slice() else {
        usage()
    };
    let request = load_request(Path::new(path), args.variant);
    let scheduler = Scheduler::new(ServeConfig {
        workers: args.jobs,
        ..Default::default()
    });
    match scheduler.submit(request).wait() {
        Ok(result) => {
            print!("{}", result.output.source);
            if args.stats {
                eprintln!(
                    "# {} function(s) in {:?}, {} restored vars of {}",
                    result.functions,
                    result.wall,
                    result.output.naming.restored_vars,
                    result.output.naming.total_vars
                );
                eprint!("{}", scheduler.stats());
            }
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// All `.ir` / `.c` files under a directory, sorted for determinism.
fn batch_inputs(dir: &Path) -> Vec<PathBuf> {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| fail(&format!("{}: {e}", dir.display())));
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("ir") | Some("c")
            )
        })
        .collect();
    files.sort();
    files
}

fn cmd_batch(args: Args) {
    let [dir] = args.positional.as_slice() else {
        usage()
    };
    let files = batch_inputs(Path::new(dir));
    if files.is_empty() {
        fail(&format!("no .ir or .c files in {dir}"));
    }
    let requests: Vec<JobRequest> = files
        .iter()
        .map(|p| load_request(p, args.variant))
        .collect();
    let scheduler = Scheduler::new(ServeConfig {
        workers: args.jobs,
        ..Default::default()
    });
    println!(
        "batch: {} module(s), {} worker(s), {} round(s)",
        requests.len(),
        scheduler.workers(),
        args.rounds
    );
    for round in 1..=args.rounds.max(1) {
        let start = Instant::now();
        let results = scheduler.decompile_batch(requests.clone());
        let wall = start.elapsed();
        let mut ok = 0usize;
        let mut failed = 0usize;
        let mut functions = 0usize;
        let mut cached = 0usize;
        for (path, r) in files.iter().zip(&results) {
            match r {
                Ok(res) => {
                    ok += 1;
                    functions += res.functions;
                    cached += res.cached_functions;
                }
                Err(e) => {
                    failed += 1;
                    eprintln!("  {}: {e}", path.display());
                }
            }
        }
        let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "round {round}: {ok} ok / {failed} failed, {functions} function(s) \
             ({cached} cached) in {wall:.3?} — {throughput:.1} modules/s"
        );
    }
    if args.stats {
        print!("{}", scheduler.stats());
    }
}

fn cmd_dump_polybench(args: Args) {
    let [dir] = args.positional.as_slice() else {
        usage()
    };
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&format!("{}: {e}", dir.display())));
    let suite = Harness::polly_suite().unwrap_or_else(|e| fail(&e.to_string()));
    for (name, module) in &suite {
        let path = dir.join(format!("{name}.ir"));
        std::fs::write(&path, module_str(module))
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    }
    println!("wrote {} modules to {}", suite.len(), dir.display());
}

/// One measured batch pass; returns (wall seconds, ok count).
fn run_pass(scheduler: &Scheduler, requests: &[JobRequest]) -> (f64, usize) {
    let start = Instant::now();
    let results = scheduler.decompile_batch(requests.to_vec());
    let wall = start.elapsed().as_secs_f64();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    for r in results {
        if let Err(e) = r {
            fail(&format!("bench-serve job failed: {e}"));
        }
    }
    (wall, ok)
}

fn cmd_bench_serve(args: Args) {
    let parallel_jobs = if args.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        args.jobs
    };
    let rounds = args.rounds.max(1);
    let suite = Harness::polly_suite().unwrap_or_else(|e| fail(&e.to_string()));
    let requests: Vec<JobRequest> = suite
        .into_iter()
        .map(|(name, m)| JobRequest::from_module(name, m))
        .collect();
    let modules = requests.len();

    // Serial baseline: one worker, cold cache each round.
    let mut serial = f64::MAX;
    for _ in 0..rounds {
        let s = Scheduler::new(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        serial = serial.min(run_pass(&s, &requests).0);
    }

    // Parallel: N workers, cold cache each round; keep the last scheduler
    // warm for the cache pass.
    let mut parallel = f64::MAX;
    let mut warm = f64::MAX;
    let mut hit_rate = 0.0;
    for _ in 0..rounds {
        let s = Scheduler::new(ServeConfig {
            workers: parallel_jobs,
            ..Default::default()
        });
        parallel = parallel.min(run_pass(&s, &requests).0);
        let before = s.stats().cache;
        warm = warm.min(run_pass(&s, &requests).0);
        let after = s.stats().cache;
        let lookups = (after.hits - before.hits) + (after.misses - before.misses);
        hit_rate = if lookups == 0 {
            0.0
        } else {
            (after.hits - before.hits) as f64 / lookups as f64
        };
        if !args.json {
            print!("{}", s.stats());
        }
    }

    let speedup = serial / parallel.max(1e-9);
    let warm_speedup = serial / warm.max(1e-9);
    if args.json {
        // Hand-rolled JSON: the offline build has no serde.
        println!("{{");
        println!("  \"benchmark\": \"bench-serve\",");
        println!("  \"modules\": {modules},");
        println!("  \"workers\": {parallel_jobs},");
        println!("  \"rounds\": {rounds},");
        println!("  \"serial_seconds\": {serial:.6},");
        println!("  \"parallel_seconds\": {parallel:.6},");
        println!("  \"warm_cache_seconds\": {warm:.6},");
        println!("  \"parallel_speedup\": {speedup:.3},");
        println!("  \"warm_speedup\": {warm_speedup:.3},");
        println!("  \"warm_cache_hit_rate\": {hit_rate:.4},");
        println!(
            "  \"serial_modules_per_sec\": {:.3},",
            modules as f64 / serial.max(1e-9)
        );
        println!(
            "  \"parallel_modules_per_sec\": {:.3}",
            modules as f64 / parallel.max(1e-9)
        );
        println!("}}");
    } else {
        println!("bench-serve: {modules} polybench modules, best of {rounds} round(s)");
        println!(
            "  serial   (1 worker)   {serial:.3}s  ({:.1} modules/s)",
            modules as f64 / serial
        );
        println!(
            "  parallel ({parallel_jobs} workers)  {parallel:.3}s  ({:.1} modules/s, {speedup:.2}x)",
            modules as f64 / parallel
        );
        println!(
            "  warm cache            {warm:.3}s  ({:.1} modules/s, {warm_speedup:.2}x, {:.1}% hits)",
            modules as f64 / warm,
            100.0 * hit_rate
        );
    }
}

/// Decompilation backend for the differential oracle that routes every
/// request through the service scheduler. The oracle decompiles each
/// module twice (for its stability route), so the second decompilation of
/// every function exercises the function cache's hit path — the campaign
/// differential-tests the cache along with the pipeline.
struct SchedulerDecompiler<'a> {
    scheduler: &'a Scheduler,
}

impl splendid_difftest::Decompiler for SchedulerDecompiler<'_> {
    fn decompile(&self, module: &Module, opts: &SplendidOptions) -> Result<String, String> {
        let request = JobRequest {
            name: "difftest".into(),
            input: JobInput::Module(module.clone()),
            options: opts.clone(),
        };
        self.scheduler
            .submit(request)
            .wait()
            .map(|result| result.output.source)
            .map_err(|e| e.to_string())
    }
}

fn cmd_difftest(args: Args) {
    use splendid_difftest::{
        parse_seed, replay_corpus_source, run_difftest, run_fault_campaign, DifftestConfig,
        FaultCampaignConfig, Oracle,
    };

    // Fault-injection mode: a dedicated seeded campaign proving every
    // injected pipeline fault yields degraded-but-checksum-correct output.
    if args.faults > 0 {
        let cfg = FaultCampaignConfig {
            seed: parse_seed(&args.seed),
            faults: args.faults,
            cases: args.fault_cases,
        };
        let start = Instant::now();
        let report = run_fault_campaign(&cfg);
        print!("{report}");
        if args.stats {
            eprintln!("# wall: {:?}", start.elapsed());
        }
        if !report.all_passed() {
            std::process::exit(1);
        }
        return;
    }

    let scheduler = Scheduler::new(ServeConfig {
        workers: args.jobs,
        ..Default::default()
    });
    let dec = SchedulerDecompiler {
        scheduler: &scheduler,
    };
    let oracle = Oracle::new(&dec);

    // Corpus replay first, if requested: every checked-in program must
    // keep agreeing on every route.
    if let Some(dir) = &args.corpus {
        let files = {
            let mut f: Vec<PathBuf> = std::fs::read_dir(dir)
                .unwrap_or_else(|e| fail(&format!("{dir}: {e}")))
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("c"))
                .collect();
            f.sort();
            f
        };
        if files.is_empty() {
            fail(&format!("no .c files in {dir}"));
        }
        for path in &files {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
            if let Err(f) = replay_corpus_source(&oracle, &src) {
                eprintln!("corpus FAIL {}:\n  {f}", path.display());
                std::process::exit(1);
            }
        }
        println!("corpus: {} program(s) ok", files.len());
    }

    let cfg = DifftestConfig {
        seed: parse_seed(&args.seed),
        cases: args.cases,
        shrink: args.shrink,
        only_case: args.only_case,
        min_work: 0,
    };
    let start = Instant::now();
    let report = run_difftest(&oracle, &cfg);
    // Report to stdout (byte-deterministic); timing and service stats to
    // stderr so two runs' stdout can be diffed.
    print!("{report}");
    if args.stats {
        eprintln!("# wall: {:?}", start.elapsed());
        eprint!("{}", scheduler.stats());
    }
    if !report.all_passed() {
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    let args = parse_args(rest);
    match cmd.as_str() {
        "decompile" => cmd_decompile(args),
        "batch" => cmd_batch(args),
        "bench-serve" => cmd_bench_serve(args),
        "difftest" => cmd_difftest(args),
        "dump-polybench" => cmd_dump_polybench(args),
        _ => usage(),
    }
}
